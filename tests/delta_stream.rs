//! Differential suite for the structured per-batch [`MatchDelta`] stream.
//!
//! Every batch application now returns an [`ApplyOutcome`] whose `delta` is
//! the exact view-level change of the batch. This suite pins the contract
//! from four directions, for both engines:
//!
//! * **Exact view identity** — on seeded 1k+-update streams (cyclic
//!   pattern, DAG pattern, and a stream with node churn) the emitted delta
//!   of every batch equals `MatchDelta::between(view(t-1), view(t))`, and
//!   folding it into the previous view reproduces the next view exactly:
//!   `view(t) = view(t-1) ∖ removed ⊎ inserted`.
//! * **Shard bit-identity** — the full `ApplyOutcome` (stats *and* delta)
//!   is bit-identical for shard counts {1, 2, 3, 8} on every batch.
//! * **Monotone fast path** — insert-only batches take the CALM fast path
//!   (no removal tracking); their emitted deltas still satisfy the exact
//!   view identity and never contain a removed pair.
//! * **Durable replay identity** — a `DurableIndex` crashed at every
//!   durability failpoint site and reopened re-emits, through its
//!   [`Subscription`] stream, exactly the per-batch deltas of the
//!   never-crashed run, each sequence number exactly once; an in-place
//!   `recover()` after a contained engine panic re-emits only the tail the
//!   crash swallowed (publication is idempotent by WAL sequence number).
//!
//! The satellite regressions ride along: empty-delta batches leave the
//! lazily cached view warm (no re-materialisation), non-empty deltas patch
//! it in place; the lenient path reports rejections at **original** batch
//! positions and emits the strict path's delta for the surviving updates;
//! and the poisoned-read surface is pinned (`matches_view` panic string
//! versus `try_matches_view` typed error) for both engines.
//!
//! The failpoint registry is process-global, so the failpoint-driven tests
//! serialise on one mutex and run with a muted panic hook while armed.

use igpm::core::IncrementalEngine;
use igpm::graph::fail;
use igpm::graph::wal::FsyncPolicy;
use igpm::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Serialises the failpoint-driven tests: the registry is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with `site` armed and the default panic hook muted.
fn with_armed<T>(site: &str, f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = {
        let _armed = fail::arm_scoped(site);
        f()
    };
    std::panic::set_hook(hook);
    result
}

/// A fresh scratch directory for one durable index, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("igpm-delta-stream-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------------
// Worlds and streams
// ---------------------------------------------------------------------------

/// Deterministic splitmix-style generator: same seed, same stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 17
    }
}

/// `n` nodes labeled `l0`/`l1`/…/`l{labels-1}` round-robin, plus a seed ring.
fn seed_world(n: usize, labels: usize) -> DataGraph {
    let mut graph = DataGraph::new();
    let nodes: Vec<NodeId> =
        (0..n).map(|i| graph.add_labeled_node(format!("l{}", i % labels))).collect();
    for i in 0..n {
        graph.add_edge(nodes[i], nodes[(i + 1) % n]);
    }
    graph
}

/// One validation-clean batch: every update is effective at its position.
fn gen_batch(rng: &mut Rng, graph: &DataGraph, per_batch: usize) -> BatchUpdate {
    let nv = graph.node_count() as u64;
    let mut batch = BatchUpdate::new();
    let mut overlay: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    while batch.len() < per_batch {
        let a = NodeId((rng.next() % nv) as u32);
        let b = NodeId((rng.next() % nv) as u32);
        if a == b {
            continue;
        }
        let present = *overlay.entry((a, b)).or_insert_with(|| graph.has_edge(a, b));
        if present {
            batch.delete(a, b);
        } else {
            batch.insert(a, b);
        }
        overlay.insert((a, b), !present);
    }
    batch
}

/// One validation-clean insert-only batch (drives the monotone fast path).
fn gen_insert_batch(rng: &mut Rng, graph: &DataGraph, per_batch: usize) -> BatchUpdate {
    let nv = graph.node_count() as u64;
    let mut batch = BatchUpdate::new();
    let mut inserted: std::collections::HashSet<(NodeId, NodeId)> =
        std::collections::HashSet::new();
    let mut attempts = 0usize;
    while batch.len() < per_batch && attempts < per_batch * 200 {
        attempts += 1;
        let a = NodeId((rng.next() % nv) as u32);
        let b = NodeId((rng.next() % nv) as u32);
        if a == b || graph.has_edge(a, b) || !inserted.insert((a, b)) {
            continue;
        }
        batch.insert(a, b);
    }
    batch
}

/// A stream of `count` batches, each valid against the graph left by its
/// predecessors.
fn gen_stream(
    rng: &mut Rng,
    initial: &DataGraph,
    count: usize,
    per_batch: usize,
) -> Vec<BatchUpdate> {
    let mut graph = initial.clone();
    (0..count)
        .map(|_| {
            let batch = gen_batch(rng, &graph, per_batch);
            batch.apply(&mut graph);
            batch
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

trait DeltaEngine: IncrementalEngine {
    const NAME: &'static str;
    /// The failpoint site whose injected panic leaves this engine poisoned.
    const POISON_SITE: &'static str;
    /// The pinned panic message of `matches_view` on a poisoned index.
    const POISON_PANIC: &'static str;
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self;
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome;
    fn lenient(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<LenientApply, ApplyError>;
    /// The observable match view (a clone of the cached relation).
    fn view(&self) -> MatchRelation;
    fn view_ref_panics(&self) -> MatchRelation;
    fn try_view(&self) -> Result<MatchRelation, ApplyError>;
    fn warm(&self) -> bool;
    /// Cyclic 2-node pattern `l0 ⇄ l1` (SCC promotion phases run).
    fn cyclic_pattern() -> Pattern;
    /// Acyclic 3-node pattern over labels `l0`/`l1`/`l2` (DAG path).
    fn dag_pattern() -> Pattern;
}

impl DeltaEngine for SimulationIndex {
    const NAME: &'static str = "sim";
    const POISON_SITE: &'static str = fail::SIM_PROMOTE;
    const POISON_PANIC: &'static str =
        "simulation index is poisoned; call recover() before reading";
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        SimulationIndex::build_with_shards(pattern, graph, shards)
    }
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, shards)
    }
    fn lenient(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<LenientApply, ApplyError> {
        self.apply_batch_lenient_with_shards(graph, batch, shards)
    }
    fn view(&self) -> MatchRelation {
        self.matches()
    }
    fn view_ref_panics(&self) -> MatchRelation {
        self.matches_view().clone()
    }
    fn try_view(&self) -> Result<MatchRelation, ApplyError> {
        self.try_matches_view().map(|view| view.clone())
    }
    fn warm(&self) -> bool {
        self.view_cache_is_warm()
    }
    fn cyclic_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        p.add_normal_edge(a, b);
        p.add_normal_edge(b, a);
        p
    }
    fn dag_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        let c = p.add_labeled_node("l2");
        p.add_normal_edge(a, b);
        p.add_normal_edge(b, c);
        p
    }
}

impl DeltaEngine for BoundedIndex {
    const NAME: &'static str = "bsim";
    const POISON_SITE: &'static str = fail::BSIM_PROMOTE;
    const POISON_PANIC: &'static str = "bounded index is poisoned; call recover() before reading";
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        BoundedIndex::build_with_shards(pattern, graph, shards)
    }
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, shards)
    }
    fn lenient(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<LenientApply, ApplyError> {
        self.apply_batch_lenient_with_shards(graph, batch, shards)
    }
    fn view(&self) -> MatchRelation {
        self.matches()
    }
    fn view_ref_panics(&self) -> MatchRelation {
        self.matches_view().clone()
    }
    fn try_view(&self) -> Result<MatchRelation, ApplyError> {
        self.try_matches_view().map(|view| view.clone())
    }
    fn warm(&self) -> bool {
        self.view_cache_is_warm()
    }
    fn cyclic_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        p.add_edge(a, b, EdgeBound::Hops(1));
        p.add_edge(b, a, EdgeBound::Unbounded);
        p
    }
    fn dag_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        let c = p.add_labeled_node("l2");
        p.add_edge(a, b, EdgeBound::Hops(2));
        p.add_edge(b, c, EdgeBound::Hops(1));
        p
    }
}

// ---------------------------------------------------------------------------
// 1. Exact view identity on seeded 1k+-update streams
// ---------------------------------------------------------------------------

/// Applies one batch and checks the emitted delta against the view diff:
/// `delta == between(prev, next)` and `prev ⊎ delta == next`.
fn check_batch_delta<E: DeltaEngine>(
    context: &str,
    engine: &mut E,
    graph: &mut DataGraph,
    batch: &BatchUpdate,
    shards: usize,
    prev_view: &MatchRelation,
) -> MatchRelation {
    let outcome = engine.apply(graph, batch, shards);
    let next_view = engine.view();
    let expected = MatchDelta::between(prev_view, &next_view);
    assert_eq!(
        outcome.delta,
        expected,
        "{context}: emitted delta is not the view diff (prev {} pairs, next {} pairs)",
        prev_view.pair_count(),
        next_view.pair_count()
    );
    let mut folded = prev_view.clone();
    outcome.delta.apply_to(&mut folded);
    assert_eq!(folded, next_view, "{context}: view(t-1) ⊎ delta(t) != view(t)");
    next_view
}

fn view_diff_stream<E: DeltaEngine>(pattern: &Pattern, initial: &DataGraph, seed: u64) {
    let mut rng = Rng(seed);
    let batches = gen_stream(&mut rng, initial, 64, 18); // 1152 updates
    let mut graph = initial.clone();
    let mut engine = E::build_shards(pattern, &graph, 1);
    let mut view = engine.view();
    for (i, batch) in batches.iter().enumerate() {
        let context = format!("{} seed {seed:#x} batch {i}", E::NAME);
        view = check_batch_delta(&context, &mut engine, &mut graph, batch, 1, &view);
    }
}

#[test]
fn sim_delta_equals_view_diff_on_cyclic_stream() {
    view_diff_stream::<SimulationIndex>(
        &SimulationIndex::cyclic_pattern(),
        &seed_world(28, 2),
        0xD51A,
    );
}

#[test]
fn bsim_delta_equals_view_diff_on_cyclic_stream() {
    view_diff_stream::<BoundedIndex>(&BoundedIndex::cyclic_pattern(), &seed_world(28, 2), 0xD51B);
}

#[test]
fn sim_delta_equals_view_diff_on_dag_stream() {
    view_diff_stream::<SimulationIndex>(
        &SimulationIndex::dag_pattern(),
        &seed_world(27, 3),
        0xDA6A,
    );
}

#[test]
fn bsim_delta_equals_view_diff_on_dag_stream() {
    view_diff_stream::<BoundedIndex>(&BoundedIndex::dag_pattern(), &seed_world(27, 3), 0xDA6B);
}

/// Node churn: every few batches the graph grows fresh nodes out-of-band
/// (the engine absorbs them through its capacity path, which feeds the
/// delta for childless pattern nodes), then the stream wires them in.
fn churn_stream<E: DeltaEngine>(pattern: &Pattern, labels: usize, seed: u64) {
    let initial = seed_world(18, labels);
    let mut rng = Rng(seed);
    let mut graph = initial.clone();
    let mut engine = E::build_shards(pattern, &graph, 1);
    let mut view = engine.view();
    let mut applied = 0usize;
    for round in 0..60 {
        if round % 4 == 3 {
            for _ in 0..2 {
                let label = format!("l{}", (rng.next() as usize) % labels);
                graph.add_labeled_node(label);
            }
        }
        let batch = gen_batch(&mut rng, &graph, 18);
        applied += batch.len();
        let context = format!("{} churn seed {seed:#x} round {round}", E::NAME);
        view = check_batch_delta(&context, &mut engine, &mut graph, &batch, 1, &view);
    }
    assert!(applied >= 1000, "stream too short to qualify: {applied} updates");
}

#[test]
fn sim_delta_equals_view_diff_under_node_churn() {
    churn_stream::<SimulationIndex>(&SimulationIndex::cyclic_pattern(), 2, 0xC0A1);
}

#[test]
fn bsim_delta_equals_view_diff_under_node_churn() {
    churn_stream::<BoundedIndex>(&BoundedIndex::cyclic_pattern(), 2, 0xC0A2);
}

// ---------------------------------------------------------------------------
// 2. Shard bit-identity of the emitted deltas
// ---------------------------------------------------------------------------

fn shard_identity_stream<E: DeltaEngine>(pattern: &Pattern, seed: u64) {
    let initial = seed_world(26, 2);
    let mut rng = Rng(seed);
    let batches = gen_stream(&mut rng, &initial, 24, 14);
    let mut replicas: Vec<(DataGraph, E)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let graph = initial.clone();
            let engine = E::build_shards(pattern, &graph, shards);
            (graph, engine)
        })
        .collect();
    for (round, batch) in batches.iter().enumerate() {
        let mut outcomes: Vec<ApplyOutcome> = Vec::new();
        for (&shards, (graph, engine)) in SHARD_COUNTS.iter().zip(replicas.iter_mut()) {
            outcomes.push(engine.apply(graph, batch, shards));
        }
        for (i, outcome) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(
                *outcome,
                outcomes[0],
                "{} seed {seed:#x} round {round}: ApplyOutcome (delta included) diverged \
                 between shards={} and shards=1",
                E::NAME,
                SHARD_COUNTS[i]
            );
        }
    }
    let reference = replicas[0].1.view();
    for (i, (_, engine)) in replicas.iter().enumerate().skip(1) {
        assert_eq!(
            engine.view(),
            reference,
            "{} seed {seed:#x}: final views diverged at shards={}",
            E::NAME,
            SHARD_COUNTS[i]
        );
    }
}

#[test]
fn sim_deltas_bit_identical_across_shard_counts() {
    shard_identity_stream::<SimulationIndex>(&SimulationIndex::cyclic_pattern(), 0x5A4D);
}

#[test]
fn bsim_deltas_bit_identical_across_shard_counts() {
    shard_identity_stream::<BoundedIndex>(&BoundedIndex::cyclic_pattern(), 0x5A4E);
}

// ---------------------------------------------------------------------------
// 3. Monotone (insert-only) fast path
// ---------------------------------------------------------------------------

fn monotone_stream<E: DeltaEngine>(pattern: &Pattern, seed: u64) {
    // Start from a sparse world (ring only) so insertions keep promoting.
    let initial = seed_world(24, 2);
    let mut rng = Rng(seed);
    let mut graph = initial.clone();
    let mut engine = E::build_shards(pattern, &graph, 1);
    let mut view = engine.view();
    for round in 0..24 {
        let batch = gen_insert_batch(&mut rng, &graph, 10);
        if batch.is_empty() {
            break; // world saturated
        }
        let context = format!("{} monotone seed {seed:#x} round {round}", E::NAME);
        let outcome = engine.apply(&mut graph, &batch, 1);
        assert!(
            outcome.delta.removed.is_empty(),
            "{context}: insert-only batch emitted removals: {:?}",
            outcome.delta.removed
        );
        let next_view = engine.view();
        assert_eq!(
            outcome.delta,
            MatchDelta::between(&view, &next_view),
            "{context}: monotone fast-path delta is not the view diff"
        );
        view = next_view;
    }
}

#[test]
fn sim_monotone_fast_path_emits_exact_deltas() {
    monotone_stream::<SimulationIndex>(&SimulationIndex::cyclic_pattern(), 0x30A0);
}

#[test]
fn bsim_monotone_fast_path_emits_exact_deltas() {
    monotone_stream::<BoundedIndex>(&BoundedIndex::cyclic_pattern(), 0x30A1);
}

// ---------------------------------------------------------------------------
// 4. Cache retention (satellite regression)
// ---------------------------------------------------------------------------

/// Two rings worth of matched nodes; the batch inserts one extra chord
/// `l0 → l1` between already-matched nodes — real counter work, empty
/// view-level delta.
fn cache_retention<E: DeltaEngine>() {
    let pattern = E::cyclic_pattern();
    let initial = seed_world(12, 2);
    let mut graph = initial.clone();
    let mut engine = E::build_shards(&pattern, &graph, 1);

    // Warm the cache and pin it.
    let warm_view = engine.view();
    assert!(engine.warm(), "{}: view() must leave the cache warm", E::NAME);

    // A chord between matched ring nodes: no observable view change.
    let mut chord = BatchUpdate::new();
    chord.insert(NodeId(0), NodeId(3));
    let outcome = engine.apply(&mut graph, &chord, 1);
    assert!(outcome.delta.is_empty(), "{}: chord changed the view: {}", E::NAME, outcome.delta);
    assert!(
        engine.warm(),
        "{}: empty-delta apply re-materialised (or dropped) the cached view",
        E::NAME
    );
    assert_eq!(engine.view(), warm_view, "{}: cached view drifted", E::NAME);

    // A redundant batch (insert + delete of the same absent edge) reduces to
    // nothing before the pipeline runs — the cache must also survive that.
    let mut redundant = BatchUpdate::new();
    redundant.insert(NodeId(1), NodeId(4));
    redundant.delete(NodeId(1), NodeId(4));
    let outcome = engine.apply(&mut graph, &redundant, 1);
    assert!(outcome.delta.is_empty(), "{}: redundant batch changed the view", E::NAME);
    assert!(engine.warm(), "{}: reduced-to-empty apply dropped the cached view", E::NAME);

    // A batch with a real view-level effect patches the cache in place:
    // still warm afterwards, and exact against a from-scratch rebuild.
    // Deleting n1's only outgoing edge demotes n1 while the chord keeps the
    // rest of the view alive (no total collapse, genuinely patched).
    let mut breaking = BatchUpdate::new();
    breaking.delete(NodeId(1), NodeId(2));
    let outcome = engine.apply(&mut graph, &breaking, 1);
    assert!(!outcome.delta.is_empty(), "{}: ring break left the view intact", E::NAME);
    assert!(engine.warm(), "{}: non-empty delta invalidated instead of patching", E::NAME);
    let fresh = E::build_shards(&pattern, &graph, 1);
    assert_eq!(engine.view(), fresh.view(), "{}: patched cache diverged from rebuild", E::NAME);
}

#[test]
fn sim_empty_delta_apply_keeps_cached_view() {
    cache_retention::<SimulationIndex>();
}

#[test]
fn bsim_empty_delta_apply_keeps_cached_view() {
    cache_retention::<BoundedIndex>();
}

// ---------------------------------------------------------------------------
// 5. Poisoned-read surface (satellite regression)
// ---------------------------------------------------------------------------

/// Two directed rings, ring A complete, ring B missing an edge; deleting a
/// ring-A edge and closing ring B forces both demotions and promotions, so
/// the promote-stage failpoint is guaranteed to fire on the returned batch.
struct TwoRings {
    graph: DataGraph,
    ring_a: Vec<NodeId>,
    ring_b: Vec<NodeId>,
}

impl TwoRings {
    fn new(ring_len: usize) -> Self {
        let mut graph = DataGraph::new();
        let ring = |graph: &mut DataGraph, complete: bool| -> Vec<NodeId> {
            let nodes: Vec<NodeId> =
                (0..ring_len).map(|i| graph.add_labeled_node(format!("l{}", i % 2))).collect();
            let last = if complete { ring_len } else { ring_len - 1 };
            for i in 0..last {
                graph.add_edge(nodes[i], nodes[(i + 1) % ring_len]);
            }
            nodes
        };
        let ring_a = ring(&mut graph, true);
        let ring_b = ring(&mut graph, false);
        TwoRings { graph, ring_a, ring_b }
    }

    /// The demote+promote batch: break ring A, close ring B's gap.
    fn poison_batch(&self) -> BatchUpdate {
        let n = self.ring_a.len();
        let mut batch = BatchUpdate::new();
        batch.delete(self.ring_a[0], self.ring_a[1]);
        batch.insert(self.ring_b[n - 1], self.ring_b[0]);
        batch
    }
}

fn two_ring_world(ring_len: usize) -> (DataGraph, BatchUpdate) {
    let world = TwoRings::new(ring_len);
    let batch = world.poison_batch();
    (world.graph, batch)
}

fn poisoned_read_surface<E: DeltaEngine>() {
    let _guard = serial();
    let pattern = E::cyclic_pattern();
    let (mut graph, batch) = two_ring_world(8);
    let mut engine = E::build_shards(&pattern, &graph, 1);
    let error =
        with_armed(E::POISON_SITE, || engine.try_apply_batch_with_shards(&mut graph, &batch, 1))
            .err()
            .unwrap_or_else(|| panic!("{}: promote failpoint never fired", E::NAME));
    let ApplyError::StagePanicked(info) = &error else {
        panic!("{}: expected StagePanicked, got {error}", E::NAME);
    };
    assert!(info.poisoned, "{}: promote-stage crash must poison", E::NAME);

    // Typed error path: `try_matches_view` (and `try_matches` through it)
    // reports `Poisoned` with the pinned Display string.
    let typed = engine.try_view().expect_err("poisoned read must fail");
    assert!(matches!(typed, ApplyError::Poisoned), "{}: wrong error: {typed:?}", E::NAME);
    assert_eq!(
        typed.to_string(),
        "index is poisoned by an earlier contained panic; call recover()",
        "{}: Poisoned Display drifted",
        E::NAME
    );
    let cloned = engine.try_matches().expect_err("poisoned try_matches must fail");
    assert!(matches!(cloned, ApplyError::Poisoned));

    // Panicking path: `matches_view` keeps its pinned message.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let panic = catch_unwind(AssertUnwindSafe(|| engine.view_ref_panics()))
        .expect_err("poisoned matches_view must panic");
    std::panic::set_hook(hook);
    let message = panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert_eq!(message, E::POISON_PANIC, "{}: matches_view panic message drifted", E::NAME);
}

#[test]
fn sim_poisoned_reads_pin_panic_and_error_strings() {
    poisoned_read_surface::<SimulationIndex>();
}

#[test]
fn bsim_poisoned_reads_pin_panic_and_error_strings() {
    poisoned_read_surface::<BoundedIndex>();
}

// ---------------------------------------------------------------------------
// 6. Lenient lockstep (satellite regression)
// ---------------------------------------------------------------------------

fn lenient_lockstep<E: DeltaEngine>(seed: u64) {
    let pattern = E::cyclic_pattern();
    let initial = seed_world(20, 2);
    for &shards in &SHARD_COUNTS {
        let mut rng = Rng(seed ^ shards as u64);
        let clean = gen_batch(&mut rng, &initial, 12);
        let clean_updates: Vec<Update> = clean.iter().copied().collect();

        // Splice invalid and redundant updates at known ORIGINAL positions:
        // position 0 an out-of-range insert, position 4 a duplicate insert
        // of position 3's edge, position 9 an out-of-range delete.
        let far = NodeId(initial.node_count() as u32 + 7);
        let mut updates = clean_updates.clone();
        updates.insert(0, Update::InsertEdge { from: far, to: NodeId(0) });
        let dup = updates[3]; // repeating an insert duplicates, a delete double-deletes
        updates.insert(4, dup);
        updates.insert(9, Update::DeleteEdge { from: NodeId(1), to: far });
        let dirty: BatchUpdate = updates.iter().copied().collect();

        // Lenient replica swallows the dirty batch…
        let mut lenient_graph = initial.clone();
        let mut lenient_engine = E::build_shards(&pattern, &lenient_graph, shards);
        let report = lenient_engine
            .lenient(&mut lenient_graph, &dirty, shards)
            .unwrap_or_else(|e| panic!("{} shards={shards}: lenient apply failed: {e}", E::NAME));

        // …the strict replica applies only the clean updates.
        let mut strict_graph = initial.clone();
        let mut strict_engine = E::build_shards(&pattern, &strict_graph, shards);
        let strict = strict_engine
            .try_apply_batch_with_shards(&mut strict_graph, &clean, shards)
            .unwrap_or_else(|e| panic!("{} shards={shards}: strict apply failed: {e}", E::NAME));

        // Rejections carry ORIGINAL positions — exactly the spliced slots.
        let positions: Vec<usize> = report.rejected.iter().map(|r| r.position).collect();
        assert_eq!(
            positions,
            vec![0, 4, 9],
            "{} shards={shards}: rejection positions are not original-batch positions",
            E::NAME
        );
        assert!(matches!(report.rejected[0].reason, RejectReason::NodeOutOfRange));
        assert!(matches!(
            report.rejected[1].reason,
            RejectReason::DuplicateInsert | RejectReason::AbsentDelete
        ));
        assert!(matches!(report.rejected[2].reason, RejectReason::NodeOutOfRange));

        // The emitted delta equals the strict path's delta on surviving ops,
        // and both replicas land on identical state.
        assert_eq!(
            report.delta,
            strict.delta,
            "{} shards={shards}: lenient delta diverged from strict",
            E::NAME
        );
        assert!(
            lenient_graph.identical_to(&strict_graph),
            "{} shards={shards}: graphs diverged",
            E::NAME
        );
        assert_eq!(
            lenient_engine.view(),
            strict_engine.view(),
            "{} shards={shards}: views diverged",
            E::NAME
        );
    }
}

#[test]
fn sim_lenient_reports_original_positions_and_strict_delta() {
    lenient_lockstep::<SimulationIndex>(0x1E41);
}

#[test]
fn bsim_lenient_reports_original_positions_and_strict_delta() {
    lenient_lockstep::<BoundedIndex>(0x1E42);
}

// ---------------------------------------------------------------------------
// 7. Durable replay identity and subscription semantics
// ---------------------------------------------------------------------------

const DURABILITY_SITES: [&str; 6] = [
    fail::WAL_APPEND_HEADER,
    fail::WAL_APPEND_BODY,
    fail::WAL_FSYNC,
    fail::CKPT_WRITE,
    fail::CKPT_RENAME,
    fail::WAL_PRUNE,
];

fn durable_opts(shards: usize, checkpoint_every: u64, delta_buffer: usize) -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every,
        keep_checkpoints: 2,
        shards,
        delta_buffer,
    }
}

/// Drains a subscription into `(seq → delta)`, asserting no `Lagged` events.
fn drain_deltas(sub: &mut Subscription, sink: &mut BTreeMap<u64, MatchDelta>, context: &str) {
    while let Some(event) = sub.poll() {
        match event {
            DeltaEvent::Delta { seq, delta } => {
                let prior = sink.insert(seq, (*delta).clone());
                assert!(prior.is_none(), "{context}: seq {seq} emitted twice");
            }
            DeltaEvent::Lagged { missed, resume_seq } => {
                panic!("{context}: unexpected lag (missed {missed}, resume {resume_seq})")
            }
        }
    }
}

/// The uninterrupted run: every batch applied, the full delta stream
/// collected, the final matches snapshotted.
fn reference_deltas<E: DeltaEngine>(
    pattern: &Pattern,
    initial: &DataGraph,
    batches: &[BatchUpdate],
    opts: &DurableOptions,
) -> (BTreeMap<u64, MatchDelta>, MatchRelation) {
    let scratch = Scratch::new("reference");
    let mut index: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), pattern, initial, opts.clone()).expect("open");
    let mut sub = index.subscribe_from(1);
    let mut deltas = BTreeMap::new();
    for (i, batch) in batches.iter().enumerate() {
        index.apply(batch).unwrap_or_else(|e| panic!("reference batch {i} failed: {e}"));
    }
    drain_deltas(&mut sub, &mut deltas, "reference run");
    assert_eq!(deltas.len(), batches.len(), "reference run must publish every batch");
    (deltas, index.try_matches().expect("reference readable"))
}

/// Crash at `site`, reopen fresh, and check the re-subscribed delta stream
/// (WAL-tail replay included) plus the continuation match the reference.
fn crash_site_replay_identity<E: DeltaEngine>(site: &str, seed: u64) {
    let pattern = E::cyclic_pattern();
    let initial = seed_world(20, 2);
    let mut rng = Rng(seed);
    let batches = gen_stream(&mut rng, &initial, 10, 8);
    // checkpoint_every=3 keeps the ckpt/prune sites reachable.
    let opts = durable_opts(1, 3, 1024);
    let (expected, expected_final) = reference_deltas::<E>(&pattern, &initial, &batches, &opts);

    let scratch = Scratch::new("crash");
    let context = format!("{} site `{site}`", E::NAME);
    let mut crashed = false;
    {
        let mut index: DurableIndex<E> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
                .expect("open");
        for batch in &batches {
            let result = with_armed(site, || catch_unwind(AssertUnwindSafe(|| index.apply(batch))));
            match result {
                Ok(apply) => {
                    apply.unwrap_or_else(|e| panic!("{context}: apply failed cleanly: {e}"));
                }
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
    }
    assert!(crashed, "{context}: armed failpoint never fired");

    // Reopen: a fresh ring replays (and re-publishes) the WAL tail above the
    // newest checkpoint; everything below it surfaces as one explicit lag.
    let mut index: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
            .expect("reopen");
    let base = index.last_checkpoint_seq();
    if base > 0 {
        let mut from_start = index.subscribe_from(1);
        match from_start.poll() {
            Some(DeltaEvent::Lagged { missed, resume_seq }) => {
                assert_eq!(missed, base, "{context}: lag must cover the checkpointed prefix");
                assert_eq!(resume_seq, base + 1, "{context}: lag resume sequence");
            }
            other => panic!("{context}: checkpointed prefix must lag, got {other:?}"),
        }
    }
    let mut sub = index.subscribe_from(base + 1);
    let mut collected = BTreeMap::new();
    drain_deltas(&mut sub, &mut collected, &context);
    let resumed_from = index.sequence() as usize;
    for (i, batch) in batches.iter().enumerate().skip(resumed_from) {
        index.apply(batch).unwrap_or_else(|e| panic!("{context}: resumed batch {i}: {e}"));
    }
    drain_deltas(&mut sub, &mut collected, &context);

    for (seq, delta) in &collected {
        assert_eq!(
            Some(delta),
            expected.get(seq),
            "{context}: delta at seq {seq} differs from the never-crashed run"
        );
    }
    assert_eq!(
        collected.len(),
        batches.len() - base as usize,
        "{context}: replay + continuation must cover every batch above the checkpoint"
    );
    assert_eq!(
        index.try_matches().expect("recovered readable"),
        expected_final,
        "{context}: final matches diverged"
    );
}

#[test]
fn sim_crash_at_every_durability_site_replays_identical_deltas() {
    let _guard = serial();
    for (i, site) in DURABILITY_SITES.iter().enumerate() {
        crash_site_replay_identity::<SimulationIndex>(site, 0xDEAD + i as u64);
    }
}

#[test]
fn bsim_crash_at_every_durability_site_replays_identical_deltas() {
    let _guard = serial();
    for (i, site) in DURABILITY_SITES.iter().enumerate() {
        crash_site_replay_identity::<BoundedIndex>(site, 0xBEEF + i as u64);
    }
}

/// A contained engine panic mid-stream: the index turns poisoned with the
/// batch logged but unpublished; `recover()` replays it and the live
/// subscription observes every sequence number exactly once — no gap, no
/// duplicate — exactly as the never-crashed run would have shown it.
fn inplace_recover_republishes_swallowed_tail<E: DeltaEngine>() {
    let _guard = serial();
    let pattern = E::cyclic_pattern();
    let world = TwoRings::new(8);
    let initial = world.graph.clone();
    let poison_batch = world.poison_batch();
    // Deterministic warmup that leaves both rings' critical edges alone
    // (chords inside ring A only), so the poison batch stays valid and
    // still forces demote + promote work after the warmup.
    let chord = |from: usize, to: usize, insert: bool| {
        let mut batch = BatchUpdate::new();
        if insert {
            batch.insert(world.ring_a[from], world.ring_a[to]);
        } else {
            batch.delete(world.ring_a[from], world.ring_a[to]);
        }
        batch
    };
    let warmup = vec![chord(0, 3, true), chord(2, 5, true), chord(0, 3, false), chord(4, 7, true)];

    let opts = durable_opts(1, 0, 1024);
    let (expected, expected_final) = {
        let mut all = warmup.clone();
        all.push(poison_batch.clone());
        reference_deltas::<E>(&pattern, &initial, &all, &opts)
    };

    let scratch = Scratch::new("inplace");
    let mut index: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts).expect("open");
    let mut sub = index.subscribe_from(1);
    let mut collected = BTreeMap::new();
    for (i, batch) in warmup.iter().enumerate() {
        index.apply(batch).unwrap_or_else(|e| panic!("warmup batch {i} failed: {e}"));
    }
    let error = with_armed(E::POISON_SITE, || index.apply(&poison_batch))
        .err()
        .unwrap_or_else(|| panic!("{}: promote failpoint never fired", E::NAME));
    assert!(
        matches!(error, DurableError::Apply(ApplyError::StagePanicked(_))),
        "{}: expected contained stage panic, got {error}",
        E::NAME
    );
    assert!(index.poisoned(), "{}: logged-not-applied must poison", E::NAME);

    index.recover().unwrap_or_else(|e| panic!("{}: recover failed: {e}", E::NAME));
    drain_deltas(&mut sub, &mut collected, E::NAME);

    assert_eq!(
        collected,
        expected,
        "{}: in-place recovery must re-emit exactly the swallowed tail",
        E::NAME
    );
    assert_eq!(
        index.try_matches().expect("recovered readable"),
        expected_final,
        "{}: recovered matches diverged",
        E::NAME
    );
}

#[test]
fn sim_inplace_recover_republishes_only_swallowed_deltas() {
    inplace_recover_republishes_swallowed_tail::<SimulationIndex>();
}

#[test]
fn bsim_inplace_recover_republishes_only_swallowed_deltas() {
    inplace_recover_republishes_swallowed_tail::<BoundedIndex>();
}

/// Bounded ring: a subscriber that falls further behind than
/// `delta_buffer` observes one explicit `Lagged` with an exact drop count,
/// then the retained tail, then catches up.
#[test]
fn slow_subscriber_observes_explicit_lag() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(16, 2);
    let mut rng = Rng(0x0F10);
    let batches = gen_stream(&mut rng, &initial, 10, 6);
    let scratch = Scratch::new("lag");
    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, durable_opts(1, 0, 4))
            .expect("open");
    let mut sub = index.subscribe(); // next_seq = 1, never polled while 10 batches land
    assert_eq!(sub.next_seq(), 1);
    for (i, batch) in batches.iter().enumerate() {
        index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
    }
    match sub.poll() {
        Some(DeltaEvent::Lagged { missed, resume_seq }) => {
            assert_eq!(missed, 6, "ring of 4 over 10 batches drops exactly 6");
            assert_eq!(resume_seq, 7);
        }
        other => panic!("expected lag, got {other:?}"),
    }
    for expected_seq in 7..=10u64 {
        match sub.poll() {
            Some(DeltaEvent::Delta { seq, .. }) => assert_eq!(seq, expected_seq),
            other => panic!("expected delta at {expected_seq}, got {other:?}"),
        }
    }
    assert!(sub.poll().is_none(), "caught-up subscriber must poll None");
    assert_eq!(sub.next_seq(), 11);
}

/// Folding the subscription stream into a snapshot reproduces every view:
/// the advertised consumer contract, end to end through checkpoint+WAL.
#[test]
fn folding_subscription_deltas_reproduces_the_view() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(22, 2);
    let mut rng = Rng(0xF01D);
    let batches = gen_stream(&mut rng, &initial, 16, 10);
    let scratch = Scratch::new("fold");
    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, durable_opts(1, 0, 1024))
            .expect("open");
    let mut snapshot = index.try_matches().expect("initial view");
    let mut sub = index.subscribe();
    for (i, batch) in batches.iter().enumerate() {
        index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        match sub.poll() {
            Some(DeltaEvent::Delta { seq, delta }) => {
                assert_eq!(seq, i as u64 + 1, "subscription sequence aligns with the WAL");
                delta.apply_to(&mut snapshot);
            }
            other => panic!("batch {i}: expected delta, got {other:?}"),
        }
        assert_eq!(
            snapshot,
            index.try_matches().expect("readable"),
            "batch {i}: folded snapshot drifted from the live view"
        );
    }
}

// ---------------------------------------------------------------------------
// 8. `subscribe_from` edge cases: sequence 0 and cursors around checkpoints
// ---------------------------------------------------------------------------

/// Batch sequence numbers start at 1 (0 is the bootstrap checkpoint, not a
/// batch), so `subscribe_from(0)` on a fresh index is the full stream: it
/// must poll `None` — never a phantom `Lagged` for the nonexistent batch
/// 0 — and then see batch 1 first. Regression for the fabricated
/// `Lagged { missed: 1 }` the old cursor produced.
#[test]
fn subscribe_from_zero_is_the_full_stream_without_phantom_lag() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(16, 2);
    let mut rng = Rng(0x5EB0);
    let batches = gen_stream(&mut rng, &initial, 3, 6);
    let scratch = Scratch::new("seq0");
    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, durable_opts(1, 0, 1024))
            .expect("open");

    let mut from_zero = index.subscribe_from(0);
    let mut from_one = index.subscribe_from(1);
    assert!(from_zero.poll().is_none(), "nothing committed yet: seq 0 must poll None, not lag");
    assert_eq!(from_zero.next_seq(), 1, "seq 0 clamps to the first real batch sequence");

    for (i, batch) in batches.iter().enumerate() {
        index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
    }
    for expected_seq in 1..=batches.len() as u64 {
        match (from_zero.poll(), from_one.poll()) {
            (
                Some(DeltaEvent::Delta { seq: a, delta: da }),
                Some(DeltaEvent::Delta { seq: b, delta: db }),
            ) => {
                assert_eq!(a, expected_seq, "seq-0 cursor out of order");
                assert_eq!(b, expected_seq, "seq-1 cursor out of order");
                assert_eq!(da, db, "seq 0 and seq 1 must be the same stream");
            }
            other => panic!("expected twin deltas at {expected_seq}, got {other:?}"),
        }
    }
    assert!(from_zero.poll().is_none());
    assert!(from_one.poll().is_none());
}

/// A cursor above the high-water mark is a *future* cursor: `poll` stays
/// `None` (no lag — the skipped prefix was skipped on purpose) until that
/// batch commits, then the stream starts exactly there.
#[test]
fn future_cursor_skips_silently_then_resumes_exactly_there() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(16, 2);
    let mut rng = Rng(0xF07E);
    let batches = gen_stream(&mut rng, &initial, 4, 6);
    let scratch = Scratch::new("future");
    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, durable_opts(1, 0, 1024))
            .expect("open");

    let mut sub = index.subscribe_from(3);
    for (i, batch) in batches.iter().enumerate().take(2) {
        index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        assert!(sub.poll().is_none(), "batch {i}: a future cursor must stay silent, not lag");
    }
    for (i, batch) in batches.iter().enumerate().skip(2) {
        index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        match sub.poll() {
            Some(DeltaEvent::Delta { seq, .. }) => {
                assert_eq!(seq, i as u64 + 1, "stream must start exactly at the cursor")
            }
            other => panic!("batch {i}: expected delta, got {other:?}"),
        }
    }
    assert!(sub.poll().is_none());
}

/// After a checkpoint prunes the stream's prefix and the directory is
/// reopened (fresh ring), `subscribe_from` below the checkpoint reports the
/// unrecoverable gap as one exact `Lagged`; at the boundary it is a clean
/// future cursor. `subscribe_from(0)` misses 5 batches, not 6 — there is no
/// batch 0.
#[test]
fn subscribe_from_below_a_pruned_checkpoint_lags_exactly() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(18, 2);
    let mut rng = Rng(0xC4B0);
    let batches = gen_stream(&mut rng, &initial, 6, 6);
    let scratch = Scratch::new("pruned");
    let opts = durable_opts(1, 0, 1024);
    {
        let mut index: DurableIndex<SimulationIndex> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
                .expect("open");
        for (i, batch) in batches.iter().enumerate().take(5) {
            index.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        }
        assert_eq!(index.checkpoint().expect("checkpoint"), 5);
    }

    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts).expect("reopen");
    assert_eq!(index.last_checkpoint_seq(), 5);

    for (from, missed) in [(0u64, 5u64), (1, 5), (3, 3), (5, 1)] {
        let mut sub = index.subscribe_from(from);
        match sub.poll() {
            Some(DeltaEvent::Lagged { missed: m, resume_seq }) => {
                assert_eq!(m, missed, "subscribe_from({from}): exact drop count");
                assert_eq!(resume_seq, 6, "subscribe_from({from}): resume above the checkpoint");
            }
            other => panic!("subscribe_from({from}): expected lag, got {other:?}"),
        }
        assert!(sub.poll().is_none(), "subscribe_from({from}): nothing above the checkpoint yet");
    }

    // The boundary cursor is a future cursor: silent until batch 6 commits.
    let mut boundary = index.subscribe_from(6);
    assert!(boundary.poll().is_none(), "boundary cursor must not lag");
    index.apply(&batches[5]).expect("batch 6");
    match boundary.poll() {
        Some(DeltaEvent::Delta { seq, .. }) => assert_eq!(seq, 6),
        other => panic!("expected delta at 6, got {other:?}"),
    }
}

/// The same three edge cases through `DurableMatchService`, whose
/// subscription logic is a separate implementation over pattern-keyed
/// bundles: seq 0 ≡ seq 1, future cursors stay silent, and reopening above
/// a checkpoint lags with batch-granular counts.
#[test]
fn service_subscribe_from_matches_index_semantics() {
    let pattern = SimulationIndex::cyclic_pattern();
    let initial = seed_world(18, 2);
    let mut rng = Rng(0x5E8F);
    let batches = gen_stream(&mut rng, &initial, 6, 6);
    let scratch = Scratch::new("svc-cursor");
    let opts = durable_opts(1, 0, 1024);
    let pid;
    {
        let (mut service, pids) = DurableMatchService::<SimulationIndex>::open(
            scratch.path().clone(),
            std::slice::from_ref(&pattern),
            &initial,
            opts.clone(),
        )
        .expect("open");
        pid = pids[0];

        let mut from_zero = service.subscribe_from(0);
        assert!(from_zero.poll().is_none(), "seq 0 on a fresh service must poll None, not lag");
        let mut future = service.subscribe_from(3);

        for (i, batch) in batches.iter().enumerate().take(5) {
            service.apply(batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
            match from_zero.poll() {
                Some(ServiceDeltaEvent::Delta { pattern_id, seq, .. }) => {
                    assert_eq!(pattern_id, pid);
                    assert_eq!(seq, i as u64 + 1, "seq-0 cursor sees the stream from batch 1");
                }
                other => panic!("batch {i}: expected delta, got {other:?}"),
            }
            if i < 2 {
                assert!(future.poll().is_none(), "batch {i}: future cursor must stay silent");
            } else {
                match future.poll() {
                    Some(ServiceDeltaEvent::Delta { seq, .. }) => assert_eq!(seq, i as u64 + 1),
                    other => panic!("batch {i}: expected delta, got {other:?}"),
                }
            }
        }
        assert_eq!(service.checkpoint().expect("checkpoint"), 5);
    }

    let (mut service, _pids) = DurableMatchService::<SimulationIndex>::open(
        scratch.path().clone(),
        std::slice::from_ref(&pattern),
        &initial,
        opts,
    )
    .expect("reopen");
    for (from, missed) in [(0u64, 5u64), (3, 3)] {
        let mut sub = service.subscribe_from(from);
        match sub.poll() {
            Some(ServiceDeltaEvent::Lagged { missed: m, resume_seq }) => {
                assert_eq!(m, missed, "service subscribe_from({from}): exact drop count");
                assert_eq!(resume_seq, 6);
            }
            other => panic!("service subscribe_from({from}): expected lag, got {other:?}"),
        }
        assert!(sub.poll().is_none());
    }
    let mut boundary = service.subscribe_from(6);
    assert!(boundary.poll().is_none(), "service boundary cursor must not lag");
    service.apply(&batches[5]).expect("batch 6");
    match boundary.poll() {
        Some(ServiceDeltaEvent::Delta { seq, .. }) => assert_eq!(seq, 6),
        other => panic!("expected service delta at 6, got {other:?}"),
    }
}
