//! Conformance suite for the asynchronous ingestion front-end (`Ingest`).
//!
//! The contract under test (see `crates/core/src/ingest.rs`):
//!
//! * **Equivalence** — for any interleaving of producers and any adaptive-cap
//!   trajectory, draining through the ingest leaves the sink in exactly the
//!   state of applying the accepted submissions synchronously, one by one, in
//!   queue order; and replaying the coalesced batches the sink actually saw
//!   (recovered from `IngestApply::seq` groupings) through a synchronous
//!   `DurableIndex` reproduces the durable **delta stream bit-identically**,
//!   for both engines and every shard count in {1, 2, 3, 8}.
//! * **Strict per-op rejection semantics** — lenient submissions keep their
//!   rejection positions in their *own* batch even after the coalescer merges
//!   them with neighbours (the `apply_batch_lenient` audit).
//! * **Bounded queue, never silently dropping** — backpressure is a typed
//!   refusal, blocking producers wake when a drain frees space, and shutdown
//!   flushes every enqueued submission mid-burst.
//! * **Failure composition** — a contained sink error (shared-stage panic in
//!   the service, rolled back) fails one cycle and the ingest keeps running;
//!   a sink panic (the durability crash model) kills the ingest, and the
//!   durable directory reopens through ordinary recovery with the WAL-aligned
//!   replay re-emitting exactly what the never-crashed run published.
//!
//! The failpoint registry is process-global, so the failpoint-driven tests
//! serialise on one mutex and run with a muted panic hook while armed.

use igpm::core::IncrementalEngine;
use igpm::graph::fail;
use igpm::graph::wal::FsyncPolicy;
use igpm::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Serialises the failpoint-driven tests: the registry is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with `site` armed and the default panic hook muted.
fn with_armed<T>(site: &str, f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = {
        let _armed = fail::arm_scoped(site);
        f()
    };
    std::panic::set_hook(hook);
    result
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("igpm-ingest-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic splitmix-style generator: same seed, same stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 17
    }
}

fn seed_world(n: usize, labels: usize) -> DataGraph {
    let mut graph = DataGraph::new();
    let nodes: Vec<NodeId> =
        (0..n).map(|i| graph.add_labeled_node(format!("l{}", i % labels))).collect();
    for i in 0..n {
        graph.add_edge(nodes[i], nodes[(i + 1) % n]);
    }
    graph
}

/// One validation-clean batch: every update is effective at its position.
fn gen_batch(rng: &mut Rng, graph: &DataGraph, per_batch: usize) -> BatchUpdate {
    let nv = graph.node_count() as u64;
    let mut batch = BatchUpdate::new();
    let mut overlay: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    while batch.len() < per_batch {
        let a = NodeId((rng.next() % nv) as u32);
        let b = NodeId((rng.next() % nv) as u32);
        if a == b {
            continue;
        }
        let present = *overlay.entry((a, b)).or_insert_with(|| graph.has_edge(a, b));
        if present {
            batch.delete(a, b);
        } else {
            batch.insert(a, b);
        }
        overlay.insert((a, b), !present);
    }
    batch
}

/// A stream of submissions, each valid against the graph left by its
/// predecessors — exactly what per-submission ingest validation admits.
fn gen_stream(
    rng: &mut Rng,
    initial: &DataGraph,
    count: usize,
    per_batch: usize,
) -> Vec<BatchUpdate> {
    let mut graph = initial.clone();
    (0..count)
        .map(|_| {
            let batch = gen_batch(rng, &graph, per_batch);
            batch.apply(&mut graph);
            batch
        })
        .collect()
}

fn durable_opts(shards: usize, checkpoint_every: u64) -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every,
        keep_checkpoints: 2,
        shards,
        delta_buffer: 4096,
    }
}

/// Drains a subscription into `(seq → delta)`, asserting no `Lagged` events.
fn drain_deltas(sub: &mut Subscription, sink: &mut BTreeMap<u64, MatchDelta>, context: &str) {
    while let Some(event) = sub.poll() {
        match event {
            DeltaEvent::Delta { seq, delta } => {
                let prior = sink.insert(seq, (*delta).clone());
                assert!(prior.is_none(), "{context}: seq {seq} emitted twice");
            }
            DeltaEvent::Lagged { missed, resume_seq } => {
                panic!("{context}: unexpected lag (missed {missed}, resume {resume_seq})")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine abstraction (the ingest suite needs a small slice of both engines)
// ---------------------------------------------------------------------------

trait IngestEngine: IncrementalEngine {
    const NAME: &'static str;
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self;
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome;
    fn view(&self) -> MatchRelation;
    /// Cyclic 2-node pattern `l0 ⇄ l1` (SCC promotion phases run).
    fn cyclic_pattern() -> Pattern;
}

impl IngestEngine for SimulationIndex {
    const NAME: &'static str = "sim";
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        SimulationIndex::build_with_shards(pattern, graph, shards)
    }
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, shards)
    }
    fn view(&self) -> MatchRelation {
        self.matches()
    }
    fn cyclic_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        p.add_normal_edge(a, b);
        p.add_normal_edge(b, a);
        p
    }
}

impl IngestEngine for BoundedIndex {
    const NAME: &'static str = "bsim";
    fn build_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        BoundedIndex::build_with_shards(pattern, graph, shards)
    }
    fn apply(&mut self, graph: &mut DataGraph, batch: &BatchUpdate, shards: usize) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, shards)
    }
    fn view(&self) -> MatchRelation {
        self.matches()
    }
    fn cyclic_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("l0");
        let b = p.add_labeled_node("l1");
        p.add_edge(a, b, EdgeBound::Hops(1));
        p.add_edge(b, a, EdgeBound::Unbounded);
        p
    }
}

// ---------------------------------------------------------------------------
// 1. Delta-stream equivalence: ingest vs synchronous application
// ---------------------------------------------------------------------------

/// The tentpole contract. A seeded stream of submissions goes through a
/// manual-drain ingest over a `DurableIndex`, drained in seeded waves so the
/// adaptive cap actually moves. Then:
///
/// * the `IngestApply::seq` groupings must partition the submissions into
///   contiguous coalesced batches (offsets tile each batch exactly);
/// * replaying those *same* coalesced batches through a synchronous
///   `DurableIndex` in a second directory reproduces the delta stream
///   bit-identically, sequence by sequence;
/// * a plain engine applying the submissions one by one — no coalescing at
///   all — lands on the identical final view and graph.
fn ingest_stream_equivalence<E: IngestEngine>(seed: u64) {
    let pattern = E::cyclic_pattern();
    let initial = seed_world(20, 2);
    for &shards in &SHARD_COUNTS {
        let context = format!("{} shards={shards}", E::NAME);
        let mut rng = Rng(seed ^ (shards as u64) << 32);
        let submissions = gen_stream(&mut rng, &initial, 36, 2);
        let opts = durable_opts(shards, 0);

        let scratch = Scratch::new("equiv");
        let sink: DurableIndex<E> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
                .expect("open ingest sink");
        let ingest_opts =
            IngestOptions { queue_capacity: 4096, min_batch: 2, max_batch: 16, burst_backlog: 4 };
        let mut ingest = Ingest::new_manual(sink, ingest_opts);
        let handle = ingest.handle();
        let mut tickets = Vec::new();
        for batch in &submissions {
            tickets.push(handle.try_submit(batch.clone()).expect("queue is large enough"));
            if rng.next().is_multiple_of(3) {
                ingest.drain_once();
            }
        }
        while ingest.drain_once() > 0 {}
        let applies: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap_or_else(|e| panic!("{context}: submission failed: {e}")))
            .collect();

        // Recover the coalesced batches the sink actually saw.
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, apply) in applies.iter().enumerate() {
            assert!(apply.rejected.is_empty(), "{context}: spurious strip");
            assert_eq!(apply.applied_ops, submissions[i].len(), "{context}: ops went missing");
            groups.entry(apply.seq).or_default().push(i);
        }
        let coalesced: Vec<BatchUpdate> = groups
            .values()
            .map(|members| {
                let mut members = members.clone();
                members.sort_by_key(|&i| applies[i].offset);
                let mut merged = BatchUpdate::new();
                for &i in &members {
                    assert_eq!(
                        applies[i].offset,
                        merged.len(),
                        "{context}: offsets must tile the coalesced batch"
                    );
                    for &update in submissions[i].iter() {
                        merged.push(update);
                    }
                }
                let total = applies[members[0]].coalesced_ops;
                assert_eq!(merged.len(), total, "{context}: coalesced size mismatch");
                merged
            })
            .collect();
        assert!(
            coalesced.len() < submissions.len(),
            "{context}: the waves must actually coalesce something"
        );

        let sink = ingest.shutdown().expect("sink survives a clean run");
        let mut ingest_deltas = BTreeMap::new();
        drain_deltas(&mut sink.subscribe_from(1), &mut ingest_deltas, &context);
        assert_eq!(ingest_deltas.len(), coalesced.len(), "{context}: one delta per sink batch");

        // Synchronous control #1: the same coalesced batches, same shard
        // count, fresh directory — the delta stream must be bit-identical.
        let control_scratch = Scratch::new("equiv-control");
        let mut control: DurableIndex<E> =
            DurableIndex::open(control_scratch.path().clone(), &pattern, &initial, opts)
                .expect("open control");
        for (i, batch) in coalesced.iter().enumerate() {
            control.apply(batch).unwrap_or_else(|e| panic!("{context}: control batch {i}: {e}"));
        }
        let mut control_deltas = BTreeMap::new();
        drain_deltas(&mut control.subscribe_from(1), &mut control_deltas, &context);
        assert_eq!(
            ingest_deltas, control_deltas,
            "{context}: ingest delta stream diverged from synchronous application"
        );
        assert!(
            sink.graph().identical_to(control.graph()),
            "{context}: graphs diverged from the coalesced control"
        );

        // Synchronous control #2: one submission at a time, no coalescing.
        // Grouping changes the net-effect reduction's *mutation order*, so
        // adjacency lists may be permuted — the edge set and the match view
        // must still be identical.
        let mut unit_graph = initial.clone();
        let mut unit_engine = E::build_shards(&pattern, &initial, shards);
        for submission in &submissions {
            unit_engine.apply(&mut unit_graph, submission, shards);
        }
        let edge_set = |graph: &DataGraph| {
            let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(
            edge_set(sink.graph()),
            edge_set(&unit_graph),
            "{context}: edge set diverged from per-submission application"
        );
        assert_eq!(
            sink.try_matches().expect("sink readable"),
            unit_engine.view(),
            "{context}: final view diverged from per-submission application"
        );
    }
}

#[test]
fn sim_ingest_delta_stream_equals_synchronous_application() {
    ingest_stream_equivalence::<SimulationIndex>(0x16E5_0001);
}

#[test]
fn bsim_ingest_delta_stream_equals_synchronous_application() {
    ingest_stream_equivalence::<BoundedIndex>(0x16E5_0002);
}

/// With the cap pinned to 1 every submission is its own sink batch, so the
/// ingest delta stream must equal the per-submission synchronous stream
/// *sequence by sequence* — the literal no-coalescing identity.
fn per_submission_cap_identity<E: IngestEngine>(seed: u64) {
    let pattern = E::cyclic_pattern();
    let initial = seed_world(16, 2);
    for &shards in &[1usize, 8] {
        let context = format!("{} shards={shards} cap=1", E::NAME);
        let mut rng = Rng(seed ^ shards as u64);
        let submissions = gen_stream(&mut rng, &initial, 12, 2);
        let opts = durable_opts(shards, 0);

        let scratch = Scratch::new("cap1");
        let sink: DurableIndex<E> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
                .expect("open");
        let ingest_opts =
            IngestOptions { queue_capacity: 4096, min_batch: 1, max_batch: 1, burst_backlog: 4 };
        let mut ingest = Ingest::new_manual(sink, ingest_opts);
        let handle = ingest.handle();
        let tickets: Vec<_> = submissions
            .iter()
            .map(|batch| handle.try_submit(batch.clone()).expect("enqueue"))
            .collect();
        while ingest.drain_once() > 0 {}
        for (i, ticket) in tickets.into_iter().enumerate() {
            let apply = ticket.wait().unwrap_or_else(|e| panic!("{context}: {e}"));
            assert_eq!(apply.seq, i as u64 + 1, "{context}: one WAL sequence per submission");
            assert_eq!(apply.coalesced_ops, submissions[i].len(), "{context}: no coalescing");
        }
        let sink = ingest.shutdown().expect("clean run");
        let mut ingest_deltas = BTreeMap::new();
        drain_deltas(&mut sink.subscribe_from(1), &mut ingest_deltas, &context);

        let control_scratch = Scratch::new("cap1-control");
        let mut control: DurableIndex<E> =
            DurableIndex::open(control_scratch.path().clone(), &pattern, &initial, opts)
                .expect("open control");
        for (i, batch) in submissions.iter().enumerate() {
            control.apply(batch).unwrap_or_else(|e| panic!("{context}: control {i}: {e}"));
        }
        let mut control_deltas = BTreeMap::new();
        drain_deltas(&mut control.subscribe_from(1), &mut control_deltas, &context);
        assert_eq!(ingest_deltas, control_deltas, "{context}: streams must be bit-identical");
    }
}

#[test]
fn sim_per_submission_cap_is_bit_identical_to_unit_application() {
    per_submission_cap_identity::<SimulationIndex>(0xCA11);
}

#[test]
fn bsim_per_submission_cap_is_bit_identical_to_unit_application() {
    per_submission_cap_identity::<BoundedIndex>(0xCA12);
}

// ---------------------------------------------------------------------------
// 2. Multi-producer interleavings and shutdown-flush
// ---------------------------------------------------------------------------

fn producer_world(producers: usize, region: usize) -> DataGraph {
    let mut graph = DataGraph::new();
    for _ in 0..producers {
        for i in 0..region {
            graph.add_labeled_node(if i % 2 == 0 { "A" } else { "B" });
        }
    }
    graph
}

fn edge_service(graph: DataGraph) -> (MatchService<SimulationIndex>, PatternId) {
    let mut service = MatchService::with_shards(graph, 1);
    let mut p = Pattern::new();
    let a = p.add_labeled_node("A");
    let b = p.add_labeled_node("B");
    p.add_normal_edge(a, b);
    let id = service.register(&p).expect("register");
    (service, id)
}

/// Four producer threads hammer a threaded ingest over disjoint edge
/// regions: every submission resolves `Ok`, each producer's commits are
/// FIFO (its `seq` values never go backwards), and the final state equals
/// the region-wise net effect — independent of the interleaving.
#[test]
fn multi_producer_interleavings_commit_fifo_and_converge() {
    const PRODUCERS: usize = 4;
    const REGION: usize = 16;
    const EDGES: usize = 4;
    const ROUNDS: usize = 5; // odd per edge → every edge ends present

    let (service, pid) = edge_service(producer_world(PRODUCERS, REGION));
    let ingest = Ingest::spawn(service, IngestOptions::default());
    let handle = ingest.handle();

    let mut joins = Vec::new();
    for p in 0..PRODUCERS {
        let handle = handle.clone();
        joins.push(std::thread::spawn(move || {
            let base = (p * REGION) as u32;
            let mut tickets = Vec::new();
            for round in 0..ROUNDS {
                for k in 0..EDGES as u32 {
                    let (from, to) = (NodeId(base + 2 * k), NodeId(base + 2 * k + 1));
                    let update = if round % 2 == 0 {
                        Update::insert(from, to)
                    } else {
                        Update::delete(from, to)
                    };
                    let batch: BatchUpdate = std::iter::once(update).collect();
                    tickets.push(handle.submit(batch).expect("ingest is open"));
                }
            }
            tickets
        }));
    }
    for join in joins {
        let tickets = join.join().expect("producer thread");
        let mut last_seq = 0u64;
        for ticket in tickets {
            let apply = ticket.wait().expect("every valid submission commits");
            assert!(apply.seq >= last_seq, "a producer's own submissions commit in order");
            last_seq = apply.seq;
        }
    }

    let stats = ingest.stats();
    assert_eq!(stats.submitted, (PRODUCERS * EDGES * ROUNDS) as u64);
    assert_eq!(stats.committed_ops, stats.submitted_ops, "nothing dropped, nothing rejected");
    assert_eq!(stats.rejected_submissions, 0);

    let service = ingest.shutdown().expect("clean shutdown returns the sink");
    let (mut control, control_pid) = edge_service(producer_world(PRODUCERS, REGION));
    let mut net = BatchUpdate::new();
    for p in 0..PRODUCERS as u32 {
        let base = p * REGION as u32;
        for k in 0..EDGES as u32 {
            net.insert(NodeId(base + 2 * k), NodeId(base + 2 * k + 1));
        }
    }
    control.apply(&net).expect("control net batch");
    assert!(service.graph().identical_to(control.graph()), "net effect diverged");
    assert_eq!(
        service.matches(pid).expect("sink view"),
        control.matches(control_pid).expect("control view"),
        "final match view diverged"
    );
}

/// Shutdown mid-burst: a producer floods the queue while the owner shuts
/// down. Every *enqueued* submission still resolves `Ok` (the flush
/// guarantee), refusals at the door are typed `Closed`, and the sink state
/// equals the synchronous application of exactly the accepted prefix.
#[test]
fn shutdown_flushes_every_enqueued_submission_mid_burst() {
    const SUBMISSIONS: usize = 200;
    let initial = producer_world(1, 16);
    let mut rng = Rng(0x51D0);
    let submissions = gen_stream(&mut rng, &initial, SUBMISSIONS, 1);

    let (service, _pid) = edge_service(initial.clone());
    let ingest = Ingest::spawn(
        service,
        IngestOptions { min_batch: 1, max_batch: 4, ..IngestOptions::default() },
    );
    let handle = ingest.handle();
    let stats_handle = ingest.handle();
    let producer = {
        let submissions = submissions.clone();
        std::thread::spawn(move || {
            let mut tickets = Vec::new();
            for batch in submissions {
                match handle.submit(batch) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(SubmitError::Closed) => break,
                    Err(other) => panic!("unexpected refusal: {other}"),
                }
            }
            tickets
        })
    };
    std::thread::sleep(Duration::from_millis(2));
    let service = ingest.shutdown().expect("clean shutdown returns the sink");
    let tickets = producer.join().expect("producer thread");
    let accepted = tickets.len();
    for ticket in tickets {
        ticket.wait().expect("every enqueued submission must be flushed, not abandoned");
    }

    let mut control = initial;
    for batch in &submissions[..accepted] {
        batch.apply(&mut control);
    }
    assert!(
        service.graph().identical_to(&control),
        "sink state must equal the synchronous application of the accepted prefix"
    );
    assert_eq!(service.epoch(), stats_handle.stats().committed_batches);
}

// ---------------------------------------------------------------------------
// 3. Backpressure round-trip
// ---------------------------------------------------------------------------

/// A full queue refuses `try_submit` with the exact occupancy, a blocking
/// `submit` parks until a drain cycle frees space, and both submissions
/// commit once drained — the bounded queue never silently drops.
#[test]
fn blocking_submit_parks_until_a_drain_frees_space() {
    let (service, _pid) = edge_service(producer_world(1, 16));
    let opts = IngestOptions { queue_capacity: 2, ..IngestOptions::default() };
    let mut ingest = Ingest::new_manual(service, opts);
    let handle = ingest.handle();

    let first = handle
        .try_submit(
            vec![Update::insert(NodeId(0), NodeId(1)), Update::insert(NodeId(2), NodeId(3))]
                .into_iter()
                .collect(),
        )
        .expect("fills the queue");
    match handle.try_submit(std::iter::once(Update::insert(NodeId(4), NodeId(5))).collect()) {
        Err(SubmitError::Backpressure { pending_ops: 2, capacity: 2 }) => {}
        other => panic!("expected typed backpressure, got {other:?}"),
    }

    let blocked = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            handle
                .submit(std::iter::once(Update::insert(NodeId(4), NodeId(5))).collect())
                .expect("unblocks when the drain frees space")
        })
    };
    // Wait until the blocking producer has actually parked (its wait is the
    // second backpressure event), then drain to wake it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().backpressure_events < 2 {
        assert!(Instant::now() < deadline, "blocking submit never parked");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(ingest.drain_once(), 1, "the parked producer's batch is not yet drainable");
    let second = blocked.join().expect("blocked producer thread");
    assert_eq!(ingest.drain_once(), 1);

    assert!(first.wait().is_ok());
    assert!(second.wait().is_ok());
    let service = ingest.shutdown().expect("sink is alive");
    for (from, to) in [(0, 1), (2, 3), (4, 5)] {
        assert!(service.graph().has_edge(NodeId(from), NodeId(to)));
    }
}

// ---------------------------------------------------------------------------
// 4. Lenient rejection positions through the coalescer
// ---------------------------------------------------------------------------

/// The `apply_batch_lenient` audit (satellite): a lenient submission that
/// rides a coalesced batch with neighbours keeps its rejection positions in
/// its *own* batch — merging never renumbers them — and the stripped
/// remainder applies exactly as the synchronous lenient path would.
#[test]
fn lenient_positions_survive_coalescing() {
    let (service, pid) = edge_service(producer_world(1, 16));
    let mut ingest = Ingest::new_manual(service, IngestOptions::default());
    let handle = ingest.handle();

    // Submission A inserts 0→1 and 2→3; lenient submission B then tries a
    // duplicate of A's first edge (position 1), a valid insert, a delete of
    // an edge nobody created (position 3), and another valid insert. Both
    // coalesce into ONE sink batch, so B's invalid ops are invalid *only*
    // relative to A inside the same cycle.
    let a: BatchUpdate =
        vec![Update::insert(NodeId(0), NodeId(1)), Update::insert(NodeId(2), NodeId(3))]
            .into_iter()
            .collect();
    let b: BatchUpdate = vec![
        Update::insert(NodeId(4), NodeId(5)),
        Update::insert(NodeId(0), NodeId(1)), // duplicate vs A — position 1
        Update::insert(NodeId(6), NodeId(7)),
        Update::delete(NodeId(8), NodeId(9)), // absent — position 3
    ]
    .into_iter()
    .collect();
    let ticket_a = handle.try_submit(a).expect("enqueue A");
    let ticket_b = handle.try_submit_lenient(b).expect("enqueue B");
    assert_eq!(ingest.drain_once(), 2, "both submissions must ride one cycle");

    let apply_a = ticket_a.wait().expect("A is valid");
    let apply_b = ticket_b.wait().expect("lenient B commits its remainder");
    assert_eq!(apply_a.seq, apply_b.seq, "one coalesced batch");
    assert_eq!(apply_a.coalesced_ops, 4, "A's 2 ops + B's 2 surviving ops");
    assert_eq!(apply_b.offset, 2, "B's slice starts after A");
    assert_eq!(apply_b.applied_ops, 2);
    let positions: Vec<usize> = apply_b.rejected.iter().map(|r| r.position).collect();
    assert_eq!(positions, vec![1, 3], "original-submission positions, never renumbered");
    assert_eq!(apply_b.rejected[0].reason, RejectReason::DuplicateInsert);
    assert_eq!(apply_b.rejected[1].reason, RejectReason::AbsentDelete);

    // Control: the synchronous path — A strict, then B's stripped remainder.
    let service = ingest.shutdown().expect("sink is alive");
    let (mut control, control_pid) = edge_service(producer_world(1, 16));
    control
        .apply(
            &vec![Update::insert(NodeId(0), NodeId(1)), Update::insert(NodeId(2), NodeId(3))]
                .into_iter()
                .collect(),
        )
        .expect("control A");
    control
        .apply(
            &vec![Update::insert(NodeId(4), NodeId(5)), Update::insert(NodeId(6), NodeId(7))]
                .into_iter()
                .collect(),
        )
        .expect("control B remainder");
    assert!(service.graph().identical_to(control.graph()));
    assert_eq!(
        service.matches(pid).expect("sink view"),
        control.matches(control_pid).expect("control view")
    );
}

// ---------------------------------------------------------------------------
// 5. Failure composition: contained sink errors and the crash model
// ---------------------------------------------------------------------------

/// A contained shared-stage panic inside `MatchService::apply` (rolled back,
/// service keeps serving) surfaces as a shared `IngestError::Sink` for that
/// cycle only — the ingest keeps draining and the next cycle commits.
#[test]
fn contained_sink_error_fails_one_cycle_and_ingest_keeps_running() {
    let _guard = serial();
    let (service, pid) = edge_service(producer_world(1, 8));
    let mut ingest = Ingest::new_manual(service, IngestOptions::default());
    let handle = ingest.handle();

    let doomed =
        handle.try_submit(std::iter::once(Update::insert(NodeId(0), NodeId(1))).collect()).unwrap();
    with_armed(fail::SIM_MUTATE, || {
        ingest.drain_once();
    });
    match doomed.wait() {
        Err(IngestError::Sink(error)) => match &*error {
            ServiceError::Apply(ApplyError::StagePanicked(panic)) => {
                assert!(panic.rolled_back, "the service must have rolled the batch back");
                assert!(!panic.poisoned, "a shared-stage panic poisons nothing");
            }
            other => panic!("expected a contained stage panic, got {other}"),
        },
        other => panic!("expected a sink error, got {other:?}"),
    }
    assert!(!handle.is_closed(), "a contained sink error must not kill the ingest");

    let retry =
        handle.try_submit(std::iter::once(Update::insert(NodeId(0), NodeId(1))).collect()).unwrap();
    assert_eq!(ingest.drain_once(), 1);
    assert!(retry.wait().is_ok(), "the next cycle commits normally");
    let service = ingest.shutdown().expect("sink is alive");
    assert!(service.graph().has_edge(NodeId(0), NodeId(1)));
    assert!(!service.matches(pid).expect("readable").is_empty(), "view serves after rollback");
}

/// The crash model end to end: a WAL-append panic under the drainer kills
/// the ingest (`SinkPanicked` for the in-flight cycle, `Closed` for the
/// queue, refusals afterwards), the sink is dropped where it stood, and the
/// reopened directory recovers through the ordinary replay path — the
/// re-emitted delta stream plus the resumed tail is bit-identical to a run
/// that never crashed.
fn sink_panic_is_crash_recoverable<E: IngestEngine>(shards: usize, seed: u64) {
    let context = format!("{} shards={shards}", E::NAME);
    let pattern = E::cyclic_pattern();
    let initial = seed_world(16, 2);
    let mut rng = Rng(seed);
    let submissions = gen_stream(&mut rng, &initial, 3, 2);
    let opts = durable_opts(shards, 0);

    // The never-crashed control.
    let control_scratch = Scratch::new("crash-control");
    let mut control: DurableIndex<E> =
        DurableIndex::open(control_scratch.path().clone(), &pattern, &initial, opts.clone())
            .expect("open control");
    for (i, batch) in submissions.iter().enumerate() {
        control.apply(batch).unwrap_or_else(|e| panic!("{context}: control {i}: {e}"));
    }
    let mut expected = BTreeMap::new();
    drain_deltas(&mut control.subscribe_from(1), &mut expected, &context);

    let scratch = Scratch::new("crash");
    let sink: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts.clone())
            .expect("open sink");
    // Cap 1: one submission per cycle, so the crash hits exactly one.
    let ingest_opts =
        IngestOptions { queue_capacity: 4096, min_batch: 1, max_batch: 1, burst_backlog: 64 };
    let mut ingest = Ingest::new_manual(sink, ingest_opts);
    let handle = ingest.handle();

    let first = handle.try_submit(submissions[0].clone()).expect("enqueue");
    assert_eq!(ingest.drain_once(), 1);
    first.wait().unwrap_or_else(|e| panic!("{context}: first submission failed: {e}"));

    let doomed = handle.try_submit(submissions[1].clone()).expect("enqueue");
    let stranded = handle.try_submit(submissions[2].clone()).expect("enqueue");
    with_armed(fail::WAL_APPEND_BODY, || {
        ingest.drain_once();
    });
    match doomed.wait() {
        Err(IngestError::SinkPanicked(message)) => {
            assert!(!message.is_empty(), "{context}: the panic message travels to the ticket")
        }
        other => panic!("{context}: expected SinkPanicked, got {other:?}"),
    }
    match stranded.wait() {
        Err(IngestError::Closed) => {}
        other => panic!("{context}: queued submissions fail Closed, got {other:?}"),
    }
    assert!(handle.is_closed(), "{context}: a sink panic kills the ingest");
    assert_eq!(
        handle.try_submit(submissions[2].clone()).unwrap_err(),
        SubmitError::Closed,
        "{context}: further submissions are refused"
    );
    assert_eq!(ingest.drain_once(), 0, "{context}: a dead drainer drains nothing");
    assert!(ingest.shutdown().is_none(), "{context}: the sink panicked away");

    // `kill -9` semantics: the directory reopens via ordinary recovery and
    // the replayed + resumed stream matches the never-crashed run.
    let mut reopened: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts).expect("reopen");
    let mut collected = BTreeMap::new();
    let mut sub = reopened.subscribe_from(1);
    drain_deltas(&mut sub, &mut collected, &context);
    let resume_from = reopened.sequence() as usize;
    assert!(resume_from >= 1, "{context}: the committed first batch must have survived");
    for (i, batch) in submissions.iter().enumerate().skip(resume_from) {
        reopened.apply(batch).unwrap_or_else(|e| panic!("{context}: resumed {i}: {e}"));
    }
    drain_deltas(&mut sub, &mut collected, &context);
    assert_eq!(
        collected, expected,
        "{context}: replayed + resumed deltas diverged from the never-crashed run"
    );
    assert_eq!(
        reopened.try_matches().expect("recovered readable"),
        control.try_matches().expect("control readable"),
        "{context}: final matches diverged"
    );
}

#[test]
fn sim_sink_panic_is_crash_recoverable_across_shard_counts() {
    let _guard = serial();
    for (i, &shards) in [1usize, 4, 8].iter().enumerate() {
        sink_panic_is_crash_recoverable::<SimulationIndex>(shards, 0xC7A5 + i as u64);
    }
}

#[test]
fn bsim_sink_panic_is_crash_recoverable_across_shard_counts() {
    let _guard = serial();
    for (i, &shards) in [1usize, 4, 8].iter().enumerate() {
        sink_panic_is_crash_recoverable::<BoundedIndex>(shards, 0xC7B5 + i as u64);
    }
}
