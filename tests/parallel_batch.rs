//! Sharded batch-maintenance equivalence suite.
//!
//! The batch engines claim to be **bit-identical for every shard count** —
//! match sets, support counters and `AffStats` alike (see
//! `igpm_graph::shard`, the canonical home of the shard plan since the
//! `igpm-core` re-export shim was removed). These property tests drive
//! independent
//! engine copies with shard counts {1, 2, 3, 7} in lockstep over 1000+
//! random updates applied as mixed batches — including nodes added
//! mid-stream — and assert after every batch that
//!
//! * all shard counts report byte-for-byte identical `AffStats`,
//! * all shard counts land on the same match relation,
//! * all shard counts land on **adjacency-identical** graphs (same lists in
//!   the same order — the sharded `DataGraph` mutation path promises more
//!   than set equality) with a consistent per-node edge index,
//! * that relation equals a from-scratch recomputation on the final graph.
//!
//! Shard counts 3 and 7 are deliberately coprime to the graph sizes so chunk
//! boundaries fall mid-range; 1 is the sequential engine the others must
//! reproduce.
//!
//! A second suite checks the `minDelta` guarantee end-to-end: applying a raw
//! batch and applying its reduced form (`reduce_batch`) land on identical
//! matches, counters, graphs and `AffStats` (modulo `delta_g`, which by
//! definition counts the raw batch length), across shard counts {1, 2, 3, 8}.

use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// One random unit update over the current graph: half the time an existing
/// edge is deleted (found by walking from a random pivot), otherwise a random
/// pair is inserted. Duplicates and no-ops are intentional — they exercise
/// the `minDelta` reduction inside every engine identically.
fn random_update(rng: &mut StdRng, graph: &DataGraph) -> Option<Update> {
    let n = graph.node_count();
    if rng.gen_bool(0.5) && graph.edge_count() > 0 {
        for _ in 0..32 {
            let v = NodeId(rng.gen_range(0..n) as u32);
            if graph.out_degree(v) > 0 {
                let children = graph.children(v);
                let w = children[rng.gen_range(0..children.len())];
                return Some(Update::delete(v, w));
            }
        }
        None
    } else {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        (a != b).then(|| Update::insert(NodeId(a as u32), NodeId(b as u32)))
    }
}

/// Drives one `(graph, SimulationIndex)` replica per shard count through the
/// same batched update stream and checks the equivalence properties after
/// every batch. `grow_every` > 0 adds a fresh node (plus edges wired to it in
/// the *next* batch) between batches, exercising node churn mid-stream.
fn drive_sim_shards(
    base: &DataGraph,
    pattern: &Pattern,
    seed: u64,
    total: usize,
    grow_every: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut replicas: Vec<(DataGraph, SimulationIndex)> = SHARD_COUNTS
        .iter()
        .map(|_| {
            let graph = base.clone();
            let index = SimulationIndex::build(pattern, &graph);
            (graph, index)
        })
        .collect();

    let mut applied = 0usize;
    let mut round = 0usize;
    let mut pending_fresh: Option<(NodeId, NodeId, NodeId)> = None;
    while applied < total {
        round += 1;
        // Mixed batch sizes: unit-sized through large, so the round engine
        // sees both trivial and deep cascades.
        let batch_size = [1usize, 7, 33, 120][round % 4];
        let mut batch = BatchUpdate::new();
        if let Some((fresh, out, inn)) = pending_fresh.take() {
            batch.insert(fresh, out);
            batch.insert(inn, fresh);
        }
        while batch.len() < batch_size {
            // Draw against replica 0's graph; all replicas have identical
            // graphs, so the stream is well-defined for every one of them.
            match random_update(&mut rng, &replicas[0].0) {
                Some(update) => batch.push(update),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();

        let mut stats_per_shard: Vec<ApplyOutcome> = Vec::new();
        for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter_mut()) {
            stats_per_shard.push(index.apply_batch_with_shards(graph, &batch, shards));
        }
        for (i, stats) in stats_per_shard.iter().enumerate().skip(1) {
            assert_eq!(
                *stats, stats_per_shard[0],
                "seed {seed}, round {round}: ApplyOutcome diverged between shards={} and shards=1",
                SHARD_COUNTS[i]
            );
        }
        let reference = replicas[0].1.matches();
        replicas[0].0.assert_edge_index_consistent();
        for (i, (graph, index)) in replicas.iter().enumerate().skip(1) {
            assert!(
                replicas[0].0.identical_to(graph),
                "seed {seed}, round {round}: graphs (adjacency order included) diverged \
                 between shards={} and shards=1",
                SHARD_COUNTS[i]
            );
            graph.assert_edge_index_consistent();
            assert_eq!(
                index.matches(),
                reference,
                "seed {seed}, round {round}: match sets diverged between shards={} and shards=1",
                SHARD_COUNTS[i]
            );
        }
        assert_eq!(
            reference,
            igpm::core::match_simulation(pattern, &replicas[0].0),
            "seed {seed}, round {round}: sharded engines diverged from from-scratch recomputation"
        );

        if grow_every > 0 && round.is_multiple_of(grow_every) {
            // Add the same fresh node to every replica (same attrs, same id)
            // and queue its first edges for the next batch.
            let label = rng.gen_range(0..4u32);
            let mut fresh = NodeId(0);
            for (graph, _) in replicas.iter_mut() {
                fresh = graph.add_node(Attributes::labeled(format!("l{label}")));
            }
            let n = replicas[0].0.node_count() - 1;
            let out = NodeId(rng.gen_range(0..n) as u32);
            let inn = NodeId(rng.gen_range(0..n) as u32);
            pending_fresh = Some((fresh, out, inn));
        }
    }
    assert!(applied >= total, "stream too short");
}

#[test]
fn sharded_batches_are_bit_identical_cyclic_pattern() {
    for seed in [0xA1u64, 0xA2] {
        let graph = synthetic_graph(&SyntheticConfig::new(220, 800, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 8, 1, seed + 2).with_shape(PatternShape::General),
        );
        assert!(!pattern.is_dag(), "want a cyclic pattern so propCC runs between rounds");
        drive_sim_shards(&graph, &pattern, seed, 1_100, 0);
    }
}

#[test]
fn sharded_batches_are_bit_identical_dag_pattern() {
    let seed = 0xB1u64;
    let graph = synthetic_graph(&SyntheticConfig::new(220, 800, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(6, 9, 1, seed + 2).with_shape(PatternShape::Dag),
    );
    assert!(pattern.is_dag());
    drive_sim_shards(&graph, &pattern, seed, 1_100, 0);
}

#[test]
fn sharded_batches_are_bit_identical_with_node_churn() {
    for (shape, seed) in [(PatternShape::General, 0xC1u64), (PatternShape::Dag, 0xC2)] {
        let graph = synthetic_graph(&SyntheticConfig::new(150, 500, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 7, 1, seed + 2).with_shape(shape),
        );
        // Grow a node every other batch: chunk boundaries shift under the
        // plan as nv grows, which must never change results.
        drive_sim_shards(&graph, &pattern, seed, 1_000, 2);
    }
}

#[test]
fn sharded_batches_agree_with_unit_updates() {
    // The batch engine at every shard count must land on the same state as
    // the (Gauss-Seidel) unit-update path — both compute the same fixpoint.
    let seed = 0xD1u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = synthetic_graph(&SyntheticConfig::new(180, 650, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(5, 8, 1, seed + 2).with_shape(PatternShape::General),
    );
    let updates: Vec<Update> =
        (0..2_400).filter_map(|_| random_update(&mut rng, &graph)).take(1_000).collect();
    assert!(updates.len() >= 900);

    let mut g_unit = graph.clone();
    let mut unit_index = SimulationIndex::build(&pattern, &g_unit);
    for update in &updates {
        let (a, b) = update.endpoints();
        if update.is_insert() {
            unit_index.insert_edge(&mut g_unit, a, b);
        } else {
            unit_index.delete_edge(&mut g_unit, a, b);
        }
    }

    for shards in SHARD_COUNTS {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        for chunk in updates.chunks(41) {
            let batch: BatchUpdate = chunk.iter().copied().collect();
            index.apply_batch_with_shards(&mut g, &batch, shards);
        }
        assert_eq!(g, g_unit, "graphs diverged at shards={shards}");
        assert_eq!(index.matches(), unit_index.matches(), "match diverged at shards={shards}");
    }
}

#[test]
fn large_batches_cross_the_thread_threshold() {
    // The smaller property batches stay under the engine's internal
    // thread-spawn threshold (~4k pending items), which is fine for the
    // partition/merge logic but leaves the scoped-thread branches to the
    // bench binary. This batch is sized to cross it: 24k deletions of every
    // edge of a single-label graph (absorption >= 4k effective updates, and
    // the mass demotion floods round 1 with seeds), then 24k insertions
    // restoring them (mass promotion, plus propCC on the cyclic pattern).
    let mut rng = StdRng::seed_from_u64(0xF1);
    let n = 3_000usize;
    let mut base = DataGraph::new();
    for _ in 0..n {
        base.add_labeled_node("a");
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    while edges.len() < 24_000 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && base.add_edge(NodeId(a as u32), NodeId(b as u32)) {
            edges.push((NodeId(a as u32), NodeId(b as u32)));
        }
    }
    let mut pattern = Pattern::new();
    let u1 = pattern.add_labeled_node("a");
    let u2 = pattern.add_labeled_node("a");
    pattern.add_normal_edge(u1, u2);
    pattern.add_normal_edge(u2, u1);

    let delete_all: BatchUpdate = edges.iter().map(|&(a, b)| Update::delete(a, b)).collect();
    let restore_all: BatchUpdate = edges.iter().map(|&(a, b)| Update::insert(a, b)).collect();

    let mut replicas: Vec<(usize, DataGraph, SimulationIndex)> = [1usize, 4]
        .into_iter()
        .map(|shards| {
            let graph = base.clone();
            let index = SimulationIndex::build(&pattern, &graph);
            (shards, graph, index)
        })
        .collect();
    assert!(replicas[0].2.is_match(), "dense single-label graph must match the cycle pattern");

    for batch in [&delete_all, &restore_all] {
        let mut stats = Vec::new();
        for (shards, graph, index) in replicas.iter_mut() {
            stats.push(index.apply_batch_with_shards(graph, batch, *shards));
        }
        assert_eq!(stats[0], stats[1], "threaded run diverged from sequential (AffStats)");
        assert_eq!(replicas[0].2.matches(), replicas[1].2.matches());
        assert_eq!(
            replicas[0].2.matches(),
            igpm::core::match_simulation(&pattern, &replicas[0].1),
            "threaded run diverged from from-scratch recomputation"
        );
    }
    assert!(replicas[0].1.edges().next().is_some(), "edges restored");
    assert!(replicas[0].2.is_match(), "restoring every edge restores the match");
}

/// Shard counts for the `minDelta` equivalence suite (the acceptance set of
/// the sharded-mutation work; 8 exceeds this machine's parallelism on CI's
/// 2-core runners, exercising over-subscription).
const MIN_DELTA_SHARDS: [usize; 4] = [1, 2, 3, 8];

/// Drives two `(graph, SimulationIndex)` replicas per shard count — one fed
/// the raw batch, one fed its `reduce_batch` form — through the same 1k+
/// update stream and asserts the `minDelta` guarantee after every batch:
/// identical matches, identical counters (`aux_snapshot`), adjacency-identical
/// graphs, and identical `AffStats` up to `delta_g` (which counts the raw
/// batch length by definition). Raw-batch results are additionally compared
/// across shard counts.
fn drive_min_delta_equivalence(
    base: &DataGraph,
    pattern: &Pattern,
    seed: u64,
    total: usize,
    grow_every: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut replicas: Vec<[(DataGraph, SimulationIndex); 2]> = MIN_DELTA_SHARDS
        .iter()
        .map(|_| {
            std::array::from_fn(|_| {
                let graph = base.clone();
                let index = SimulationIndex::build(pattern, &graph);
                (graph, index)
            })
        })
        .collect();

    let mut applied = 0usize;
    let mut round = 0usize;
    let mut pending_fresh: Option<(NodeId, NodeId, NodeId)> = None;
    while applied < total {
        round += 1;
        let batch_size = [3usize, 17, 60, 140][round % 4];
        let mut batch = BatchUpdate::new();
        if let Some((fresh, out, inn)) = pending_fresh.take() {
            batch.insert(fresh, out);
            batch.insert(inn, fresh);
        }
        while batch.len() < batch_size {
            match random_update(&mut rng, &replicas[0][0].0) {
                Some(update) => {
                    // Every third update is immediately undone: cancelling
                    // pairs are exactly what `minDelta` must net away.
                    if batch.len() + 1 < batch_size && rng.gen_bool(0.33) {
                        batch.push(update);
                        batch.push(update.inverse());
                    } else {
                        batch.push(update);
                    }
                }
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();

        let mut raw_results: Vec<ApplyOutcome> = Vec::new();
        for (&shards, pair) in MIN_DELTA_SHARDS.iter().zip(replicas.iter_mut()) {
            // The reduction is computed against the pre-batch graph, exactly
            // as `apply_batch` does internally.
            let (effective, _) = igpm::graph::reduce_batch(&pair[1].0, &batch);
            let reduced: BatchUpdate = effective.into_iter().collect();

            let raw_outcome = pair[0].1.apply_batch_with_shards(&mut pair[0].0, &batch, shards);
            let red_outcome = pair[1].1.apply_batch_with_shards(&mut pair[1].0, &reduced, shards);
            assert_eq!(raw_outcome.stats.delta_g, batch.len());
            assert_eq!(red_outcome.stats.delta_g, reduced.len());
            let normalize = |stats: AffStats| AffStats { delta_g: 0, ..stats };
            assert_eq!(
                normalize(raw_outcome.stats),
                normalize(red_outcome.stats),
                "seed {seed}, round {round}, shards={shards}: reduced batch changed AffStats"
            );
            assert_eq!(
                raw_outcome.delta, red_outcome.delta,
                "seed {seed}, round {round}, shards={shards}: reduced batch changed \u{394}M"
            );

            let [(raw_graph, raw_index), (red_graph, red_index)] = pair;
            assert!(
                raw_graph.identical_to(red_graph),
                "seed {seed}, round {round}, shards={shards}: reduced batch left a different graph"
            );
            raw_graph.assert_edge_index_consistent();
            red_graph.assert_edge_index_consistent();
            assert_eq!(
                raw_index.aux_snapshot(),
                red_index.aux_snapshot(),
                "seed {seed}, round {round}, shards={shards}: counters/masks diverged"
            );
            assert_eq!(raw_index.matches(), red_index.matches());
            raw_results.push(raw_outcome);
        }
        for (i, stats) in raw_results.iter().enumerate().skip(1) {
            assert_eq!(
                *stats, raw_results[0],
                "seed {seed}, round {round}: ApplyOutcome diverged between shards={} and shards=1",
                MIN_DELTA_SHARDS[i]
            );
            assert!(
                replicas[0][0].0.identical_to(&replicas[i][0].0),
                "seed {seed}, round {round}: graphs diverged between shards={} and shards=1",
                MIN_DELTA_SHARDS[i]
            );
            assert_eq!(replicas[0][0].1.aux_snapshot(), replicas[i][0].1.aux_snapshot());
        }
        assert_eq!(
            replicas[0][0].1.matches(),
            igpm::core::match_simulation(pattern, &replicas[0][0].0),
            "seed {seed}, round {round}: engines diverged from from-scratch recomputation"
        );

        if grow_every > 0 && round.is_multiple_of(grow_every) {
            let label = rng.gen_range(0..4u32);
            let mut fresh = NodeId(0);
            for pair in replicas.iter_mut() {
                for (graph, _) in pair.iter_mut() {
                    fresh = graph.add_node(Attributes::labeled(format!("l{label}")));
                }
            }
            let n = replicas[0][0].0.node_count() - 1;
            let out = NodeId(rng.gen_range(0..n) as u32);
            let inn = NodeId(rng.gen_range(0..n) as u32);
            pending_fresh = Some((fresh, out, inn));
        }
    }
    assert!(applied >= total, "stream too short");
}

#[test]
fn min_delta_equivalence_cyclic_pattern() {
    let seed = 0x5D1u64;
    let graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(5, 8, 1, seed + 2).with_shape(PatternShape::General),
    );
    assert!(!pattern.is_dag(), "want a cyclic pattern so propCC runs");
    drive_min_delta_equivalence(&graph, &pattern, seed, 1_100, 0);
}

#[test]
fn min_delta_equivalence_dag_pattern_with_node_churn() {
    let seed = 0x5D2u64;
    let graph = synthetic_graph(&SyntheticConfig::new(160, 550, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(6, 9, 1, seed + 2).with_shape(PatternShape::Dag),
    );
    assert!(pattern.is_dag());
    drive_min_delta_equivalence(&graph, &pattern, seed, 1_000, 3);
}

#[test]
fn bounded_sharded_batches_are_bit_identical() {
    // The bounded engine shards its pair re-evaluation step; verdict commit
    // order is fixed, so every shard count must report identical stats and
    // matches, equal to a from-scratch recomputation.
    for (shape, seed) in [(PatternShape::Dag, 0xE1u64), (PatternShape::General, 0xE2)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = synthetic_graph(&SyntheticConfig::new(90, 280, 4, seed + 1));
        let pattern =
            generate_pattern(&base, &PatternGenConfig::new(4, 5, 1, 2, seed + 2).with_shape(shape));
        let mut replicas: Vec<(DataGraph, BoundedIndex)> = SHARD_COUNTS
            .iter()
            .map(|_| {
                let graph = base.clone();
                let index = BoundedIndex::build(&pattern, &graph);
                (graph, index)
            })
            .collect();
        for round in 0..8usize {
            let mut batch = BatchUpdate::new();
            while batch.len() < 40 {
                match random_update(&mut rng, &replicas[0].0) {
                    Some(update) => batch.push(update),
                    None => break,
                }
            }
            let mut stats_per_shard: Vec<ApplyOutcome> = Vec::new();
            for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter_mut()) {
                stats_per_shard.push(index.apply_batch_with_shards(graph, &batch, shards));
            }
            for (i, stats) in stats_per_shard.iter().enumerate().skip(1) {
                assert_eq!(
                    *stats, stats_per_shard[0],
                    "seed {seed}, round {round}: bounded ApplyOutcome diverged at shards={}",
                    SHARD_COUNTS[i]
                );
            }
            let reference = replicas[0].1.matches();
            for (graph, index) in replicas.iter().skip(1) {
                assert_eq!(replicas[0].0, *graph);
                assert_eq!(index.matches(), reference, "bounded matches diverged, round {round}");
            }
            assert_eq!(
                reference,
                igpm::core::match_bounded_with_matrix(&pattern, &replicas[0].0),
                "seed {seed}, round {round}: bounded engines diverged from scratch"
            );
        }
    }
}
