//! Cold-start build equivalence suite.
//!
//! The parallel builds claim to be **bit-identical for every shard count** —
//! membership masks, support counters, pair sets, cached matches and build
//! `AffStats` alike (`SimulationIndex::build_with_shards`,
//! `BoundedIndex::build_with_shards`, `LandmarkIndex::build_with_shards`).
//! This is the cold-start mirror of `tests/parallel_batch.rs`: every index
//! type is constructed under shard counts {1, 2, 3, 8} on identical inputs
//! and the raw auxiliary state is compared byte for byte (hash-backed
//! structures as sorted tuples), with shards = 1 as the sequential reference.
//!
//! Degenerate inputs get their own cases under shards {1, 4}: the empty
//! graph, a pattern no node satisfies, a single-node SCC pattern (self-loop),
//! and a graph larger than the thread-spawn threshold, so the fan-out branch
//! of the build is exercised and proven identical too.
//!
//! The candidate-scan layer below the builds gets its own section: the
//! shard-buildable `LabelIndex` (per-range buckets merged in node order,
//! `ensure_node_capacity` growth under node churn) and the sharded
//! `candidates_with_shards` enumeration must be byte-identical to their
//! sequential counterparts for every shard count and every predicate
//! strategy (pure label bucket, label-atom filter, full predicate scan).

use igpm::core::{candidates_with_shards, match_bounded_with_matrix};
use igpm::graph::LabelIndex;
use igpm::prelude::*;

const BUILD_SHARDS: [usize; 4] = [1, 2, 3, 8];

/// Builds a [`SimulationIndex`] under every shard count and asserts raw-state
/// bit-identity against the sequential build, plus agreement with the
/// from-scratch batch algorithm.
fn assert_sim_build_equivalent(pattern: &Pattern, graph: &DataGraph, context: &str) {
    let reference = SimulationIndex::build_with_shards(pattern, graph, 1);
    assert_eq!(
        reference.matches(),
        igpm::core::match_simulation(pattern, graph),
        "{context}: sequential build diverged from match_simulation"
    );
    for shards in BUILD_SHARDS {
        let index = SimulationIndex::build_with_shards(pattern, graph, shards);
        assert_eq!(
            index.aux_snapshot(),
            reference.aux_snapshot(),
            "{context}: masks/counters diverged at shards={shards}"
        );
        assert_eq!(
            index.matches(),
            reference.matches(),
            "{context}: match relation diverged at shards={shards}"
        );
        assert_eq!(
            index.build_stats(),
            reference.build_stats(),
            "{context}: build AffStats diverged at shards={shards}"
        );
    }
}

/// Builds a [`BoundedIndex`] under every shard count and asserts raw-state
/// bit-identity (masks, pair sets, support counters) against the sequential
/// build, plus agreement with the from-scratch batch algorithm.
fn assert_bounded_build_equivalent(pattern: &Pattern, graph: &DataGraph, context: &str) {
    let reference = BoundedIndex::build_with_shards(pattern, graph, 1);
    assert_eq!(
        reference.matches(),
        match_bounded_with_matrix(pattern, graph),
        "{context}: sequential build diverged from match_bounded"
    );
    for shards in BUILD_SHARDS {
        let index = BoundedIndex::build_with_shards(pattern, graph, shards);
        assert_eq!(
            index.aux_snapshot(),
            reference.aux_snapshot(),
            "{context}: masks/pairs/support diverged at shards={shards}"
        );
        assert_eq!(
            index.matches(),
            reference.matches(),
            "{context}: match relation diverged at shards={shards}"
        );
        assert_eq!(
            index.build_stats(),
            reference.build_stats(),
            "{context}: build AffStats diverged at shards={shards}"
        );
        assert_eq!(
            index.landmarks().landmarks(),
            reference.landmarks().landmarks(),
            "{context}: landmark vector diverged at shards={shards}"
        );
    }
}

/// Builds a [`LandmarkIndex`] under every shard count and asserts the
/// landmark vector and every distance row identical to the sequential build.
fn assert_landmark_build_equivalent(
    graph: &DataGraph,
    selection: LandmarkSelection,
    context: &str,
) {
    let reference = LandmarkIndex::build_with_shards(graph, selection.clone(), 1);
    for shards in BUILD_SHARDS {
        let index = LandmarkIndex::build_with_shards(graph, selection.clone(), shards);
        assert_eq!(
            index.landmarks(),
            reference.landmarks(),
            "{context}: landmark vector diverged at shards={shards}"
        );
        assert_eq!(index.is_covering(), reference.is_covering(), "{context}");
        for v in graph.nodes() {
            assert_eq!(
                index.distvf(v),
                reference.distvf(v),
                "{context}: distvf({v}) diverged at shards={shards}"
            );
            assert_eq!(
                index.distvt(v),
                reference.distvt(v),
                "{context}: distvt({v}) diverged at shards={shards}"
            );
        }
    }
}

#[test]
fn simulation_builds_are_bit_identical() {
    for (shape, seed) in [(PatternShape::General, 0x31u64), (PatternShape::Dag, 0x32)] {
        let graph = synthetic_graph(&SyntheticConfig::new(300, 1_050, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 8, 1, seed + 2).with_shape(shape),
        );
        assert_sim_build_equivalent(&pattern, &graph, &format!("{shape:?} seed {seed}"));
    }
}

#[test]
fn bounded_builds_are_bit_identical() {
    for (shape, seed) in [(PatternShape::General, 0x41u64), (PatternShape::Dag, 0x42)] {
        let graph = synthetic_graph(&SyntheticConfig::new(90, 280, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::new(4, 5, 1, 2, seed + 2).with_shape(shape),
        );
        assert_bounded_build_equivalent(&pattern, &graph, &format!("{shape:?} seed {seed}"));
    }
}

#[test]
fn landmark_builds_are_bit_identical() {
    // 220 nodes with a vertex cover of a few dozen landmarks crosses the
    // |lm|·|V| spawn threshold, so the threaded branch runs and must agree.
    let graph = synthetic_graph(&SyntheticConfig::new(220, 700, 4, 0x51));
    assert_landmark_build_equivalent(&graph, LandmarkSelection::VertexCover, "vertex cover");
    assert_landmark_build_equivalent(&graph, LandmarkSelection::TopDegree(24), "top degree");
    // An explicit selection with duplicates: dedup must keep first occurrence
    // identically in both the sequential and the fanned-out path.
    let lms: Vec<NodeId> = (0..40).map(|i| NodeId(i % 25)).collect();
    assert_landmark_build_equivalent(&graph, LandmarkSelection::Explicit(lms), "explicit dup");
}

#[test]
fn built_indexes_behave_identically_afterwards() {
    // Bit-identity must extend behaviourally: indexes built under different
    // shard counts, driven by the same batch, report identical stats and land
    // on identical state.
    let graph = synthetic_graph(&SyntheticConfig::new(250, 900, 4, 0x61));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(5, 8, 1, 0x62).with_shape(PatternShape::General),
    );
    let batch = mixed_batch(&graph, 60, 60, 0x63);
    let mut reference_graph = graph.clone();
    let mut reference = SimulationIndex::build_with_shards(&pattern, &graph, 1);
    let reference_stats = reference.apply_batch_with_shards(&mut reference_graph, &batch, 1);
    for shards in BUILD_SHARDS {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        let stats = index.apply_batch_with_shards(&mut g, &batch, shards);
        assert_eq!(stats, reference_stats, "batch stats diverged after shards={shards} build");
        assert_eq!(g, reference_graph);
        assert_eq!(index.aux_snapshot(), reference.aux_snapshot(), "shards={shards}");
    }
}

// ----------------------------------------------------------------------
// Degenerate builds (shards {1, 4})
// ----------------------------------------------------------------------

const DEGENERATE_SHARDS: [usize; 2] = [1, 4];

#[test]
fn empty_graph_builds() {
    let graph = DataGraph::new();
    let mut pattern = Pattern::new();
    let a = pattern.add_labeled_node("a");
    let b = pattern.add_labeled_node("b");
    pattern.add_normal_edge(a, b);
    for shards in DEGENERATE_SHARDS {
        let index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        assert!(!index.is_match(), "empty graph matches nothing (shards={shards})");
        assert_eq!(index.matches(), MatchRelation::empty(2));
        let bounded = BoundedIndex::build_with_shards(&pattern, &graph, shards);
        assert!(!bounded.is_match());
        let lm = LandmarkIndex::build_with_shards(&graph, LandmarkSelection::VertexCover, shards);
        assert!(lm.is_empty());
    }
    assert_sim_build_equivalent(&pattern, &graph, "empty graph");
    assert_bounded_build_equivalent(&pattern, &graph, "empty graph");
}

#[test]
fn pattern_with_no_label_matches_builds() {
    let graph = synthetic_graph(&SyntheticConfig::new(120, 360, 4, 0x71));
    let mut pattern = Pattern::new();
    let ghost = pattern.add_labeled_node("no-such-label");
    let other = pattern.add_labeled_node("also-missing");
    pattern.add_normal_edge(ghost, other);
    for shards in DEGENERATE_SHARDS {
        let index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        assert!(!index.is_match(), "shards={shards}");
        assert_eq!(index.build_stats(), AffStats::default(), "nothing to demote");
        let bounded = BoundedIndex::build_with_shards(&pattern, &graph, shards);
        assert!(!bounded.is_match(), "shards={shards}");
    }
    assert_sim_build_equivalent(&pattern, &graph, "no label matches");
    assert_bounded_build_equivalent(&pattern, &graph, "no label matches");
}

#[test]
fn single_node_scc_pattern_builds() {
    // A one-node pattern with a self-loop is a nontrivial SCC: a data node
    // matches iff it lies on an all-`a` cycle. Build over a graph that has
    // both an `a`-cycle and an `a`-path feeding into it.
    let mut pattern = Pattern::new();
    let u = pattern.add_labeled_node("a");
    pattern.add_normal_edge(u, u);

    let mut graph = DataGraph::new();
    let cycle: Vec<NodeId> = (0..5).map(|_| graph.add_labeled_node("a")).collect();
    for i in 0..cycle.len() {
        graph.add_edge(cycle[i], cycle[(i + 1) % cycle.len()]);
    }
    let path: Vec<NodeId> = (0..4).map(|_| graph.add_labeled_node("a")).collect();
    for w in path.windows(2) {
        graph.add_edge(w[0], w[1]);
    }
    graph.add_edge(*path.last().unwrap(), cycle[0]);

    for shards in DEGENERATE_SHARDS {
        let index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        // Node ids ascend cycle-then-path, so the chained list is sorted.
        assert_eq!(
            index.match_set(u),
            cycle.iter().chain(path.iter()).copied().collect::<Vec<_>>(),
            "every node reaching the cycle simulates the self-loop (shards={shards})"
        );
    }
    assert_sim_build_equivalent(&pattern, &graph, "single-node SCC");
    assert_bounded_build_equivalent(&pattern, &graph, "single-node SCC");
}

#[test]
fn build_crossing_the_thread_spawn_threshold_is_identical() {
    // 6000 nodes > PARALLEL_WORK_THRESHOLD (4096): the sharded build actually
    // spawns its scoped threads for seeding/derivation, and the mass demotion
    // drain floods the round machinery. A single-label cyclic pattern keeps
    // every node a candidate so the arrays are fully populated.
    let mut graph = DataGraph::new();
    let n = 6_000usize;
    for _ in 0..n {
        graph.add_labeled_node("a");
    }
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x81);
    let mut added = 0usize;
    while added < 18_000 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && graph.add_edge(NodeId(a as u32), NodeId(b as u32)) {
            added += 1;
        }
    }
    let mut pattern = Pattern::new();
    let u1 = pattern.add_labeled_node("a");
    let u2 = pattern.add_labeled_node("a");
    pattern.add_normal_edge(u1, u2);
    pattern.add_normal_edge(u2, u1);

    let reference = SimulationIndex::build_with_shards(&pattern, &graph, 1);
    for shards in DEGENERATE_SHARDS {
        let index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        assert_eq!(index.aux_snapshot(), reference.aux_snapshot(), "shards={shards}");
        assert_eq!(index.build_stats(), reference.build_stats(), "shards={shards}");
        assert_eq!(index.matches(), reference.matches(), "shards={shards}");
    }
    assert_eq!(
        reference.matches(),
        igpm::core::match_simulation(&pattern, &graph),
        "threaded build diverged from from-scratch recomputation"
    );
}

// ----------------------------------------------------------------------
// Candidate-scan layer: LabelIndex + sharded candidate enumeration
// ----------------------------------------------------------------------

/// A graph past the thread-spawn threshold with adversarial label layout:
/// labels reused in interleaved runs (so shard boundaries fall inside label
/// runs), periodic unlabeled nodes, and a secondary attribute for the
/// label-atom and full-scan predicate strategies.
fn label_churn_graph(n: usize) -> DataGraph {
    let mut graph = DataGraph::new();
    for v in 0..n {
        if v % 11 == 7 {
            graph.add_node(Attributes::new().with("kind", "anon").with("rank", (v % 5) as i64));
        } else {
            graph.add_node(
                Attributes::labeled(format!("l{}", v % 7))
                    .with("kind", "plain")
                    .with("rank", (v % 5) as i64),
            );
        }
    }
    graph
}

#[test]
fn label_index_sharded_builds_are_byte_identical() {
    let n = 3 * igpm::graph::shard::PARALLEL_WORK_THRESHOLD + 137;
    let graph = label_churn_graph(n);
    let reference = LabelIndex::build_with_shards(&graph, 1);
    for shards in BUILD_SHARDS {
        let index = LabelIndex::build_with_shards(&graph, shards);
        assert_eq!(index, reference, "LabelIndex diverged at shards={shards}");
        assert_eq!(index.snapshot(), reference.snapshot(), "snapshot diverged at shards={shards}");
        // Enumeration-order determinism: every bucket strictly ascending.
        for (label, nodes) in index.buckets() {
            assert!(
                nodes.windows(2).all(|w| w[0] < w[1]),
                "bucket {label} lost node order at shards={shards}"
            );
        }
    }
}

#[test]
fn label_index_growth_equals_fresh_build_under_node_churn() {
    // Build sharded, grow through interleaved churn (reused labels, new
    // labels, unlabeled nodes), and require exact equality with a fresh
    // build of the final graph at every step — growth must never be
    // distinguishable from having built later.
    let mut graph = label_churn_graph(600);
    let mut grown = LabelIndex::build_with_shards(&graph, 3);
    for step in 0..40 {
        match step % 4 {
            0 => graph.add_labeled_node(format!("l{}", step % 7)),
            1 => graph.add_labeled_node(format!("fresh-{step}")),
            2 => graph.add_node(Attributes::new().with("kind", "anon")),
            _ => graph.add_labeled_node("l0"),
        };
        grown.ensure_node_capacity(&graph);
        for shards in BUILD_SHARDS {
            assert_eq!(
                grown,
                LabelIndex::build_with_shards(&graph, shards),
                "step {step}: grown index diverged from fresh shards={shards} build"
            );
        }
    }
    assert_eq!(grown.covered_nodes(), graph.node_count());
}

#[test]
fn candidate_scans_are_identical_for_every_shard_count() {
    let n = 2 * igpm::graph::shard::PARALLEL_WORK_THRESHOLD + 61;
    let graph = label_churn_graph(n);
    // One pattern node per enumeration strategy: pure label bucket,
    // label-atom filter over the bucket, and the full `O(|V|)` predicate
    // scan (no label atom) — the stage this PR shards.
    let mut pattern = Pattern::new();
    let bucket = pattern.add_node(Predicate::label("l3"));
    let filtered = pattern.add_node(Predicate::label("l5").and_eq("rank", 2i64));
    let scanned = pattern.add_node(Predicate::any().and_eq("kind", "anon"));
    pattern.add_normal_edge(bucket, filtered);
    pattern.add_normal_edge(filtered, scanned);

    let reference = candidates_with_shards(&pattern, &graph, 1);
    assert!(!reference[bucket.index()].is_empty(), "bucket strategy found nothing");
    assert!(!reference[filtered.index()].is_empty(), "filter strategy found nothing");
    assert!(!reference[scanned.index()].is_empty(), "scan strategy found nothing");
    for lists in &reference {
        assert!(lists.windows(2).all(|w| w[0] < w[1]), "sequential scan lost node order");
    }
    for shards in BUILD_SHARDS {
        assert_eq!(
            candidates_with_shards(&pattern, &graph, shards),
            reference,
            "candidate lists diverged at shards={shards}"
        );
    }
}
