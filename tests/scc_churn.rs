//! Adversarial SCC-churn suite for the sharded `propCC` path.
//!
//! The generic conformance/parallel-batch streams hit `propCC` incidentally;
//! this suite is engineered to hit it *constantly and in its worst shapes*.
//! Every stream below repeatedly splits and merges strongly connected
//! components of the **data graph** under **cyclic patterns**, so the
//! SCC-joint evaluation — now sharded: speculative read-only evaluation on
//! scoped threads, verdicts committed in enumeration order, dirty fallback
//! after a promoting commit (`sim.rs::prop_cc`, `bsim.rs::promote_sccs`) —
//! runs on almost every batch, flipping between "promote everything" and
//! "eliminate everything":
//!
//! * **cycle chords** inserted and deleted inside rings (sub-cycles appear
//!   and disappear without touching ring membership);
//! * **bridges** between rings removed and re-inserted, with reverse bridges
//!   toggled so whole rings merge into one SCC and split apart again;
//! * **self-loops** toggled on individual nodes (single-node SCCs flicker in
//!   and out of existence — the `is_nontrivial` edge case);
//! * ring edges themselves removed (an SCC degrades to a path) and restored;
//! * fresh nodes spliced *into* a ring mid-stream (node churn that joins an
//!   SCC, exercising `ensure_node_capacity` → candidate-scan parity).
//!
//! Patterns cover one-node self-loop SCCs, single multi-node SCCs and — the
//! case that exercises the speculative multi-SCC fan-out and its dirty
//! fallback — patterns with **two** nontrivial SCCs joined by a bridge edge.
//!
//! Every batch is applied in lockstep to replicas at shard counts
//! {1, 2, 3, 8}; after each batch the suite asserts byte-identical auxiliary
//! state (masks + support counters), identical `AffStats`,
//! adjacency-identical graphs, and agreement with a from-scratch
//! recomputation. One stream runs on a > `PARALLEL_WORK_THRESHOLD`-node graph
//! so the scoped-thread branches actually spawn. A bounded-simulation mirror
//! drives `promote_sccs` through the same churn on a smaller graph.

use igpm::core::{match_bounded_with_matrix, match_simulation};
use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A ring-of-rings graph: `rings` directed cycles of `ring_len` nodes, ring
/// `r` bridged to ring `r+1` (last ring back to the first), node labels
/// cycling through `labels`. Every ring is a nontrivial SCC; the forward
/// bridges chain them; adding reverse bridges merges neighbouring rings into
/// one SCC, deleting forward bridges splits the chain.
struct RingWorld {
    graph: DataGraph,
    rings: Vec<Vec<NodeId>>,
}

fn ring_world(rings: usize, ring_len: usize, labels: usize) -> RingWorld {
    let mut graph = DataGraph::new();
    let mut all = Vec::with_capacity(rings);
    for _ in 0..rings {
        let ring: Vec<NodeId> = (0..ring_len)
            .map(|_| graph.add_labeled_node(format!("l{}", graph.node_count() % labels)))
            .collect();
        for i in 0..ring_len {
            graph.add_edge(ring[i], ring[(i + 1) % ring_len]);
        }
        all.push(ring);
    }
    for r in 0..rings {
        let next = (r + 1) % rings;
        graph.add_edge(all[r][0], all[next][0]);
    }
    RingWorld { graph, rings: all }
}

/// One churn update aimed at SCC structure: chords, bridges (forward and
/// reverse), self-loops, ring-edge removal/restoration. Deletes flip to
/// insertions (and vice versa) when the edge is already in the target state,
/// so long streams keep oscillating instead of saturating.
fn churn_update(rng: &mut StdRng, world: &RingWorld, graph: &DataGraph) -> Option<Update> {
    let rings = &world.rings;
    let pick_ring = rng.gen_range(0..rings.len());
    let ring = &rings[pick_ring];
    let toggle = |graph: &DataGraph, a: NodeId, b: NodeId| {
        if graph.has_edge(a, b) {
            Update::delete(a, b)
        } else {
            Update::insert(a, b)
        }
    };
    match rng.gen_range(0..5u32) {
        // Chord inside a ring: a back edge (j → i, i < j) closing a sub-cycle.
        0 => {
            let i = rng.gen_range(0..ring.len() - 1);
            let j = rng.gen_range(i + 1..ring.len());
            Some(toggle(graph, ring[j], ring[i]))
        }
        // Forward bridge between neighbouring rings: deleting splits the
        // SCC chain, re-inserting heals it.
        1 => {
            let next = &rings[(pick_ring + 1) % rings.len()];
            Some(toggle(graph, ring[0], next[0]))
        }
        // Reverse bridge: inserting merges two rings into one SCC.
        2 => {
            let next = &rings[(pick_ring + 1) % rings.len()];
            Some(toggle(graph, next[rng.gen_range(0..next.len())], ring[0]))
        }
        // Self-loop on a random node: a single-node SCC flickers.
        3 => {
            let v = ring[rng.gen_range(0..ring.len())];
            Some(toggle(graph, v, v))
        }
        // Ring edge itself: the ring SCC degrades to a path and back.
        _ => {
            let i = rng.gen_range(0..ring.len());
            Some(toggle(graph, ring[i], ring[(i + 1) % ring.len()]))
        }
    }
}

/// A cyclic pattern whose shape is chosen by `kind`:
/// * 0 — one-node self-loop SCC (`l0 → l0` on itself);
/// * 1 — a single 3-node SCC over three labels, plus a non-SCC out-edge;
/// * 2 — **two** nontrivial SCCs (two 2-cycles) joined by a bridge edge —
///   the multi-SCC case whose speculative evaluation order matters.
fn churn_pattern(kind: usize) -> Pattern {
    let mut p = Pattern::new();
    match kind {
        0 => {
            let a = p.add_labeled_node("l0");
            p.add_normal_edge(a, a);
        }
        1 => {
            let a = p.add_labeled_node("l0");
            let b = p.add_labeled_node("l1");
            let c = p.add_labeled_node("l2");
            p.add_normal_edge(a, b);
            p.add_normal_edge(b, c);
            p.add_normal_edge(c, a);
            let d = p.add_labeled_node("l1");
            p.add_normal_edge(a, d);
        }
        _ => {
            let a = p.add_labeled_node("l0");
            let b = p.add_labeled_node("l1");
            p.add_normal_edge(a, b);
            p.add_normal_edge(b, a);
            let c = p.add_labeled_node("l2");
            let d = p.add_labeled_node("l0");
            p.add_normal_edge(c, d);
            p.add_normal_edge(d, c);
            // Bridge between the SCCs: Tarjan enumerates the downstream
            // component first, so promotions there feed the upstream one —
            // exactly the cross-SCC flow the dirty fallback must reproduce.
            p.add_normal_edge(b, c);
        }
    }
    p
}

/// Drives one replica per shard count through the same churn stream and
/// checks bit-identity + from-scratch agreement after every batch.
/// `grow_every > 0` splices a fresh node into a ring between batches.
fn drive_scc_churn(
    world: &RingWorld,
    pattern: &Pattern,
    seed: u64,
    total: usize,
    grow_every: usize,
    context: &str,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut replicas: Vec<(DataGraph, SimulationIndex)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let graph = world.graph.clone();
            let index = SimulationIndex::build_with_shards(pattern, &graph, shards);
            (graph, index)
        })
        .collect();
    // The builds themselves must already agree (sharded candidate scan).
    for (i, &shards) in SHARD_COUNTS.iter().enumerate().skip(1) {
        assert_eq!(
            replicas[i].1.aux_snapshot(),
            replicas[0].1.aux_snapshot(),
            "{context}: build diverged at shards={shards}"
        );
    }

    let mut applied = 0usize;
    let mut round = 0usize;
    let mut pending_splice: Option<(NodeId, NodeId, NodeId)> = None;
    while applied < total {
        round += 1;
        let batch_size = [1usize, 7, 33, 101][round % 4];
        let mut batch = BatchUpdate::new();
        if let Some((fresh, prev, next)) = pending_splice.take() {
            // Splice the fresh node into the ring: prev → fresh → next (the
            // old prev → next edge is deleted in the same batch, so the node
            // lands *inside* the cycle).
            batch.insert(prev, fresh);
            batch.insert(fresh, next);
            batch.delete(prev, next);
        }
        while batch.len() < batch_size {
            match churn_update(&mut rng, world, &replicas[0].0) {
                Some(update) => batch.push(update),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();

        let mut reference_stats: Option<ApplyOutcome> = None;
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let (graph, index) = &mut replicas[i];
            let stats = index.apply_batch_with_shards(graph, &batch, shards);
            match &reference_stats {
                None => reference_stats = Some(stats),
                Some(reference) => assert_eq!(
                    stats, *reference,
                    "{context}, round {round}: AffStats diverged at shards={shards}"
                ),
            }
        }
        let (reference_graph, reference_index) = {
            let (g, idx) = &replicas[0];
            (g.clone(), idx.aux_snapshot())
        };
        for (i, &shards) in SHARD_COUNTS.iter().enumerate().skip(1) {
            let (graph, index) = &replicas[i];
            assert!(
                graph.identical_to(&reference_graph),
                "{context}, round {round}: graph diverged at shards={shards}"
            );
            assert_eq!(
                index.aux_snapshot(),
                reference_index,
                "{context}, round {round}: aux state diverged at shards={shards}"
            );
        }
        let expected = match_simulation(pattern, &reference_graph);
        assert_eq!(
            replicas[0].1.matches(),
            expected,
            "{context}, round {round}: diverged from from-scratch recomputation"
        );

        if grow_every > 0 && round.is_multiple_of(grow_every) {
            // A fresh node with a ring label, spliced in by the next batch.
            let ring = &world.rings[round % world.rings.len()];
            let pos = round % ring.len();
            let label = {
                let (graph, _) = &replicas[0];
                graph.attrs(ring[pos]).label().expect("ring nodes are labeled").to_string()
            };
            let mut fresh = NodeId(0);
            for (graph, index) in replicas.iter_mut() {
                fresh = graph.add_node(Attributes::labeled(label.clone()));
                // The index observes the node through the next batch; nothing
                // to do here — `ensure_node_capacity` runs inside apply_batch.
                let _ = index;
            }
            pending_splice = Some((fresh, ring[pos], ring[(pos + 1) % ring.len()]));
        }
    }
    assert!(applied >= total, "{context}: stream too short ({applied} updates)");
}

#[test]
fn self_loop_pattern_survives_scc_churn() {
    let world = ring_world(6, 9, 3);
    drive_scc_churn(&world, &churn_pattern(0), 0xC0FFEE, 1_100, 7, "self-loop pattern");
}

#[test]
fn three_cycle_pattern_survives_scc_churn() {
    let world = ring_world(6, 9, 3);
    drive_scc_churn(&world, &churn_pattern(1), 0xBEEF, 1_100, 6, "3-cycle pattern");
}

#[test]
fn multi_scc_pattern_survives_scc_churn() {
    // Two nontrivial pattern SCCs joined by a bridge: the speculative
    // evaluation runs both on threads, and any promoting commit forces the
    // dirty fallback for the second — the order-sensitivity this suite is
    // specifically after.
    let world = ring_world(6, 9, 3);
    drive_scc_churn(&world, &churn_pattern(2), 0xD00D, 1_100, 5, "multi-SCC pattern");
}

#[test]
fn threaded_branches_engage_above_the_spawn_threshold() {
    // > PARALLEL_WORK_THRESHOLD (4096) nodes: the propCC tentative gather,
    // tsup derivation and seed scans actually fan out to scoped threads at
    // shards > 1 and must agree with the inline path bit for bit. Fewer
    // updates — every batch still checks all four replicas from scratch.
    let world = ring_world(15, 300, 3);
    assert!(world.graph.node_count() > 4096);
    drive_scc_churn(&world, &churn_pattern(2), 0xFA57, 260, 0, "above-threshold churn");
}

#[test]
fn cross_scc_promotion_cascade_is_bit_identical_above_threshold() {
    // Deterministic worst case for the speculative evaluation's dirty
    // fallback. Pattern: upstream SCC a(l0) ⇄ b(l1), bridge b → c, downstream
    // SCC c(l2) ⇄ d(l3). Tarjan enumerates the downstream SCC first, so in
    // ONE propCC pass the sequential engine promotes the whole downstream
    // cycle and then — evaluating the upstream SCC against the *post-commit*
    // counters — the whole upstream cycle too. A sharded engine that kept
    // using the upstream SCC's pre-commit speculative verdict would need an
    // extra propCC pass (different AffStats trajectory); the dirty fallback
    // must make every shard count reproduce the one-pass sequential numbers.
    //
    // Data: an alternating l0/l1 cycle, an alternating l2/l3 cycle with its
    // closing edge missing (so nothing matches after the build), and an edge
    // from every l1 node into the l2/l3 cycle. The batch inserts the single
    // closing edge; 4400 nodes put the run above PARALLEL_WORK_THRESHOLD so
    // the speculative multi-SCC fan-out genuinely engages at shards > 1.
    let m = 1_100usize;
    let mut graph = DataGraph::new();
    let upstream: Vec<NodeId> =
        (0..2 * m).map(|i| graph.add_labeled_node(if i % 2 == 0 { "l0" } else { "l1" })).collect();
    for i in 0..2 * m {
        graph.add_edge(upstream[i], upstream[(i + 1) % (2 * m)]);
    }
    let downstream: Vec<NodeId> =
        (0..2 * m).map(|i| graph.add_labeled_node(if i % 2 == 0 { "l2" } else { "l3" })).collect();
    for i in 0..2 * m - 1 {
        graph.add_edge(downstream[i], downstream[i + 1]);
    }
    for i in 0..m {
        // Every l1 node can see an l2 node — the data edge of the pattern
        // bridge b → c, the channel through which the downstream commit
        // unblocks the upstream joint evaluation.
        graph.add_edge(upstream[2 * i + 1], downstream[2 * (i % m)]);
    }
    let mut pattern = Pattern::new();
    let a = pattern.add_labeled_node("l0");
    let b = pattern.add_labeled_node("l1");
    pattern.add_normal_edge(a, b);
    pattern.add_normal_edge(b, a);
    let c = pattern.add_labeled_node("l2");
    let d = pattern.add_labeled_node("l3");
    pattern.add_normal_edge(c, d);
    pattern.add_normal_edge(d, c);
    pattern.add_normal_edge(b, c);

    let mut replicas: Vec<(DataGraph, SimulationIndex)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let g = graph.clone();
            let index = SimulationIndex::build_with_shards(&pattern, &g, shards);
            assert!(!index.is_match(), "broken downstream cycle must empty the match");
            (g, index)
        })
        .collect();

    let mut batch = BatchUpdate::new();
    batch.insert(downstream[2 * m - 1], downstream[0]);
    let mut reference_stats: Option<ApplyOutcome> = None;
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        let (g, index) = &mut replicas[i];
        let stats = index.apply_batch_with_shards(g, &batch, shards);
        assert!(index.is_match(), "shards={shards}: both cycles must match after the close");
        assert_eq!(
            stats.stats.matches_added,
            4 * m,
            "shards={shards}: every node of both cycles promotes"
        );
        match &reference_stats {
            None => reference_stats = Some(stats),
            Some(reference) => {
                assert_eq!(stats, *reference, "shards={shards}: cascade AffStats diverged")
            }
        }
    }
    let expected = match_simulation(&pattern, &replicas[0].0);
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        assert_eq!(replicas[i].1.matches(), expected, "shards={shards}");
        assert_eq!(replicas[i].1.aux_snapshot(), replicas[0].1.aux_snapshot(), "shards={shards}");
    }
}

#[test]
fn bridge_storm_flips_the_whole_match() {
    // The unboundedness-gadget worst case, batched: two long chains of one
    // label under a 2-cycle pattern. Closing both bridges matches *every*
    // node (propCC promotes O(|V|) candidates in one joint evaluation);
    // opening either empties the match again. Alternating batches force the
    // maximum-possible propCC volume every round.
    let mut graph = DataGraph::new();
    let n = 700usize;
    let nodes: Vec<NodeId> = (0..2 * n).map(|_| graph.add_labeled_node("a")).collect();
    for i in 0..n - 1 {
        graph.add_edge(nodes[i], nodes[i + 1]);
        graph.add_edge(nodes[n + i], nodes[n + i + 1]);
    }
    let mut pattern = Pattern::new();
    let u1 = pattern.add_labeled_node("a");
    let u2 = pattern.add_labeled_node("a");
    pattern.add_normal_edge(u1, u2);
    pattern.add_normal_edge(u2, u1);

    let bridge_a = (nodes[n - 1], nodes[n]);
    let bridge_b = (nodes[2 * n - 1], nodes[0]);
    let mut replicas: Vec<(DataGraph, SimulationIndex)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let g = graph.clone();
            let index = SimulationIndex::build_with_shards(&pattern, &g, shards);
            (g, index)
        })
        .collect();

    for round in 0..12 {
        let mut batch = BatchUpdate::new();
        match round % 4 {
            0 => {
                batch.insert(bridge_a.0, bridge_a.1);
                batch.insert(bridge_b.0, bridge_b.1);
            }
            1 => batch.delete(bridge_a.0, bridge_a.1),
            2 => batch.insert(bridge_a.0, bridge_a.1),
            _ => {
                batch.delete(bridge_a.0, bridge_a.1);
                batch.delete(bridge_b.0, bridge_b.1);
            }
        }
        let mut reference_stats: Option<ApplyOutcome> = None;
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let (g, index) = &mut replicas[i];
            let stats = index.apply_batch_with_shards(g, &batch, shards);
            match &reference_stats {
                None => reference_stats = Some(stats),
                Some(reference) => {
                    assert_eq!(stats, *reference, "round {round}: stats diverged at {shards}")
                }
            }
        }
        let expected = match_simulation(&pattern, &replicas[0].0);
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let (_, index) = &replicas[i];
            assert_eq!(index.matches(), expected, "round {round}, shards={shards}");
            assert_eq!(
                index.aux_snapshot(),
                replicas[0].1.aux_snapshot(),
                "round {round}, shards={shards}"
            );
        }
        match round % 4 {
            0 => assert!(replicas[0].1.is_match(), "round {round}: both bridges closed"),
            1 | 3 => assert!(!replicas[0].1.is_match(), "round {round}: a bridge is open"),
            _ => {}
        }
    }
}

#[test]
fn bounded_index_promote_sccs_survives_scc_churn() {
    // The bounded-simulation mirror: cyclic b-patterns over a ring world
    // large enough (> PARALLEL_EVAL_THRESHOLD nodes) that `promote_sccs`'
    // speculative fan-out genuinely engages, driven by the same SCC churn.
    // Two nontrivial pattern SCCs joined by a bridge exercise the ordered
    // commit + dirty fallback; the suite checks aux snapshots (masks, pair
    // sets, support counters), AffStats and from-scratch agreement at every
    // batch.
    let world = ring_world(6, 45, 3);
    assert!(world.graph.node_count() > 256, "must cross the pair-evaluation spawn threshold");
    let mut pattern = Pattern::new();
    let a = pattern.add_labeled_node("l0");
    let b = pattern.add_labeled_node("l1");
    pattern.add_edge(a, b, EdgeBound::Hops(2));
    pattern.add_edge(b, a, EdgeBound::Unbounded);
    let c = pattern.add_labeled_node("l2");
    let d = pattern.add_labeled_node("l0");
    pattern.add_edge(c, d, EdgeBound::Hops(2));
    pattern.add_edge(d, c, EdgeBound::Hops(3));
    pattern.add_edge(b, c, EdgeBound::Hops(2));

    let mut rng = StdRng::seed_from_u64(0x5CC);
    let mut replicas: Vec<(DataGraph, BoundedIndex)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let graph = world.graph.clone();
            let index = BoundedIndex::build_with_shards(&pattern, &graph, shards);
            (graph, index)
        })
        .collect();
    for (i, &shards) in SHARD_COUNTS.iter().enumerate().skip(1) {
        assert_eq!(
            replicas[i].1.aux_snapshot(),
            replicas[0].1.aux_snapshot(),
            "bounded build diverged at shards={shards}"
        );
    }

    let mut applied = 0usize;
    let mut round = 0usize;
    while applied < 80 {
        round += 1;
        let batch_size = [1usize, 5, 17][round % 3];
        let mut batch = BatchUpdate::new();
        while batch.len() < batch_size {
            match churn_update(&mut rng, &world, &replicas[0].0) {
                Some(update) => batch.push(update),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();
        let mut reference_stats: Option<ApplyOutcome> = None;
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let (graph, index) = &mut replicas[i];
            let stats = index.apply_batch_with_shards(graph, &batch, shards);
            match &reference_stats {
                None => reference_stats = Some(stats),
                Some(reference) => assert_eq!(
                    stats, *reference,
                    "bounded round {round}: AffStats diverged at shards={shards}"
                ),
            }
        }
        for (i, &shards) in SHARD_COUNTS.iter().enumerate().skip(1) {
            let (graph, index) = &replicas[i];
            assert!(
                graph.identical_to(&replicas[0].0),
                "bounded round {round}: graph diverged at shards={shards}"
            );
            assert_eq!(
                index.aux_snapshot(),
                replicas[0].1.aux_snapshot(),
                "bounded round {round}: aux diverged at shards={shards}"
            );
        }
        // The matrix-backed from-scratch recomputation is the expensive part
        // of the loop; bit-identity is already asserted every round, so the
        // semantic anchor runs on a cadence (and always on the final state).
        if round.is_multiple_of(4) {
            let expected = match_bounded_with_matrix(&pattern, &replicas[0].0);
            assert_eq!(
                replicas[0].1.matches(),
                expected,
                "bounded round {round}: diverged from from-scratch"
            );
        }
    }
    let expected = match_bounded_with_matrix(&pattern, &replicas[0].0);
    assert_eq!(replicas[0].1.matches(), expected, "bounded final: diverged from from-scratch");
}
