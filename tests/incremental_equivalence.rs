//! Long-stream equivalence property tests for the counter-backed incremental
//! engines: 1000+ random interleaved insert/delete updates — applied both as
//! unit updates and as batches — must leave [`SimulationIndex`] (and the
//! bounded [`BoundedIndex`]) exactly equal to a from-scratch recomputation at
//! every checkpoint, for cyclic and DAG patterns alike.
//!
//! These streams deliberately mix:
//! * re-deletions of just-inserted edges and re-insertions of just-deleted
//!   ones (no-op and cancellation paths),
//! * degree-biased endpoints (hub churn exercises the swap-remove position
//!   fixups in `DataGraph` and deep propagation cascades),
//! * uniformly random endpoints (edges far away from the match).

use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random unit update over the current graph: half the time an existing
/// edge is deleted (degree-biased via a random pivot's adjacency), otherwise a
/// random pair is inserted.
fn random_update(rng: &mut StdRng, graph: &DataGraph) -> Option<Update> {
    let n = graph.node_count();
    if rng.gen_bool(0.5) && graph.edge_count() > 0 {
        // Pick an existing edge by walking from a random node with edges.
        for _ in 0..32 {
            let v = NodeId(rng.gen_range(0..n) as u32);
            if graph.out_degree(v) > 0 {
                let children = graph.children(v);
                let w = children[rng.gen_range(0..children.len())];
                return Some(Update::delete(v, w));
            }
        }
        None
    } else {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        (a != b).then(|| Update::insert(NodeId(a as u32), NodeId(b as u32)))
    }
}

fn stream_of(rng: &mut StdRng, graph: &DataGraph, len: usize) -> Vec<Update> {
    // Pre-draw against the base graph; deletions of already-deleted edges and
    // duplicate insertions are *intentional* (they exercise the no-op paths).
    (0..len * 2).filter_map(|_| random_update(rng, graph)).take(len).collect()
}

/// Drives a `SimulationIndex` with unit updates, checking against
/// `match_simulation` every `checkpoint` steps.
fn drive_sim_units(pattern: &Pattern, base: &DataGraph, updates: &[Update], checkpoint: usize) {
    let mut graph = base.clone();
    let mut index = SimulationIndex::build(pattern, &graph);
    for (step, update) in updates.iter().enumerate() {
        let (a, b) = update.endpoints();
        if update.is_insert() {
            index.insert_edge(&mut graph, a, b);
        } else {
            index.delete_edge(&mut graph, a, b);
        }
        if step % checkpoint == checkpoint - 1 {
            assert_eq!(
                index.matches(),
                igpm::core::match_simulation(pattern, &graph),
                "unit update {step} diverged"
            );
        }
    }
    assert_eq!(
        index.matches(),
        igpm::core::match_simulation(pattern, &graph),
        "final unit state diverged"
    );
}

/// Drives a `SimulationIndex` with batches, checking after every batch.
fn drive_sim_batches(pattern: &Pattern, base: &DataGraph, updates: &[Update], batch_size: usize) {
    let mut graph = base.clone();
    let mut index = SimulationIndex::build(pattern, &graph);
    for (round, chunk) in updates.chunks(batch_size).enumerate() {
        let batch: BatchUpdate = chunk.iter().copied().collect();
        index.apply_batch(&mut graph, &batch);
        assert_eq!(
            index.matches(),
            igpm::core::match_simulation(pattern, &graph),
            "batch round {round} diverged"
        );
    }
}

#[test]
fn counter_index_tracks_1000_unit_updates_cyclic_pattern() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let graph = synthetic_graph(&SyntheticConfig::new(250, 900, 4, 0x11));
    // General patterns keep a nontrivial SCC with overwhelming probability;
    // require one so propCC is genuinely exercised.
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(5, 8, 1, 0x12).with_shape(PatternShape::General),
    );
    assert!(!pattern.is_dag(), "want a cyclic pattern for the propCC path");
    let updates = stream_of(&mut rng, &graph, 1_000);
    assert!(updates.len() >= 1_000);
    drive_sim_units(&pattern, &graph, &updates, 50);
}

#[test]
fn counter_index_tracks_1000_unit_updates_dag_pattern() {
    let mut rng = StdRng::seed_from_u64(0xDA6);
    let graph = synthetic_graph(&SyntheticConfig::new(250, 900, 4, 0x21));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(6, 9, 1, 0x22).with_shape(PatternShape::Dag),
    );
    assert!(pattern.is_dag());
    let updates = stream_of(&mut rng, &graph, 1_000);
    drive_sim_units(&pattern, &graph, &updates, 50);
}

#[test]
fn counter_index_tracks_1200_batched_updates_both_shapes() {
    for (shape, seed) in [(PatternShape::General, 0x31u64), (PatternShape::Dag, 0x41u64)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 7, 1, seed + 2).with_shape(shape),
        );
        let updates = stream_of(&mut rng, &graph, 1_200);
        // Mixed batch sizes: unit-sized, small and large batches interleave
        // the deletion-first/insertion-second processing discipline.
        for batch_size in [1usize, 7, 64] {
            drive_sim_batches(&pattern, &graph, &updates, batch_size);
        }
    }
}

#[test]
fn unit_and_batch_processing_land_on_the_same_state() {
    let mut rng = StdRng::seed_from_u64(0x51);
    let graph = synthetic_graph(&SyntheticConfig::new(180, 600, 4, 0x52));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(5, 8, 1, 0x53).with_shape(PatternShape::General),
    );
    let updates = stream_of(&mut rng, &graph, 1_000);

    let mut g_unit = graph.clone();
    let mut unit_index = SimulationIndex::build(&pattern, &g_unit);
    for update in &updates {
        let (a, b) = update.endpoints();
        if update.is_insert() {
            unit_index.insert_edge(&mut g_unit, a, b);
        } else {
            unit_index.delete_edge(&mut g_unit, a, b);
        }
    }

    let mut g_batch = graph.clone();
    let mut batch_index = SimulationIndex::build(&pattern, &g_batch);
    for chunk in updates.chunks(33) {
        let batch: BatchUpdate = chunk.iter().copied().collect();
        batch_index.apply_batch(&mut g_batch, &batch);
    }

    assert_eq!(g_unit, g_batch, "graphs diverged between unit and batch application");
    assert_eq!(unit_index.matches(), batch_index.matches());
    assert_eq!(unit_index.matches(), igpm::core::match_simulation(&pattern, &g_unit));
}

#[test]
fn counter_index_tracks_node_growth_interleaved_with_updates() {
    // Nodes added *after* the index is built must join the candidate
    // pipeline: their first edges are classified against grown masks
    // (regression coverage for the stale-classification bug class), both on
    // the unit path and the batch path, for cyclic and DAG patterns.
    for (shape, seed) in [(PatternShape::General, 0x81u64), (PatternShape::Dag, 0x91u64)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = synthetic_graph(&SyntheticConfig::new(120, 420, 4, seed + 1));
        let pattern =
            generate_pattern(&base, &PatternGenConfig::normal(5, 7, 1, seed + 2).with_shape(shape));

        let mut graph = base.clone();
        let mut index = SimulationIndex::build(&pattern, &graph);
        for step in 0..400usize {
            if step % 8 == 0 {
                // Grow: a brand-new node with a random existing label, wired
                // in by unit updates drawn against the *current* graph.
                let label = rng.gen_range(0..4u32);
                let fresh = graph.add_node(Attributes::labeled(format!("l{label}")));
                let n = graph.node_count() - 1;
                let out = NodeId(rng.gen_range(0..n) as u32);
                let inn = NodeId(rng.gen_range(0..n) as u32);
                index.insert_edge(&mut graph, fresh, out);
                index.insert_edge(&mut graph, inn, fresh);
            } else if step % 17 == 0 {
                // Batch path over a graph that contains post-build nodes.
                let mut batch = BatchUpdate::new();
                for _ in 0..6 {
                    if let Some(update) = random_update(&mut rng, &graph) {
                        batch.push(update);
                    }
                }
                index.apply_batch(&mut graph, &batch);
            } else if let Some(update) = random_update(&mut rng, &graph) {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
            }
            if step % 25 == 24 {
                assert_eq!(
                    index.matches(),
                    igpm::core::match_simulation(&pattern, &graph),
                    "node-growth step {step} diverged ({shape:?})"
                );
            }
        }
        assert!(graph.node_count() > base.node_count(), "stream actually grew the graph");
        assert_eq!(index.matches(), igpm::core::match_simulation(&pattern, &graph));
    }
}

#[test]
fn bounded_index_tracks_600_interleaved_updates() {
    // The bounded engine re-evaluates distance pairs per update, so the
    // stream is shorter but still mixes unit updates and batches, DAG and
    // cyclic patterns.
    for (shape, seed) in [(PatternShape::Dag, 0x61u64), (PatternShape::General, 0x71u64)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = synthetic_graph(&SyntheticConfig::new(90, 280, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::new(4, 5, 1, 2, seed + 2).with_shape(shape),
        );
        let updates = stream_of(&mut rng, &graph, 600);

        // Unit updates with periodic checkpoints.
        let mut g = graph.clone();
        let mut index = BoundedIndex::build(&pattern, &g);
        for (step, update) in updates.iter().take(120).enumerate() {
            let (a, b) = update.endpoints();
            if update.is_insert() {
                index.insert_edge(&mut g, a, b);
            } else {
                index.delete_edge(&mut g, a, b);
            }
            if step % 20 == 19 {
                assert_eq!(
                    index.matches(),
                    igpm::core::match_bounded_with_matrix(&pattern, &g),
                    "bounded unit step {step} diverged ({shape:?})"
                );
            }
        }

        // The remaining stream in batches.
        for (round, chunk) in updates[120..].chunks(48).enumerate() {
            let batch: BatchUpdate = chunk.iter().copied().collect();
            index.apply_batch(&mut g, &batch);
            assert_eq!(
                index.matches(),
                igpm::core::match_bounded_with_matrix(&pattern, &g),
                "bounded batch round {round} diverged ({shape:?})"
            );
        }
    }
}
