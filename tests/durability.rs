//! Crash-recovery suite for the durability layer (`igpm_graph::wal` +
//! `DurableIndex`).
//!
//! The crash model: an armed durability failpoint panics at its site, which
//! stands in for `kill -9` at that instruction — the in-memory object is
//! dead, whatever reached the filesystem is the surviving state. Each test
//! catches the panic, drops the object, reopens the directory and asserts
//! the **crash-anywhere invariant**: graph, matches, auxiliary state and the
//! `AffStats` of further batches are bit-identical to an uninterrupted
//! reference run. That holds for every durability failpoint site
//! (`wal.append-header`, `wal.append-body`, `wal.fsync`, `ckpt.write`,
//! `ckpt.rename`, `wal.prune`), every shard count in {1, 4, 8} and both
//! engines, plus:
//!
//! * a seeded 1k+-update property stream with checkpoints at random
//!   intervals and a crash injected at every site along the way,
//!   differential-checked against the uninterrupted run *and* a
//!   from-scratch build;
//! * double crashes: a crash during recovery replay (and during the
//!   recovery *build*) followed by a clean recovery — possible because
//!   recovery never writes to the log it replays;
//! * tolerated damage: torn WAL tails (cut mid-record or with garbage
//!   appended) and a corrupt newest checkpoint (fall back to the older
//!   retained one) — typed errors at worst, never a panic.
//!
//! The failpoint registry is process-global, so (like `fault_injection.rs`)
//! everything serialises on one mutex and armed sections run with a muted
//! panic hook.

use igpm::core::{
    configured_shards, AffStats, BoundedIndex, BsimAuxSnapshot, DurableError, DurableIndex,
    DurableMatchService, DurableOptions, IncrementalEngine, SimAuxSnapshot, SimulationIndex,
};
use igpm::graph::fail;
use igpm::graph::wal::FsyncPolicy;
use igpm::graph::{ApplyError, BatchUpdate, DataGraph, EdgeBound, NodeId, Pattern};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// Every durability failpoint site, in the order the pipeline reaches them.
const DURABILITY_SITES: [&str; 6] = [
    fail::WAL_APPEND_HEADER,
    fail::WAL_APPEND_BODY,
    fail::WAL_FSYNC,
    fail::CKPT_WRITE,
    fail::CKPT_RENAME,
    fail::WAL_PRUNE,
];

/// Serialises the tests: the failpoint registry is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with `site` armed and the default panic hook muted.
fn with_armed<T>(site: &str, f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = {
        let _armed = fail::arm_scoped(site);
        f()
    };
    std::panic::set_hook(hook);
    result
}

/// A fresh scratch directory for one durable index; removed by `Scratch`'s
/// drop so failures don't leak state between test processes.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("igpm-durability-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------------
// World and stream generation
// ---------------------------------------------------------------------------

/// Cyclic normal pattern `l0 ⇄ l1` — both nodes share one nontrivial SCC,
/// so promotion phases run.
fn cycle_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    p.add_normal_edge(a, b);
    p.add_normal_edge(b, a);
    p
}

/// Bounded b-pattern `l0 -[1]-> l1 -[*]-> l0` for the bounded engine.
fn bounded_cycle_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    p.add_edge(a, b, EdgeBound::Hops(1));
    p.add_edge(b, a, EdgeBound::Unbounded);
    p
}

/// `n` nodes with alternating labels and a seed ring, so the generated
/// streams keep creating and destroying `l0 ⇄ l1` cycles.
fn seed_world(n: usize) -> DataGraph {
    let mut graph = DataGraph::new();
    let nodes: Vec<NodeId> =
        (0..n).map(|i| graph.add_labeled_node(format!("l{}", i % 2))).collect();
    for i in 0..n {
        graph.add_edge(nodes[i], nodes[(i + 1) % n]);
    }
    graph
}

/// Deterministic splitmix-style generator: same seed, same stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 17
    }
}

/// One validation-clean batch against `graph`: every update is effective at
/// its position (presence tracked through the batch), so `try_apply_batch`
/// accepts it whole.
fn gen_batch(rng: &mut Rng, graph: &DataGraph, per_batch: usize) -> BatchUpdate {
    let nv = graph.node_count() as u64;
    let mut batch = BatchUpdate::new();
    let mut overlay: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    while batch.len() < per_batch {
        let a = NodeId((rng.next() % nv) as u32);
        let b = NodeId((rng.next() % nv) as u32);
        if a == b {
            continue;
        }
        let present = *overlay.entry((a, b)).or_insert_with(|| graph.has_edge(a, b));
        if present {
            batch.delete(a, b);
        } else {
            batch.insert(a, b);
        }
        overlay.insert((a, b), !present);
    }
    batch
}

/// A stream of `count` batches, each valid against the graph as left by its
/// predecessors.
fn gen_stream(
    rng: &mut Rng,
    initial: &DataGraph,
    count: usize,
    per_batch: usize,
) -> Vec<BatchUpdate> {
    let mut graph = initial.clone();
    (0..count)
        .map(|_| {
            let batch = gen_batch(rng, &graph, per_batch);
            batch.apply(&mut graph);
            batch
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Engine abstraction (aux snapshots are engine-specific)
// ---------------------------------------------------------------------------

trait TestEngine: IncrementalEngine {
    type Aux: PartialEq + std::fmt::Debug;
    const NAME: &'static str;
    /// Whether every auxiliary structure is a pure function of the current
    /// graph — true for the plain-simulation engine, false for the bounded
    /// one, whose landmark cover accretes with insertion history (IncLM,
    /// Prop. 6.2: the cover only ever grows). With an accreted cover the
    /// cost-accounting `AffStats` fields of *future* batches legitimately
    /// depend on where the index was last rebuilt, even though every match
    /// result, counter and cached view is identical.
    const CANONICAL_AUX: bool;
    fn aux(&self) -> Self::Aux;
    fn test_pattern() -> Pattern;
}

impl TestEngine for SimulationIndex {
    type Aux = SimAuxSnapshot;
    const NAME: &'static str = "sim";
    const CANONICAL_AUX: bool = true;
    fn aux(&self) -> SimAuxSnapshot {
        self.aux_snapshot()
    }
    fn test_pattern() -> Pattern {
        cycle_pattern()
    }
}

impl TestEngine for BoundedIndex {
    type Aux = BsimAuxSnapshot;
    const NAME: &'static str = "bsim";
    const CANONICAL_AUX: bool = false;
    fn aux(&self) -> BsimAuxSnapshot {
        self.aux_snapshot()
    }
    fn test_pattern() -> Pattern {
        bounded_cycle_pattern()
    }
}

/// The uninterrupted in-memory reference: the same stream applied through
/// the ordinary engine path, no disk involved.
fn reference_run<E: TestEngine>(
    pattern: &Pattern,
    initial: &DataGraph,
    batches: &[BatchUpdate],
    shards: usize,
) -> (DataGraph, E) {
    let mut graph = initial.clone();
    let mut engine = E::rebuild_with_shards(pattern, &graph, shards);
    for (i, batch) in batches.iter().enumerate() {
        engine
            .try_apply_batch_with_shards(&mut graph, batch, shards)
            .unwrap_or_else(|e| panic!("reference batch {i} failed: {e}"));
    }
    (graph, engine)
}

fn opts(shards: usize, checkpoint_every: u64) -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every,
        keep_checkpoints: 2,
        shards,
        delta_buffer: 1024,
    }
}

/// Asserts the recovered durable index is bit-identical to the in-memory
/// reference: graph (adjacency order included), matches, auxiliary state —
/// and stays in lockstep for one further batch (`AffStats` included).
fn assert_bit_identical<E: TestEngine>(
    context: &str,
    durable: &mut DurableIndex<E>,
    ref_graph: &mut DataGraph,
    ref_engine: &mut E,
    rng: &mut Rng,
    shards: usize,
) {
    assert!(
        durable.graph().identical_to(ref_graph),
        "{context}: recovered graph differs from the uninterrupted run"
    );
    durable.graph().assert_edge_index_consistent();
    assert_eq!(
        durable.try_matches().expect("recovered index must be readable"),
        ref_engine.try_matches().expect("reference must be readable"),
        "{context}: matches diverged"
    );
    assert_eq!(durable.engine().aux(), ref_engine.aux(), "{context}: aux state diverged");

    // One extra batch keeps everything in lockstep: full `AffStats` when the
    // engine's aux state is canonical, the semantic fields otherwise (see
    // [`TestEngine::CANONICAL_AUX`]).
    let extra = gen_batch(rng, ref_graph, 4);
    let durable_outcome =
        durable.apply(&extra).unwrap_or_else(|e| panic!("{context}: extra batch failed: {e}"));
    let ref_outcome = ref_engine
        .try_apply_batch_with_shards(ref_graph, &extra, shards)
        .unwrap_or_else(|e| panic!("{context}: reference extra batch failed: {e}"));
    if E::CANONICAL_AUX {
        assert_eq!(
            durable_outcome, ref_outcome,
            "{context}: ApplyOutcome diverged on the extra batch"
        );
    }
    let (durable_stats, ref_stats): (AffStats, AffStats) =
        (durable_outcome.stats, ref_outcome.stats);
    assert_eq!(durable_stats.delta_g, ref_stats.delta_g, "{context}: delta_g diverged");
    assert_eq!(
        durable_stats.reduced_delta_g, ref_stats.reduced_delta_g,
        "{context}: reduced_delta_g diverged"
    );
    assert_eq!(
        (durable_stats.matches_added, durable_stats.matches_removed),
        (ref_stats.matches_added, ref_stats.matches_removed),
        "{context}: match churn diverged on the extra batch"
    );
    assert_eq!(
        durable_outcome.delta, ref_outcome.delta,
        "{context}: ΔM diverged on the extra batch"
    );
    assert!(durable.graph().identical_to(ref_graph), "{context}: graphs diverged after extra");
    assert_eq!(durable.engine().aux(), ref_engine.aux(), "{context}: aux diverged after extra");
}

// ---------------------------------------------------------------------------
// 1. Crash at every durability site × shards × engines
// ---------------------------------------------------------------------------

/// Applies `batches` through a durable index with `site` armed until the
/// failpoint "kills the process" (panics), reopens, resumes from the logged
/// sequence number, and returns the recovered index. Panics if the site
/// never fired.
fn crash_and_recover<E: TestEngine>(
    context: &str,
    dir: &Path,
    pattern: &Pattern,
    initial: &DataGraph,
    batches: &[BatchUpdate],
    site: &str,
    options: &DurableOptions,
) -> DurableIndex<E> {
    let mut victim: DurableIndex<E> =
        DurableIndex::open(dir.to_path_buf(), pattern, initial, options.clone())
            .unwrap_or_else(|e| panic!("{context}: initial open failed: {e}"));
    let mut crashed = false;
    let mut i = 0usize;
    while i < batches.len() {
        if crashed {
            victim
                .apply(&batches[i])
                .unwrap_or_else(|e| panic!("{context}: resume batch {i} failed: {e}"));
            i += 1;
            continue;
        }
        let outcome =
            with_armed(site, || catch_unwind(AssertUnwindSafe(|| victim.apply(&batches[i]))));
        match outcome {
            Ok(result) => {
                // The armed site was not on this batch's path (e.g. a
                // checkpoint site between checkpoints): the apply must have
                // succeeded normally.
                result.unwrap_or_else(|e| panic!("{context}: armed apply {i} errored: {e}"));
                i += 1;
            }
            Err(_) => {
                // The "process" died at the armed instruction. Drop the
                // corpse, reopen, and resume exactly where the log says.
                crashed = true;
                drop(victim);
                victim = DurableIndex::open(dir.to_path_buf(), pattern, initial, options.clone())
                    .unwrap_or_else(|e| panic!("{context}: reopen after crash failed: {e}"));
                let logged = victim.sequence();
                assert!(
                    logged as usize >= i && logged as usize <= i + 1,
                    "{context}: recovered sequence {logged} is not batch {i} ± the crashed one"
                );
                i = logged as usize;
            }
        }
    }
    assert!(crashed, "{context}: site never fired");
    victim
}

fn check_durability_site<E: TestEngine>(site: &str, shards: usize) {
    let context = format!("engine={}, site=`{site}`, shards={shards}", E::NAME);
    let pattern = E::test_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0xD15C_0000 ^ shards as u64);
    let batches = gen_stream(&mut rng, &initial, 10, 6);
    // checkpoint_every=2 with keep_checkpoints=2 reaches every checkpoint
    // site within the stream (the third auto-checkpoint starts pruning).
    let options = opts(shards, 2);

    let (mut ref_graph, mut ref_engine) = reference_run::<E>(&pattern, &initial, &batches, shards);
    let scratch = Scratch::new(&format!("site-{}-{shards}", E::NAME));
    let mut recovered = crash_and_recover::<E>(
        &context,
        scratch.path(),
        &pattern,
        &initial,
        &batches,
        site,
        &options,
    );
    assert_bit_identical(
        &context,
        &mut recovered,
        &mut ref_graph,
        &mut ref_engine,
        &mut rng,
        shards,
    );

    // A clean close + reopen of the same directory is also bit-identical
    // (the extra batch from the lockstep check is in the log).
    drop(recovered);
    let mut reopened: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, options)
            .unwrap_or_else(|e| panic!("{context}: clean reopen failed: {e}"));
    assert!(reopened.graph().identical_to(&ref_graph), "{context}: clean reopen diverged");
    assert_eq!(reopened.engine().aux(), ref_engine.aux(), "{context}: clean reopen aux diverged");
    let _ = reopened.checkpoint().unwrap_or_else(|e| panic!("{context}: checkpoint failed: {e}"));
}

#[test]
fn crash_at_every_durability_site_recovers_bit_identical_sim() {
    let _guard = serial();
    for shards in SHARD_COUNTS {
        for site in DURABILITY_SITES {
            check_durability_site::<SimulationIndex>(site, shards);
        }
    }
}

#[test]
fn crash_at_every_durability_site_recovers_bit_identical_bsim() {
    let _guard = serial();
    for shards in SHARD_COUNTS {
        for site in DURABILITY_SITES {
            check_durability_site::<BoundedIndex>(site, shards);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Seeded 1k+-update property stream with random checkpoints
// ---------------------------------------------------------------------------

fn property_stream<E: TestEngine>(seed: u64) {
    let shards = configured_shards();
    let context = format!("engine={}, seed={seed:#x}, shards={shards}", E::NAME);
    let pattern = E::test_pattern();
    let initial = seed_world(40);
    let mut rng = Rng(seed);
    // 64 batches × 18 updates = 1152 updates — and the generator's own
    // stream of checkpoint decisions rides the same seed.
    let batches = gen_stream(&mut rng, &initial, 64, 18);
    let options = opts(shards, 0); // explicit checkpoints only, at random intervals

    let (mut ref_graph, mut ref_engine) = reference_run::<E>(&pattern, &initial, &batches, shards);

    // Crash schedule: one durability site at each of these stream positions.
    // WAL sites crash inside `apply`; checkpoint sites crash inside an
    // explicit `checkpoint()` right after the batch landed.
    let crash_at = [5usize, 15, 25, 35, 45, 55];

    let scratch = Scratch::new(&format!("prop-{}", E::NAME));
    let mut victim: DurableIndex<E> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
            .unwrap_or_else(|e| panic!("{context}: open failed: {e}"));
    let mut fired = 0usize;
    for (i, batch) in batches.iter().enumerate() {
        let crash_site = crash_at.iter().position(|&at| at == i).map(|k| DURABILITY_SITES[k]);
        match crash_site {
            Some(site) if site.starts_with("wal.append") || site == fail::WAL_FSYNC => {
                let outcome =
                    with_armed(site, || catch_unwind(AssertUnwindSafe(|| victim.apply(batch))));
                assert!(outcome.is_err(), "{context}: site `{site}` never fired at batch {i}");
                fired += 1;
                drop(victim);
                victim =
                    DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                        .unwrap_or_else(|e| panic!("{context}: reopen at batch {i} failed: {e}"));
                if victim.sequence() < (i + 1) as u64 {
                    victim
                        .apply(batch)
                        .unwrap_or_else(|e| panic!("{context}: re-apply {i} failed: {e}"));
                }
            }
            Some(site) => {
                // Checkpoint-path site: land the batch, then crash the
                // on-demand checkpoint.
                victim.apply(batch).unwrap_or_else(|e| panic!("{context}: batch {i} failed: {e}"));
                let outcome =
                    with_armed(site, || catch_unwind(AssertUnwindSafe(|| victim.checkpoint())));
                assert!(outcome.is_err(), "{context}: site `{site}` never fired at batch {i}");
                fired += 1;
                drop(victim);
                victim =
                    DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                        .unwrap_or_else(|e| panic!("{context}: reopen at batch {i} failed: {e}"));
                assert_eq!(victim.sequence(), (i + 1) as u64, "{context}: lost batch {i}");
            }
            None => {
                victim.apply(batch).unwrap_or_else(|e| panic!("{context}: batch {i} failed: {e}"));
                // Random checkpoint intervals (~every 5 batches) from the
                // same seeded stream.
                if rng.next().is_multiple_of(5) {
                    victim
                        .checkpoint()
                        .unwrap_or_else(|e| panic!("{context}: checkpoint at {i} failed: {e}"));
                }
            }
        }
    }
    assert_eq!(fired, DURABILITY_SITES.len(), "{context}: not every site crashed");
    assert_eq!(victim.sequence(), batches.len() as u64, "{context}: stream incomplete");

    // Differential check 1: against the uninterrupted in-memory run.
    assert!(victim.graph().identical_to(&ref_graph), "{context}: graph diverged");
    assert_eq!(
        victim.try_matches().expect("readable"),
        ref_engine.try_matches().expect("readable"),
        "{context}: matches diverged"
    );
    assert_eq!(victim.engine().aux(), ref_engine.aux(), "{context}: aux diverged");

    // Differential check 2: against a from-scratch build of the final graph.
    let fresh = E::rebuild_with_shards(&pattern, victim.graph(), shards);
    assert_eq!(victim.engine().aux(), fresh.aux(), "{context}: diverged from fresh build");

    // And the recovered index keeps working: one extra batch in lockstep.
    assert_bit_identical(&context, &mut victim, &mut ref_graph, &mut ref_engine, &mut rng, shards);
}

#[test]
fn seeded_property_stream_sim() {
    let _guard = serial();
    property_stream::<SimulationIndex>(0x5EED_0001);
    property_stream::<SimulationIndex>(0x5EED_0002);
}

#[test]
fn seeded_property_stream_bsim() {
    let _guard = serial();
    property_stream::<BoundedIndex>(0x5EED_0003);
}

// ---------------------------------------------------------------------------
// 3. Double crash: a crash during recovery, then a clean recovery
// ---------------------------------------------------------------------------

/// Byte-level snapshot of every file in the durability directory — recovery
/// must be read-only, so failed recovery attempts may not change it.
fn dir_snapshot(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("durability dir readable")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(entry.path()).expect("file readable"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn crash_during_recovery_replay_then_clean_recovery() {
    let _guard = serial();
    let shards = configured_shards();
    let pattern = cycle_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0xDB1_CA5E);
    let batches = gen_stream(&mut rng, &initial, 8, 6);
    let options = opts(shards, 0);

    // Build durable state with a WAL tail to replay: checkpoint at batch 4,
    // then four more logged batches, then a clean close.
    let scratch = Scratch::new("double-crash");
    {
        let mut index: DurableIndex<SimulationIndex> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                .expect("open");
        for (i, batch) in batches.iter().enumerate() {
            index.apply(batch).expect("apply");
            if i == 3 {
                index.checkpoint().expect("checkpoint");
            }
        }
    }
    let before = dir_snapshot(scratch.path());

    // First crash: an engine failpoint during the WAL *replay* of recovery.
    // The engine contains it (`StagePanicked`), so recovery surfaces a typed
    // `Replay` error instead of a torn index — and writes nothing.
    let replay_attempt = with_armed(fail::SIM_ABSORB, || {
        DurableIndex::<SimulationIndex>::open(
            scratch.path().clone(),
            &pattern,
            &initial,
            options.clone(),
        )
    });
    assert!(
        matches!(replay_attempt, Err(DurableError::Replay { seq: 5, .. })),
        "expected a Replay error at the first post-checkpoint record, got {:?}",
        replay_attempt.err().map(|e| e.to_string())
    );
    assert_eq!(dir_snapshot(scratch.path()), before, "failed replay wrote to disk");

    // Second crash, harder: a panic during the recovery *build* (shard
    // planning) unwinds straight out of `open` — the double crash.
    let build_attempt = with_armed(fail::SHARD_PLAN, || {
        catch_unwind(AssertUnwindSafe(|| {
            DurableIndex::<SimulationIndex>::open(
                scratch.path().clone(),
                &pattern,
                &initial,
                options.clone(),
            )
        }))
    });
    assert!(build_attempt.is_err(), "armed shard.plan must crash the recovery build");
    assert_eq!(dir_snapshot(scratch.path()), before, "crashed recovery wrote to disk");

    // Recovery is read-only, so the third attempt — disarmed — succeeds and
    // is bit-identical to the uninterrupted run.
    let (mut ref_graph, mut ref_engine) =
        reference_run::<SimulationIndex>(&pattern, &initial, &batches, shards);
    let mut recovered: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, options).expect("reopen");
    assert_bit_identical(
        "double-crash",
        &mut recovered,
        &mut ref_graph,
        &mut ref_engine,
        &mut rng,
        shards,
    );
}

// ---------------------------------------------------------------------------
// 4. Tolerated damage: torn WAL tails, corrupt checkpoints
// ---------------------------------------------------------------------------

/// The active WAL segment (highest first-sequence-number `wal-*.log` file).
fn active_segment(dir: &PathBuf) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("dir readable")
        .filter_map(|e| {
            let path = e.expect("entry").path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("wal-") && name.ends_with(".log")).then(|| path.clone())
        })
        .collect();
    segments.sort();
    segments.pop().expect("a WAL segment exists")
}

#[test]
fn torn_wal_tails_lose_only_the_torn_record() {
    let _guard = serial();
    let shards = configured_shards();
    let pattern = cycle_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0x7042_7041);
    let batches = gen_stream(&mut rng, &initial, 6, 5);
    let options = opts(shards, 0);

    // Damage shapes applied to the active segment after a clean close.
    type Mutilate = fn(Vec<u8>) -> Vec<u8>;
    let cases: &[(&str, bool, Mutilate)] = &[
        // (description, last record lost?, mutation)
        ("garbage appended", false, |mut b| {
            b.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
            b
        }),
        ("cut mid-record", true, |b| {
            let keep = b.len() - 3;
            b[..keep].to_vec()
        }),
        ("tail bit-rot", true, |mut b| {
            let n = b.len();
            b[n - 1] ^= 0x20;
            b
        }),
    ];

    for (what, loses_last, mutilate) in cases {
        let scratch = Scratch::new("torn");
        {
            let mut index: DurableIndex<SimulationIndex> =
                DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                    .expect("open");
            for batch in &batches {
                index.apply(batch).expect("apply");
            }
        }
        let segment = active_segment(scratch.path());
        let bytes = std::fs::read(&segment).expect("segment readable");
        std::fs::write(&segment, mutilate(bytes)).expect("segment writable");

        let mut index: DurableIndex<SimulationIndex> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                .unwrap_or_else(|e| panic!("{what}: reopen failed: {e}"));
        let expected_seq = batches.len() as u64 - u64::from(*loses_last);
        assert_eq!(index.sequence(), expected_seq, "{what}: wrong surviving prefix");
        if *loses_last {
            // Re-submitting the lost batch converges on the full stream.
            index.apply(batches.last().expect("nonempty")).expect("re-apply");
        }
        let (ref_graph, ref_engine) =
            reference_run::<SimulationIndex>(&pattern, &initial, &batches, shards);
        assert!(index.graph().identical_to(&ref_graph), "{what}: graph diverged");
        assert_eq!(index.engine().aux(), ref_engine.aux(), "{what}: aux diverged");
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_and_replays_further() {
    let _guard = serial();
    let shards = configured_shards();
    let pattern = cycle_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0xC0D_FA11);
    let batches = gen_stream(&mut rng, &initial, 9, 5);
    let options = opts(shards, 0);

    let scratch = Scratch::new("ckpt-fallback");
    {
        let mut index: DurableIndex<SimulationIndex> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                .expect("open");
        for (i, batch) in batches.iter().enumerate() {
            index.apply(batch).expect("apply");
            if i == 2 || i == 5 {
                index.checkpoint().expect("checkpoint");
            }
        }
    }

    let checkpoints: Vec<PathBuf> = {
        let mut found: Vec<PathBuf> = std::fs::read_dir(scratch.path())
            .expect("dir readable")
            .filter_map(|e| {
                let path = e.expect("entry").path();
                let name = path.file_name()?.to_str()?;
                (name.starts_with("ckpt-") && name.ends_with(".bin")).then(|| path.clone())
            })
            .collect();
        found.sort();
        found
    };
    assert_eq!(checkpoints.len(), 2, "keep_checkpoints=2 retains exactly two");

    // Corrupt the newest (covers seq 6): recovery falls back to seq 3 and
    // replays a longer WAL tail — the retention rule kept those segments.
    let newest = checkpoints.last().expect("two checkpoints");
    let mut bytes = std::fs::read(newest).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(newest, &bytes).expect("writable");

    let index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
            .expect("fallback reopen");
    assert_eq!(index.sequence(), batches.len() as u64, "full stream must survive");
    assert_eq!(index.last_checkpoint_seq(), 3, "must have fallen back to the older checkpoint");
    let (ref_graph, ref_engine) =
        reference_run::<SimulationIndex>(&pattern, &initial, &batches, shards);
    assert!(index.graph().identical_to(&ref_graph), "fallback graph diverged");
    assert_eq!(index.engine().aux(), ref_engine.aux(), "fallback aux diverged");
    drop(index);

    // Corrupt the older one too: every checkpoint bad is a typed error —
    // never a panic, never a silent from-scratch restart.
    let oldest = checkpoints.first().expect("two checkpoints");
    let mut bytes = std::fs::read(oldest).expect("readable");
    bytes[8] ^= 0x01;
    std::fs::write(oldest, &bytes).expect("writable");
    let attempt =
        DurableIndex::<SimulationIndex>::open(scratch.path().clone(), &pattern, &initial, options);
    assert!(
        matches!(attempt, Err(DurableError::Snapshot(_))),
        "expected a Snapshot error, got {:?}",
        attempt.err().map(|e| e.to_string())
    );
}

#[test]
fn wal_without_checkpoint_is_refused() {
    let _guard = serial();
    let scratch = Scratch::new("no-ckpt");
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(scratch.path().join("wal-00000000000000000001.log"), b"orphaned")
        .expect("write");
    let attempt = DurableIndex::<SimulationIndex>::open(
        scratch.path().clone(),
        &cycle_pattern(),
        &seed_world(8),
        opts(1, 0),
    );
    assert!(
        matches!(attempt, Err(DurableError::NoCheckpoint)),
        "a log without a checkpoint must be refused, got {:?}",
        attempt.err().map(|e| e.to_string())
    );
}

// ---------------------------------------------------------------------------
// 5. Fsync policies change the loss window, not the state
// ---------------------------------------------------------------------------

#[test]
fn fsync_policies_produce_identical_durable_state() {
    let _guard = serial();
    let shards = configured_shards();
    let pattern = cycle_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0xF5F5_F5F5);
    let batches = gen_stream(&mut rng, &initial, 12, 6);

    let mut aux: Vec<SimAuxSnapshot> = Vec::new();
    let mut seqs = Vec::new();
    for policy in [FsyncPolicy::Always, FsyncPolicy::EveryN(4), FsyncPolicy::Never] {
        let scratch = Scratch::new("fsync");
        let options = DurableOptions {
            fsync: policy,
            checkpoint_every: 5,
            keep_checkpoints: 2,
            shards,
            delta_buffer: 1024,
        };
        {
            let mut index: DurableIndex<SimulationIndex> =
                DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
                    .expect("open");
            for batch in &batches {
                index.apply(batch).expect("apply");
            }
        }
        // A process exit without an OS crash loses nothing under any policy.
        let index: DurableIndex<SimulationIndex> =
            DurableIndex::open(scratch.path().clone(), &pattern, &initial, options)
                .expect("reopen");
        seqs.push(index.sequence());
        aux.push(index.engine().aux());
    }
    assert!(seqs.iter().all(|&s| s == batches.len() as u64), "a policy lost batches: {seqs:?}");
    assert!(aux.windows(2).all(|w| w[0] == w[1]), "policies diverged in recovered state");
}

// ---------------------------------------------------------------------------
// 6. The logged-but-not-applied gap: engine crash after the append
// ---------------------------------------------------------------------------

#[test]
fn contained_engine_panic_after_logging_reconciles_from_disk() {
    let _guard = serial();
    let shards = configured_shards();
    let pattern = cycle_pattern();
    let initial = seed_world(24);
    let mut rng = Rng(0x106D_106D);
    let batches = gen_stream(&mut rng, &initial, 5, 5);
    let options = opts(shards, 0);

    let scratch = Scratch::new("logged-gap");
    let mut index: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, options.clone())
            .expect("open");
    for batch in &batches[..4] {
        index.apply(batch).expect("apply");
    }

    // Arm an *engine* site: the WAL append succeeds, then the in-memory
    // apply dies with a contained panic. The log is now ahead of memory.
    let error = with_armed(fail::SIM_ABSORB, || index.apply(&batches[4]))
        .expect_err("armed engine site must abort the apply");
    assert!(matches!(error, DurableError::Apply(ApplyError::StagePanicked(_))), "got {error}");
    assert_eq!(index.sequence(), 5, "the batch is logged despite the engine abort");
    assert!(index.poisoned(), "memory lags the log: the index must refuse further use");
    assert!(matches!(index.try_matches(), Err(ApplyError::Poisoned)));
    assert!(matches!(index.apply(&batches[4]), Err(DurableError::Apply(ApplyError::Poisoned))));

    // recover() = in-place disk recovery: logged means committed, so after
    // reconciliation the batch IS applied — bit-identical to the reference.
    index.recover().expect("recover");
    let (mut ref_graph, mut ref_engine) =
        reference_run::<SimulationIndex>(&pattern, &initial, &batches, shards);
    assert_bit_identical(
        "logged-gap",
        &mut index,
        &mut ref_graph,
        &mut ref_engine,
        &mut rng,
        shards,
    );
}

// ---------------------------------------------------------------------------
// Degenerate configuration: typed rejection at open
// ---------------------------------------------------------------------------

/// Each degenerate knob is refused at `open` with a typed
/// [`DurableError::InvalidOptions`] naming the field, before anything is
/// created on disk — no half-initialised directory, no silent clamp.
#[test]
fn degenerate_durable_options_are_rejected_at_open() {
    let pattern = cycle_pattern();
    let initial = seed_world(8);

    type Degrade = fn(&mut DurableOptions);
    let cases: [(&str, Degrade, &str); 3] = [
        (
            "delta_buffer",
            |o| o.delta_buffer = 0,
            "the delta ring must be able to buffer at least one batch",
        ),
        (
            "keep_checkpoints",
            |o| o.keep_checkpoints = 0,
            "at least one checkpoint must be retained",
        ),
        ("shards", |o| o.shards = 0, "builds and batches need at least one shard"),
    ];

    for (field, degrade, requirement) in cases {
        let mut options = opts(1, 0);
        degrade(&mut options);

        // `validate` is also callable directly, ahead of any I/O.
        let invalid = options.validate().expect_err("degenerate options must not validate");
        assert_eq!(invalid.field, field);
        assert_eq!(invalid.value, 0);
        assert_eq!(invalid.requirement, requirement);
        assert_eq!(format!("{invalid}"), format!("{field} = 0 is invalid: {requirement}"));

        let scratch = Scratch::new("degenerate");
        let result = DurableIndex::<SimulationIndex>::open(
            scratch.path().clone(),
            &pattern,
            &initial,
            options.clone(),
        );
        match result {
            Err(DurableError::InvalidOptions(inv)) => {
                assert_eq!(inv.field, field, "rejection must name the offending field");
                assert_eq!(inv.value, 0);
                let shown = format!("{}", DurableError::InvalidOptions(inv));
                assert_eq!(
                    shown,
                    format!("invalid durable options: {field} = 0 is invalid: {requirement}")
                );
            }
            Ok(_) => panic!("{field} = 0 must be rejected at open"),
            Err(other) => panic!("{field} = 0: expected InvalidOptions, got {other}"),
        }
        assert!(
            !scratch.path().exists(),
            "{field} = 0: rejection must happen before the directory is created"
        );

        // The service front-end shares the gate.
        let svc_scratch = Scratch::new("degenerate-svc");
        let svc = DurableMatchService::<SimulationIndex>::open(
            svc_scratch.path().clone(),
            std::slice::from_ref(&pattern),
            &initial,
            options,
        );
        assert!(
            matches!(svc, Err(DurableError::InvalidOptions(ref inv)) if inv.field == field),
            "{field} = 0 must be rejected by DurableMatchService::open too"
        );
        assert!(!svc_scratch.path().exists());
    }
}

/// `checkpoint_every = 0` is *not* degenerate: it disables automatic
/// checkpointing (the WAL grows until an explicit `checkpoint()`), which
/// every failpoint test in this suite relies on. Pin that it opens, never
/// auto-checkpoints, and still honours the manual call.
#[test]
fn checkpoint_every_zero_only_disables_automatic_checkpoints() {
    let pattern = cycle_pattern();
    let initial = seed_world(10);
    let mut rng = Rng(0xCE00);
    let scratch = Scratch::new("ckpt-zero");
    let mut durable: DurableIndex<SimulationIndex> =
        DurableIndex::open(scratch.path().clone(), &pattern, &initial, opts(1, 0)).expect("open");
    for i in 0..4u64 {
        let batch = gen_batch(&mut rng, durable.graph(), 4);
        durable.apply(&batch).unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        assert_eq!(durable.sequence(), i + 1);
        assert_eq!(
            durable.last_checkpoint_seq(),
            0,
            "checkpoint_every = 0 must never auto-checkpoint (batch {i})"
        );
    }
    assert_eq!(durable.checkpoint().expect("manual checkpoint"), 4);
    assert_eq!(durable.last_checkpoint_seq(), 4);
}
