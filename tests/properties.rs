//! Property-based tests (proptest) for the core invariants claimed by the
//! paper: uniqueness/maximality of the match (Prop. 2.1), monotonicity under
//! insertions and deletions, correctness of the landmark distance queries, and
//! the behaviour of `minDelta`-style reduction.

use igpm::prelude::*;
use proptest::prelude::*;

/// Strategy: a random labelled digraph with `n` nodes over a 4-letter label
/// alphabet and a set of edges given as index pairs.
fn graph_strategy(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = DataGraph> {
    (3..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_edges);
        let labels = proptest::collection::vec(0u8..4, n);
        (Just(n), labels, edges).prop_map(|(n, labels, edges)| {
            let mut g = DataGraph::new();
            for label in labels.iter().take(n) {
                g.add_labeled_node(format!("l{label}"));
            }
            for (a, b) in edges {
                if a != b {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32));
                }
            }
            g
        })
    })
}

/// Strategy: a small normal pattern over the same label alphabet.
fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (2usize..5, proptest::collection::vec(0u8..4, 4), proptest::collection::vec((0usize..4, 0usize..4), 1..6))
        .prop_map(|(n, labels, edges)| {
            let mut p = Pattern::new();
            for label in labels.iter().take(n) {
                p.add_labeled_node(format!("l{label}"));
            }
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                if a == b {
                    continue;
                }
                let (a, b) = (PatternNodeId::from_index(a), PatternNodeId::from_index(b));
                if p.edge_bound(a, b).is_none() {
                    p.add_normal_edge(a, b);
                }
            }
            p
        })
}

/// Checks that a relation is a valid simulation (soundness).
fn is_valid_simulation(pattern: &Pattern, graph: &DataGraph, relation: &MatchRelation) -> bool {
    relation.pairs().all(|(u, v)| {
        pattern.predicate(u).satisfied_by(graph.attrs(v))
            && pattern.children(u).iter().all(|&(u2, _)| {
                graph.children(v).iter().any(|w| relation.contains(u2, *w))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_is_sound_and_maximal(graph in graph_strategy(20, 60), pattern in pattern_strategy()) {
        let relation = igpm::core::match_simulation(&pattern, &graph);
        // Soundness: the returned relation is a simulation.
        prop_assert!(is_valid_simulation(&pattern, &graph, &relation));
        // Maximality via bounded simulation agreement (independent implementation).
        let bsim = igpm::core::match_bounded_with_matrix(&pattern, &graph);
        prop_assert_eq!(relation, bsim);
    }

    #[test]
    fn insertions_only_grow_and_deletions_only_shrink(
        graph in graph_strategy(18, 50),
        pattern in pattern_strategy(),
        extra in proptest::collection::vec((0usize..18, 0usize..18), 1..10),
    ) {
        let n = graph.node_count();
        let before = igpm::core::match_simulation(&pattern, &graph);

        // Apply insertions: the maximum simulation can only grow.
        let mut grown = graph.clone();
        for &(a, b) in &extra {
            let (a, b) = (a % n, b % n);
            if a != b {
                grown.add_edge(NodeId(a as u32), NodeId(b as u32));
            }
        }
        let after_insert = igpm::core::match_simulation(&pattern, &grown);
        prop_assert!(before.is_subset_of(&after_insert) || before.is_empty());

        // Apply deletions: the maximum simulation can only shrink.
        let mut shrunk = graph.clone();
        let edges: Vec<(NodeId, NodeId)> = shrunk.edges().take(5).collect();
        for (a, b) in edges {
            shrunk.remove_edge(a, b);
        }
        let after_delete = igpm::core::match_simulation(&pattern, &shrunk);
        prop_assert!(after_delete.is_subset_of(&before) || after_delete.is_empty());
    }

    #[test]
    fn incremental_simulation_agrees_with_batch(
        graph in graph_strategy(16, 40),
        pattern in pattern_strategy(),
        updates in proptest::collection::vec((proptest::bool::ANY, 0usize..16, 0usize..16), 1..12),
    ) {
        let n = graph.node_count();
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        for (insert, a, b) in updates {
            let (a, b) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if a == b {
                continue;
            }
            if insert {
                index.insert_edge(&mut g, a, b);
            } else {
                index.delete_edge(&mut g, a, b);
            }
        }
        prop_assert_eq!(index.matches(), igpm::core::match_simulation(&pattern, &g));
    }

    #[test]
    fn landmark_queries_equal_bfs_distances(graph in graph_strategy(16, 50)) {
        let index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let matrix = DistanceMatrix::build(&graph);
        for a in graph.nodes() {
            for b in graph.nodes() {
                prop_assert_eq!(index.distance(a, b), matrix.distance(a, b));
            }
        }
    }

    #[test]
    fn two_hop_labels_equal_bfs_distances(graph in graph_strategy(16, 50)) {
        let labels = TwoHopLabels::build(&graph);
        let matrix = DistanceMatrix::build(&graph);
        for a in graph.nodes() {
            for b in graph.nodes() {
                prop_assert_eq!(labels.distance(a, b), matrix.distance(a, b));
            }
        }
    }

    #[test]
    fn graph_serde_round_trip(graph in graph_strategy(12, 30)) {
        let json = igpm::graph::io::graph_to_json(&graph).unwrap();
        let back = igpm::graph::io::graph_from_json(&json).unwrap();
        prop_assert_eq!(&graph, &back);
        let snapshot = igpm::graph::io::graph_to_snapshot(&graph).unwrap();
        let back2 = igpm::graph::io::graph_from_snapshot(snapshot).unwrap();
        prop_assert_eq!(&graph, &back2);
    }

    #[test]
    fn batch_inverse_round_trips_the_match(
        graph in graph_strategy(14, 40),
        pattern in pattern_strategy(),
        updates in proptest::collection::vec((proptest::bool::ANY, 0usize..14, 0usize..14), 1..8),
    ) {
        let n = graph.node_count();
        let mut batch = BatchUpdate::new();
        for (insert, a, b) in updates {
            let (a, b) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if a == b {
                continue;
            }
            if insert {
                batch.insert(a, b);
            } else {
                batch.delete(a, b);
            }
        }
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        let original = index.matches();
        // Record which updates actually change the graph so the inverse batch
        // undoes exactly those.
        let mut effective = BatchUpdate::new();
        for update in batch.iter() {
            if update.is_effective(&g) {
                effective.push(*update);
            }
        }
        index.apply_batch(&mut g, &effective);
        index.apply_batch(&mut g, &effective.inverse());
        prop_assert_eq!(&g, &graph);
        prop_assert_eq!(index.matches(), original);
    }
}
