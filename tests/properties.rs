//! Property-style randomized tests for the core invariants claimed by the
//! paper: uniqueness/maximality of the match (Prop. 2.1), monotonicity under
//! insertions and deletions, correctness of the landmark distance queries, and
//! the behaviour of `minDelta`-style reduction.
//!
//! The cases are driven by the workspace's seeded PRNG instead of `proptest`
//! (unavailable offline); every case is reproducible from its printed seed.

use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A random labelled digraph with up to `max_nodes` nodes over a 4-letter
/// label alphabet.
fn random_graph(rng: &mut StdRng, max_nodes: usize, max_edges: usize) -> DataGraph {
    let n = rng.gen_range(3..max_nodes);
    let mut g = DataGraph::new();
    for _ in 0..n {
        let label = rng.gen_range(0..4u32);
        g.add_labeled_node(format!("l{label}"));
    }
    for _ in 0..rng.gen_range(0..max_edges) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// A small random normal pattern over the same label alphabet.
fn random_pattern(rng: &mut StdRng) -> Pattern {
    let n = rng.gen_range(2..5usize);
    let mut p = Pattern::new();
    for _ in 0..n {
        let label = rng.gen_range(0..4u32);
        p.add_labeled_node(format!("l{label}"));
    }
    for _ in 0..rng.gen_range(1..6usize) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (a, b) = (PatternNodeId::from_index(a), PatternNodeId::from_index(b));
        if p.edge_bound(a, b).is_none() {
            p.add_normal_edge(a, b);
        }
    }
    p
}

/// Checks that a relation is a valid simulation (soundness).
fn is_valid_simulation(pattern: &Pattern, graph: &DataGraph, relation: &MatchRelation) -> bool {
    relation.pairs().all(|(u, v)| {
        pattern.predicate(u).satisfied_by(graph.attrs(v))
            && pattern
                .children(u)
                .iter()
                .all(|&(u2, _)| graph.children(v).iter().any(|w| relation.contains(u2, *w)))
    })
}

#[test]
fn simulation_is_sound_and_maximal() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5050 + case);
        let graph = random_graph(&mut rng, 20, 60);
        let pattern = random_pattern(&mut rng);
        let relation = igpm::core::match_simulation(&pattern, &graph);
        // Soundness: the returned relation is a simulation.
        assert!(is_valid_simulation(&pattern, &graph, &relation), "case {case}: unsound");
        // Maximality via bounded simulation agreement (independent implementation).
        let bsim = igpm::core::match_bounded_with_matrix(&pattern, &graph);
        assert_eq!(relation, bsim, "case {case}: not maximal");
    }
}

#[test]
fn insertions_only_grow_and_deletions_only_shrink() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6060 + case);
        let graph = random_graph(&mut rng, 18, 50);
        let pattern = random_pattern(&mut rng);
        let n = graph.node_count();
        let before = igpm::core::match_simulation(&pattern, &graph);

        // Apply insertions: the maximum simulation can only grow.
        let mut grown = graph.clone();
        for _ in 0..rng.gen_range(1..10usize) {
            let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if a != b {
                grown.add_edge(NodeId(a as u32), NodeId(b as u32));
            }
        }
        let after_insert = igpm::core::match_simulation(&pattern, &grown);
        assert!(
            before.is_subset_of(&after_insert) || before.is_empty(),
            "case {case}: insertion shrank the match"
        );

        // Apply deletions: the maximum simulation can only shrink.
        let mut shrunk = graph.clone();
        let edges: Vec<(NodeId, NodeId)> = shrunk.edges().take(5).collect();
        for (a, b) in edges {
            shrunk.remove_edge(a, b);
        }
        let after_delete = igpm::core::match_simulation(&pattern, &shrunk);
        assert!(
            after_delete.is_subset_of(&before) || after_delete.is_empty(),
            "case {case}: deletion grew the match"
        );
    }
}

#[test]
fn incremental_simulation_agrees_with_batch() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7070 + case);
        let graph = random_graph(&mut rng, 16, 40);
        let pattern = random_pattern(&mut rng);
        let n = graph.node_count();
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        for _ in 0..rng.gen_range(1..12usize) {
            let (a, b) = (NodeId(rng.gen_range(0..n) as u32), NodeId(rng.gen_range(0..n) as u32));
            if a == b {
                continue;
            }
            if rng.gen_bool(0.5) {
                index.insert_edge(&mut g, a, b);
            } else {
                index.delete_edge(&mut g, a, b);
            }
        }
        assert_eq!(index.matches(), igpm::core::match_simulation(&pattern, &g), "case {case}");
    }
}

#[test]
fn landmark_queries_equal_bfs_distances() {
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0x8080 + case);
        let graph = random_graph(&mut rng, 16, 50);
        let index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let matrix = DistanceMatrix::build(&graph);
        for a in graph.nodes() {
            for b in graph.nodes() {
                assert_eq!(index.distance(a, b), matrix.distance(a, b), "case {case}: ({a}, {b})");
            }
        }
    }
}

#[test]
fn two_hop_labels_equal_bfs_distances() {
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0x9090 + case);
        let graph = random_graph(&mut rng, 16, 50);
        let labels = TwoHopLabels::build(&graph);
        let matrix = DistanceMatrix::build(&graph);
        for a in graph.nodes() {
            for b in graph.nodes() {
                assert_eq!(labels.distance(a, b), matrix.distance(a, b), "case {case}: ({a}, {b})");
            }
        }
    }
}

#[test]
fn graph_persistence_round_trips() {
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xa0a0 + case);
        let graph = random_graph(&mut rng, 12, 30);
        let json = igpm::graph::io::graph_to_json(&graph).unwrap();
        let back = igpm::graph::io::graph_from_json(&json).unwrap();
        assert_eq!(graph, back, "case {case}: json");
        let snapshot = igpm::graph::io::graph_to_snapshot(&graph).unwrap();
        let back2 = igpm::graph::io::graph_from_snapshot(&snapshot).unwrap();
        assert_eq!(graph, back2, "case {case}: snapshot");
    }
}

#[test]
fn batch_inverse_round_trips_the_match() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0b0 + case);
        let graph = random_graph(&mut rng, 14, 40);
        let pattern = random_pattern(&mut rng);
        let n = graph.node_count();
        let mut batch = BatchUpdate::new();
        for _ in 0..rng.gen_range(1..8usize) {
            let (a, b) = (NodeId(rng.gen_range(0..n) as u32), NodeId(rng.gen_range(0..n) as u32));
            if a == b {
                continue;
            }
            if rng.gen_bool(0.5) {
                batch.insert(a, b);
            } else {
                batch.delete(a, b);
            }
        }
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        let original = index.matches();
        // Record which updates actually change the graph so the inverse batch
        // undoes exactly those.
        let mut effective = BatchUpdate::new();
        for update in batch.iter() {
            if update.is_effective(&g) {
                effective.push(*update);
            }
        }
        index.apply_batch(&mut g, &effective);
        index.apply_batch(&mut g, &effective.inverse());
        assert_eq!(g, graph, "case {case}: graph not restored");
        assert_eq!(index.matches(), original, "case {case}: match not restored");
    }
}
