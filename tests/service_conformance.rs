//! Conformance suite for the multi-pattern [`MatchService`]: the **sharing
//! invariance** extension of the repo-wide shard invariant.
//!
//! The contract under test: for every shard count, every registered
//! pattern's per-batch [`ApplyOutcome`] (statistics *and* delta) and every
//! snapshot view is bit-identical to what `N` *independent* single-pattern
//! indexes — each owning its own graph copy and fed the very same update
//! stream — produce, and to a from-scratch recomputation at every
//! checkpoint. Sharing the classification, the graph mutation and (for
//! bounded simulation) the landmark maintenance must be a pure execution
//! strategy, never observable in results.
//!
//! Also covered here:
//! * deregistration mid-stream (outcome maps shrink, stale ids error, slot
//!   reuse mints fresh generations);
//! * mid-stream registration (built over the *current* graph, then lockstep
//!   with the rest — matches and deltas checked against from-scratch
//!   recomputation);
//! * one pattern poisoned by an injected pipeline panic while every other
//!   pattern keeps serving the same batch, and per-pattern recovery;
//! * the durable service: WAL-once logging, crash → reopen → bit-identical
//!   state, pattern-keyed replay re-emission, subscription lag.
//!
//! The failpoint registry is process-global, so the poison tests serialise
//! on one mutex and run with a muted panic hook (like `fault_injection.rs`).

use igpm::core::{
    match_simulation, ApplyError, BoundedIndex, DurableMatchService, DurableOptions, MatchService,
    PatternId, ServiceDeltaEvent, ServiceError, SimulationIndex,
};
use igpm::graph::fail;
use igpm::graph::wal::FsyncPolicy;
use igpm::graph::{BatchUpdate, DataGraph, EdgeBound, MatchRelation, Pattern, Predicate};
use igpm::prelude::{
    generate_pattern, match_bounded_with_matrix, mixed_batch, synthetic_graph, PatternGenConfig,
    PatternShape, SyntheticConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serialises the failpoint-armed tests: the registry is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with the default panic hook silenced (injected panics would
/// otherwise spray backtraces over the test output). Safe under `SERIAL`.
fn with_muted_hook<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(hook);
    result
}

/// Self-cleaning scratch directory for the durable-service tests.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("igpm-service-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_opts(shards: usize) -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Never, // test speed; crash coverage lives in durability.rs
        checkpoint_every: 0,
        keep_checkpoints: 2,
        shards,
        delta_buffer: 1024,
    }
}

/// A pool of ≥8 deliberately *overlapping* normal patterns over the
/// generator's label alphabet: generated patterns (shared predicates with
/// high probability) plus handcrafted ones that repeat the same labels, so
/// the candidate interner has real sharing to exploit.
fn normal_pattern_pool(graph: &DataGraph, count: usize, seed: u64) -> Vec<Pattern> {
    let mut pool = Vec::with_capacity(count);
    for i in 0..count {
        let shape = if i % 2 == 0 { PatternShape::General } else { PatternShape::Dag };
        let nodes = 2 + (i % 4);
        let edges = nodes + (i % 3);
        pool.push(generate_pattern(
            graph,
            &PatternGenConfig::normal(nodes, edges, 1, seed.wrapping_add(i as u64))
                .with_shape(shape),
        ));
    }
    pool
}

/// Bounded patterns over the `l0..l3` labels with mixed hop bounds.
fn bounded_pattern_pool() -> Vec<Pattern> {
    let mut pool = Vec::new();
    for (bound_ab, bound_ba) in [
        (EdgeBound::Hops(1), EdgeBound::Hops(2)),
        (EdgeBound::Hops(2), EdgeBound::Unbounded),
        (EdgeBound::Hops(3), EdgeBound::Hops(1)),
        (EdgeBound::Unbounded, EdgeBound::Hops(2)),
    ] {
        for (la, lb) in [("l0", "l1"), ("l1", "l2"), ("l2", "l0"), ("l0", "l3")] {
            let mut p = Pattern::new();
            let a = p.add_node(Predicate::label(la));
            let b = p.add_node(Predicate::label(lb));
            p.add_edge(a, b, bound_ab);
            p.add_edge(b, a, bound_ba);
            pool.push(p);
        }
    }
    pool.truncate(8);
    pool
}

/// Asserts one pattern's service outcome equals the independent engine's,
/// bit for bit.
#[track_caller]
fn assert_outcome_eq(
    service: &igpm::core::ApplyOutcome,
    solo: &igpm::core::ApplyOutcome,
    context: &str,
) {
    assert_eq!(service.stats, solo.stats, "stats diverged: {context}");
    assert_eq!(service.delta, solo.delta, "delta diverged: {context}");
}

/// The tentpole invariant, plain simulation: a service with ≥8 overlapping
/// patterns, a 1k+-update seeded stream, shard counts {1, 2, 3, 8} — every
/// per-pattern outcome bit-identical to N independent indexes, every view
/// bit-identical to a from-scratch recomputation, and the whole outcome
/// stream identical across shard counts.
#[test]
fn sim_service_is_bit_identical_to_independent_indexes() {
    let base = synthetic_graph(&SyntheticConfig::new(260, 950, 4, 0x9101));
    let patterns = normal_pattern_pool(&base, 8, 0x9102);
    const ROUNDS: usize = 12;
    const BATCH: usize = 48; // 12 × (48 + 48) = 1152 updates per shard count

    let mut reference_stream: Option<Vec<Vec<igpm::core::ApplyOutcome>>> = None;
    for shards in [1usize, 2, 3, 8] {
        let mut svc: MatchService<SimulationIndex> =
            MatchService::with_shards(base.clone(), shards);
        let ids: Vec<PatternId> =
            patterns.iter().map(|p| svc.register(p).expect("register")).collect();
        assert!(
            svc.interned_candidate_sets() < patterns.iter().map(Pattern::node_count).sum(),
            "overlapping patterns must share interned candidate sets"
        );

        let mut solo_graphs: Vec<DataGraph> = patterns.iter().map(|_| base.clone()).collect();
        let mut solos: Vec<SimulationIndex> = patterns
            .iter()
            .zip(&solo_graphs)
            .map(|(p, g)| SimulationIndex::build_with_shards(p, g, shards))
            .collect();

        let mut outcome_stream: Vec<Vec<igpm::core::ApplyOutcome>> = Vec::new();
        for round in 0..ROUNDS {
            let batch = mixed_batch(svc.graph(), BATCH, BATCH, 0x9200 + round as u64);
            let apply = svc.apply(&batch).expect("service apply");
            let mut round_outcomes = Vec::with_capacity(ids.len());
            for (i, id) in ids.iter().enumerate() {
                let service_outcome = apply.outcomes[id].as_ref().expect("pattern outcome");
                let solo_outcome = solos[i]
                    .try_apply_batch_with_shards(&mut solo_graphs[i], &batch, shards)
                    .expect("solo apply");
                assert_outcome_eq(
                    service_outcome,
                    &solo_outcome,
                    &format!("shards {shards}, round {round}, pattern {i}"),
                );
                round_outcomes.push(service_outcome.clone());
            }
            if round % 4 == 3 {
                for (i, id) in ids.iter().enumerate() {
                    let view = svc.matches(*id).expect("view");
                    assert_eq!(*view, solos[i].matches(), "view diverged (pattern {i})");
                    assert_eq!(
                        *view,
                        match_simulation(&patterns[i], svc.graph()),
                        "from-scratch recomputation diverged (shards {shards}, round {round}, pattern {i})"
                    );
                }
            }
            outcome_stream.push(round_outcomes);
        }
        match &reference_stream {
            None => reference_stream = Some(outcome_stream),
            Some(reference) => assert_eq!(
                *reference, outcome_stream,
                "outcome stream diverged between shard counts (shards {shards})"
            ),
        }
    }
}

/// The tentpole invariant, bounded simulation: the shared landmark index
/// (`IncLM` once per batch for all patterns) must be invisible in results.
/// Independents build their own landmarks over the same registration graph;
/// `VertexCover` selection is deterministic, so the two landmark sets start
/// equal and evolve identically — outcomes must stay bit-identical, stats
/// included.
#[test]
fn bsim_service_is_bit_identical_to_independent_indexes() {
    let base = synthetic_graph(&SyntheticConfig::new(150, 520, 4, 0xB101));
    let patterns = bounded_pattern_pool();
    const ROUNDS: usize = 10;
    const BATCH: usize = 52; // 10 × (52 + 52) = 1040 updates per shard count

    let mut reference_stream: Option<Vec<Vec<igpm::core::ApplyOutcome>>> = None;
    for shards in [1usize, 2, 8] {
        let mut svc: MatchService<BoundedIndex> = MatchService::with_shards(base.clone(), shards);
        let ids: Vec<PatternId> =
            patterns.iter().map(|p| svc.register(p).expect("register")).collect();
        assert!(
            svc.interned_candidate_sets() <= 4,
            "8 two-node patterns over 4 labels must intern at most 4 candidate sets"
        );

        let mut solo_graphs: Vec<DataGraph> = patterns.iter().map(|_| base.clone()).collect();
        let mut solos: Vec<BoundedIndex> = patterns
            .iter()
            .zip(&solo_graphs)
            .map(|(p, g)| BoundedIndex::build_with_shards(p, g, shards))
            .collect();

        let mut outcome_stream: Vec<Vec<igpm::core::ApplyOutcome>> = Vec::new();
        for round in 0..ROUNDS {
            let batch = mixed_batch(svc.graph(), BATCH, BATCH, 0xB200 + round as u64);
            let apply = svc.apply(&batch).expect("service apply");
            let mut round_outcomes = Vec::with_capacity(ids.len());
            for (i, id) in ids.iter().enumerate() {
                let service_outcome = apply.outcomes[id].as_ref().expect("pattern outcome");
                let solo_outcome = solos[i]
                    .try_apply_batch_with_shards(&mut solo_graphs[i], &batch, shards)
                    .expect("solo apply");
                assert_outcome_eq(
                    service_outcome,
                    &solo_outcome,
                    &format!("shards {shards}, round {round}, pattern {i}"),
                );
                round_outcomes.push(service_outcome.clone());
            }
            if round % 5 == 4 {
                for (i, id) in ids.iter().enumerate() {
                    let view = svc.matches(*id).expect("view");
                    assert_eq!(*view, solos[i].matches(), "view diverged (pattern {i})");
                    assert_eq!(
                        *view,
                        match_bounded_with_matrix(&patterns[i], svc.graph()),
                        "batch recomputation diverged (shards {shards}, round {round}, pattern {i})"
                    );
                }
            }
            outcome_stream.push(round_outcomes);
        }
        match &reference_stream {
            None => reference_stream = Some(outcome_stream),
            Some(reference) => assert_eq!(
                *reference, outcome_stream,
                "outcome stream diverged between shard counts (shards {shards})"
            ),
        }
    }
}

/// Deregistration and mid-stream registration churn: outcome maps track the
/// live pattern set exactly, stale ids error (also after slot reuse), and a
/// pattern registered mid-stream over the current graph serves correct
/// matches from its first batch on.
#[test]
fn deregistration_and_midstream_registration_churn() {
    let base = synthetic_graph(&SyntheticConfig::new(180, 650, 4, 0xC101));
    let patterns = normal_pattern_pool(&base, 8, 0xC102);
    let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(base, 3);
    let mut ids: Vec<PatternId> =
        patterns.iter().map(|p| svc.register(p).expect("register")).collect();
    let mut live: Vec<(PatternId, Pattern)> =
        ids.iter().copied().zip(patterns.iter().cloned()).collect();

    for round in 0..10u64 {
        let batch = mixed_batch(svc.graph(), 40, 40, 0xC200 + round);
        let apply = svc.apply(&batch).expect("service apply");
        assert_eq!(
            apply.outcomes.keys().copied().collect::<Vec<_>>(),
            live.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            "outcome map must cover exactly the live patterns, in id order"
        );
        for (id, pattern) in &live {
            assert!(apply.outcomes[id].is_ok(), "round {round}: clean batch must apply");
            assert_eq!(
                *svc.matches(*id).expect("view"),
                match_simulation(pattern, svc.graph()),
                "round {round}: live pattern diverged"
            );
        }
        match round {
            2 => {
                // Drop the middle pattern; its id must go stale immediately.
                let (dead, _) = live.remove(3);
                svc.deregister(dead).expect("deregister");
                assert_eq!(
                    svc.matches(dead).unwrap_err(),
                    ServiceError::UnknownPattern(dead),
                    "stale id must be rejected"
                );
            }
            5 => {
                // Slot reuse: the freed slot is filled by a *new* pattern;
                // the old id must stay stale.
                let newcomer = generate_pattern(
                    svc.graph(),
                    &PatternGenConfig::normal(3, 4, 1, 0xC303).with_shape(PatternShape::Dag),
                );
                let new_id = svc.register(&newcomer).expect("register mid-stream");
                assert!(
                    !ids.contains(&new_id),
                    "slot reuse must mint a fresh generation, got {new_id}"
                );
                ids.push(new_id);
                // Registered over the current graph: correct immediately.
                assert_eq!(
                    *svc.matches(new_id).expect("view"),
                    match_simulation(&newcomer, svc.graph()),
                    "mid-stream registration must match the current graph"
                );
                let position = live.iter().position(|(id, _)| *id > new_id).unwrap_or(live.len());
                live.insert(position, (new_id, newcomer));
            }
            7 => {
                let (dead, _) = live.remove(0);
                svc.deregister(dead).expect("deregister");
            }
            _ => {}
        }
    }
    assert!(svc.pattern_count() >= 6, "churn bookkeeping went wrong");
}

/// Injected per-pattern pipeline panic: exactly one pattern poisons
/// (`arm_once` self-disarms after the first hit), the graph and every other
/// pattern commit the batch with bit-identical outcomes, and per-pattern
/// recovery restores the victim without touching the rest.
#[test]
fn poisoned_pattern_leaves_every_other_pattern_serving() {
    let _serial = serial();
    let base = synthetic_graph(&SyntheticConfig::new(160, 600, 4, 0xD101));
    let patterns = normal_pattern_pool(&base, 8, 0xD102);
    let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(base.clone(), 2);
    let ids: Vec<PatternId> = patterns.iter().map(|p| svc.register(p).expect("register")).collect();
    let mut solo_graphs: Vec<DataGraph> = patterns.iter().map(|_| base.clone()).collect();
    let mut solos: Vec<SimulationIndex> = patterns
        .iter()
        .zip(&solo_graphs)
        .map(|(p, g)| SimulationIndex::build_with_shards(p, g, 2))
        .collect();

    // A warm-up batch, then the poisoned one.
    let warmup = mixed_batch(svc.graph(), 30, 30, 0xD201);
    svc.apply(&warmup).expect("warm-up");
    for (i, solo) in solos.iter_mut().enumerate() {
        solo.try_apply_batch_with_shards(&mut solo_graphs[i], &warmup, 2).expect("solo warm-up");
    }

    let batch = mixed_batch(svc.graph(), 30, 30, 0xD202);
    let apply = with_muted_hook(|| {
        fail::arm_once(fail::SIM_ABSORB);
        svc.apply(&batch).expect("service-level apply survives a per-pattern panic")
    });
    assert!(!fail::armed(fail::SIM_ABSORB), "arm_once must self-disarm after firing");

    let mut poisoned: Vec<PatternId> = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let solo_outcome = solos[i]
            .try_apply_batch_with_shards(&mut solo_graphs[i], &batch, 2)
            .expect("solo apply");
        match &apply.outcomes[id] {
            Ok(outcome) => {
                assert_outcome_eq(outcome, &solo_outcome, &format!("surviving pattern {i}"));
                assert_eq!(*svc.matches(*id).expect("view"), solos[i].matches());
            }
            Err(ApplyError::StagePanicked(panic)) => {
                assert_eq!(panic.stage, "absorb");
                assert!(panic.poisoned, "service-mode containment always poisons");
                assert!(!panic.rolled_back, "the shared graph mutation stays committed");
                poisoned.push(*id);
            }
            Err(other) => panic!("unexpected outcome for pattern {i}: {other}"),
        }
    }
    assert_eq!(poisoned.len(), 1, "arm_once must poison exactly one pattern");
    let victim = poisoned[0];
    assert!(svc.poisoned(victim).expect("poisoned query"));
    assert!(matches!(svc.matches(victim), Err(ServiceError::Apply(ApplyError::Poisoned))));

    // Per-pattern recovery from the current (committed) graph.
    svc.recover(victim).expect("recover");
    let victim_idx = ids.iter().position(|id| *id == victim).expect("victim id");
    assert_eq!(
        *svc.matches(victim).expect("recovered view"),
        match_simulation(&patterns[victim_idx], svc.graph()),
        "recovery must land on the current graph's matches"
    );

    // The next batch is fully clean again for everyone.
    let after = mixed_batch(svc.graph(), 30, 30, 0xD203);
    let apply = svc.apply(&after).expect("post-recovery apply");
    assert!(apply.outcomes.values().all(Result::is_ok));
}

/// The acceptance-floor case: ≥256 registered patterns, bit-identical to 256
/// independent indexes for every shard count — statistics, deltas and views.
#[test]
fn service_with_256_patterns_matches_256_independent_indexes() {
    let base = synthetic_graph(&SyntheticConfig::new(130, 430, 4, 0xE101));
    let patterns = normal_pattern_pool(&base, 256, 0xE102);
    const ROUNDS: usize = 4;

    for shards in [1usize, 2, 3, 8] {
        let mut svc: MatchService<SimulationIndex> =
            MatchService::with_shards(base.clone(), shards);
        let ids: Vec<PatternId> =
            patterns.iter().map(|p| svc.register(p).expect("register")).collect();
        let total_nodes: usize = patterns.iter().map(Pattern::node_count).sum();
        assert!(
            svc.interned_candidate_sets() * 2 < total_nodes,
            "256 patterns over a small label alphabet must dedupe heavily \
             ({} sets for {total_nodes} pattern nodes)",
            svc.interned_candidate_sets()
        );

        let mut solo_graphs: Vec<DataGraph> = patterns.iter().map(|_| base.clone()).collect();
        let mut solos: Vec<SimulationIndex> = patterns
            .iter()
            .zip(&solo_graphs)
            .map(|(p, g)| SimulationIndex::build_with_shards(p, g, shards))
            .collect();

        for round in 0..ROUNDS {
            let batch = mixed_batch(svc.graph(), 24, 24, 0xE200 + round as u64);
            let apply = svc.apply(&batch).expect("service apply");
            assert_eq!(apply.outcomes.len(), 256);
            for (i, id) in ids.iter().enumerate() {
                let service_outcome = apply.outcomes[id].as_ref().expect("pattern outcome");
                let solo_outcome = solos[i]
                    .try_apply_batch_with_shards(&mut solo_graphs[i], &batch, shards)
                    .expect("solo apply");
                assert_outcome_eq(
                    service_outcome,
                    &solo_outcome,
                    &format!("shards {shards}, round {round}, pattern {i}"),
                );
            }
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                *svc.matches(*id).expect("view"),
                solos[i].matches(),
                "final view diverged (shards {shards}, pattern {i})"
            );
        }
    }
}

/// Durable service: batches logged once, pattern-keyed deltas published per
/// batch; a crash (armed WAL failpoint) followed by a reopen lands on state
/// bit-identical to the never-crashed run, and a fresh subscription replays
/// the whole pattern-keyed tail in order.
#[test]
fn durable_service_survives_crash_with_pattern_keyed_replay() {
    let _serial = serial();
    let base = synthetic_graph(&SyntheticConfig::new(120, 400, 4, 0xF101));
    let patterns = normal_pattern_pool(&base, 4, 0xF102);
    let scratch = Scratch::new("crash");

    // Reference: the never-crashed run over a plain in-memory service.
    let mut reference: MatchService<SimulationIndex> = MatchService::with_shards(base.clone(), 2);
    let ref_ids: Vec<PatternId> =
        patterns.iter().map(|p| reference.register(p).expect("register")).collect();

    let (mut durable, ids) = DurableMatchService::<SimulationIndex>::open(
        scratch.path(),
        &patterns,
        &base,
        durable_opts(2),
    )
    .expect("open");
    assert_eq!(ids, ref_ids, "dense registration must mint identical ids");

    let mut subscription = durable.subscribe();
    let mut batches: Vec<BatchUpdate> = Vec::new();
    for round in 0..3u64 {
        let batch = mixed_batch(durable.service().graph(), 25, 25, 0xF200 + round);
        durable.apply(&batch).expect("durable apply");
        reference.apply(&batch).expect("reference apply");
        batches.push(batch);
    }
    // The live subscription saw 3 batches × 4 patterns, in (seq, id) order.
    let mut live_events = Vec::new();
    while let Some(event) = subscription.poll() {
        live_events.push(event);
    }
    assert_eq!(live_events.len(), 12);
    assert!(live_events.iter().all(|e| matches!(e, ServiceDeltaEvent::Delta { .. })));

    // Crash in the WAL append of batch 4: logged state = 3 batches.
    let crash_batch = mixed_batch(durable.service().graph(), 25, 25, 0xF300);
    let crashed = with_muted_hook(|| {
        let _armed = fail::arm_scoped(fail::WAL_APPEND_BODY);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| durable.apply(&crash_batch)))
    });
    assert!(crashed.is_err(), "armed wal.append-body must crash the apply");
    drop(durable);

    // Reopen: replay brings every pattern to the reference state...
    let (reopened, ids2) = DurableMatchService::<SimulationIndex>::open(
        scratch.path(),
        &patterns,
        &base,
        durable_opts(2),
    )
    .expect("reopen");
    assert_eq!(ids2, ids);
    assert_eq!(reopened.sequence(), 3, "the torn batch 4 must not survive");
    for (id, ref_id) in ids2.iter().zip(&ref_ids) {
        assert_eq!(
            *reopened.try_matches(*id).expect("reopened view"),
            *reference.matches(*ref_id).expect("reference view"),
            "recovered state diverged from the never-crashed run"
        );
    }

    // ...and a from-scratch subscription replays the whole pattern-keyed
    // tail: seqs 1..=3, each with all 4 patterns in id order.
    let mut replayed = reopened.subscribe_from(1);
    let mut seen: Vec<(u64, PatternId)> = Vec::new();
    while let Some(event) = replayed.poll() {
        match event {
            ServiceDeltaEvent::Delta { pattern_id, seq, .. } => seen.push((seq, pattern_id)),
            ServiceDeltaEvent::Lagged { .. } => panic!("nothing was dropped"),
        }
    }
    let expected: Vec<(u64, PatternId)> =
        (1..=3u64).flat_map(|seq| ids2.iter().map(move |id| (seq, *id))).collect();
    assert_eq!(seen, expected, "replay re-emission must be pattern-keyed and in order");
}

/// Durable service, shared-stage panic after the WAL append: the log is
/// ahead of memory, the service refuses work, and `recover()` replays the
/// logged batch — the live subscription sees it exactly once, without
/// re-seeing anything already delivered.
#[test]
fn durable_service_recovers_shared_stage_panic_from_the_log() {
    let _serial = serial();
    let base = synthetic_graph(&SyntheticConfig::new(110, 360, 4, 0xF401));
    let patterns = normal_pattern_pool(&base, 3, 0xF402);
    let scratch = Scratch::new("shared-stage");
    let (mut durable, ids) = DurableMatchService::<SimulationIndex>::open(
        scratch.path(),
        &patterns,
        &base,
        durable_opts(1),
    )
    .expect("open");
    let mut subscription = durable.subscribe();

    let first = mixed_batch(durable.service().graph(), 20, 20, 0xF500);
    durable.apply(&first).expect("clean batch");
    let mut delivered = 0;
    while subscription.poll().is_some() {
        delivered += 1;
    }
    assert_eq!(delivered, ids.len());

    // SIM_MUTATE fires inside the *service-wide* shared mutation: the batch
    // is logged, the in-memory apply aborts, the graph is rolled back.
    let second = mixed_batch(durable.service().graph(), 20, 20, 0xF501);
    let outcome = with_muted_hook(|| {
        fail::arm_once(fail::SIM_MUTATE);
        durable.apply(&second)
    });
    assert!(
        matches!(outcome, Err(igpm::core::DurableError::Apply(ApplyError::StagePanicked(ref p))) if p.stage == "mutate" && p.rolled_back),
        "expected a contained shared-stage panic, got {outcome:?}"
    );
    assert!(durable.poisoned(), "the log is ahead of memory");
    assert!(durable.apply(&second).is_err(), "a dirty service must refuse work");

    // recover() replays the logged batch; ids are unchanged (no deregister
    // ever happened) and the subscription sees seq 2 exactly once.
    let remap = durable.recover().expect("recover");
    assert!(remap.iter().all(|(old, new)| old == new), "dense ids must survive recovery");
    assert_eq!(durable.sequence(), 2, "the logged batch is committed");
    let mut seqs: Vec<(u64, PatternId)> = Vec::new();
    while let Some(event) = subscription.poll() {
        match event {
            ServiceDeltaEvent::Delta { pattern_id, seq, .. } => seqs.push((seq, pattern_id)),
            ServiceDeltaEvent::Lagged { .. } => panic!("nothing was dropped"),
        }
    }
    let expected: Vec<(u64, PatternId)> = ids.iter().map(|id| (2u64, *id)).collect();
    assert_eq!(seqs, expected, "exactly the swallowed batch, exactly once");

    // The recovered state serves the batch's effects.
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            *durable.try_matches(*id).expect("recovered view"),
            match_simulation(&patterns[i], durable.service().graph()),
        );
    }
}

/// Bounded ring: a subscriber that falls behind observes one explicit lag
/// (counted in batches) and then a live stream again.
#[test]
fn durable_service_subscription_lags_explicitly() {
    let base = synthetic_graph(&SyntheticConfig::new(90, 280, 3, 0xF601));
    let patterns = normal_pattern_pool(&base, 2, 0xF602);
    let scratch = Scratch::new("lag");
    let mut opts = durable_opts(1);
    opts.delta_buffer = 2;
    let (mut durable, ids) =
        DurableMatchService::<SimulationIndex>::open(scratch.path(), &patterns, &base, opts)
            .expect("open");

    let mut subscription = durable.subscribe(); // next_seq = 1
    for round in 0..5u64 {
        let batch = mixed_batch(durable.service().graph(), 10, 10, 0xF700 + round);
        durable.apply(&batch).expect("apply");
    }
    // Ring capacity 2: seqs 1..=3 were dropped, 4 and 5 remain.
    match subscription.poll() {
        Some(ServiceDeltaEvent::Lagged { missed, resume_seq }) => {
            assert_eq!(missed, 3);
            assert_eq!(resume_seq, 4);
        }
        other => panic!("expected a lag marker, got {other:?}"),
    }
    let mut tail: Vec<(u64, PatternId)> = Vec::new();
    while let Some(event) = subscription.poll() {
        match event {
            ServiceDeltaEvent::Delta { pattern_id, seq, .. } => tail.push((seq, pattern_id)),
            ServiceDeltaEvent::Lagged { .. } => panic!("only one lag marker expected"),
        }
    }
    let expected: Vec<(u64, PatternId)> =
        (4..=5u64).flat_map(|seq| ids.iter().map(move |id| (seq, *id))).collect();
    assert_eq!(tail, expected);
}

/// The durable bounded-simulation service round-trips: open, apply, reopen,
/// views equal a batch recomputation (the landmark sharing must be invisible
/// through the durability boundary too).
#[test]
fn durable_bounded_service_round_trips() {
    let base = synthetic_graph(&SyntheticConfig::new(100, 340, 4, 0xF801));
    let patterns: Vec<Pattern> = bounded_pattern_pool().into_iter().take(3).collect();
    let scratch = Scratch::new("bounded");
    let (mut durable, ids) = DurableMatchService::<BoundedIndex>::open(
        scratch.path(),
        &patterns,
        &base,
        durable_opts(2),
    )
    .expect("open");
    for round in 0..3u64 {
        let batch = mixed_batch(durable.service().graph(), 15, 15, 0xF900 + round);
        durable.apply(&batch).expect("apply");
    }
    let views: Vec<MatchRelation> =
        ids.iter().map(|id| (*durable.try_matches(*id).expect("view")).clone()).collect();
    drop(durable);

    let (reopened, ids2) = DurableMatchService::<BoundedIndex>::open(
        scratch.path(),
        &patterns,
        &base,
        durable_opts(2),
    )
    .expect("reopen");
    for ((i, id), view) in ids2.iter().enumerate().zip(&views) {
        let _ = i;
        assert_eq!(*reopened.try_matches(*id).expect("reopened view"), *view);
    }
    for (i, id) in ids2.iter().enumerate() {
        assert_eq!(
            *reopened.try_matches(*id).expect("view"),
            match_bounded_with_matrix(&patterns[i], reopened.service().graph()),
            "bounded view diverged from batch recomputation"
        );
    }
}
