//! End-to-end reproductions of the worked examples in the paper, exercised
//! through the public (umbrella) API exactly as a downstream user would.

use igpm::prelude::*;

/// Example 2.2(3): dropping the edge that carries the only bounded path makes
/// the *entire* match empty, because bounded-simulation matches must be total.
#[test]
fn example_2_2_dropping_a_bridge_empties_the_match() {
    // A small analogue of P2/G2: CS -> Bio (2 hops), Bio -> Soc (2), CS -> Soc (3).
    let mut g = DataGraph::new();
    let db = g.add_labeled_node("CS");
    let gen = g.add_labeled_node("Bio");
    let eco = g.add_labeled_node("Bio");
    let soc = g.add_labeled_node("Soc");
    g.add_edge(db, gen);
    g.add_edge(gen, eco);
    g.add_edge(eco, soc);
    g.add_edge(gen, soc);

    let mut p = Pattern::new();
    let cs = p.add_labeled_node("CS");
    let bio = p.add_labeled_node("Bio");
    let s = p.add_labeled_node("Soc");
    p.add_edge(cs, bio, EdgeBound::Hops(2));
    p.add_edge(bio, s, EdgeBound::Hops(2));
    p.add_edge(cs, s, EdgeBound::Hops(3));

    let m = igpm::core::match_bounded_with_matrix(&p, &g);
    assert!(m.is_total());
    assert!(m.contains(cs, db));
    assert!(m.contains(bio, gen));
    assert!(m.contains(bio, eco));

    // Remove (CS, Gen): CS can no longer reach Soc within 3 hops, and the
    // unique maximum match collapses to the empty relation.
    let mut g2 = g.clone();
    g2.remove_edge(db, gen);
    let m2 = igpm::core::match_bounded_with_matrix(&p, &g2);
    assert!(m2.is_empty());
}

/// Proposition 2.1: the maximum match is unique and contains every other
/// match; here we check it contains the matches found by every oracle and by
/// the incremental engine after arbitrary updates.
#[test]
fn proposition_2_1_maximum_match_is_unique() {
    let graph = synthetic_graph(&SyntheticConfig::new(80, 240, 4, 21));
    let pattern = generate_pattern(&graph, &PatternGenConfig::new(4, 5, 2, 2, 22));
    let maximum = igpm::core::match_bounded_with_matrix(&pattern, &graph);
    let via_bfs = igpm::core::match_bounded_with_bfs(&pattern, &graph);
    assert_eq!(maximum, via_bfs);
    assert!(via_bfs.is_subset_of(&maximum) && maximum.is_subset_of(&via_bfs));
}

/// The Theorem 7.1(2) gadget: incremental subgraph isomorphism flips from zero
/// matches to a full tree after a single insertion (the reason it is
/// unbounded); our VF2 baseline reproduces the flip.
#[test]
fn theorem_7_1_tree_gadget() {
    // Pattern: a root with two chains of length 2 (a small version of P'').
    let mut p = Pattern::new();
    let root = p.add_labeled_node("a");
    let l1 = p.add_labeled_node("a");
    let l2 = p.add_labeled_node("a");
    let r1 = p.add_labeled_node("a");
    let r2 = p.add_labeled_node("a");
    p.add_normal_edge(root, l1);
    p.add_normal_edge(l1, l2);
    p.add_normal_edge(root, r1);
    p.add_normal_edge(r1, r2);

    // Graph: an isolated root plus two disjoint chains.
    let mut g = DataGraph::new();
    let a0 = g.add_labeled_node("a");
    let left: Vec<NodeId> = (0..2).map(|_| g.add_labeled_node("a")).collect();
    let right: Vec<NodeId> = (0..2).map(|_| g.add_labeled_node("a")).collect();
    g.add_edge(left[0], left[1]);
    g.add_edge(right[0], right[1]);

    assert_eq!(count_isomorphic_matches(&p, &g), 0);
    g.add_edge(a0, left[0]);
    assert_eq!(count_isomorphic_matches(&p, &g), 0, "one chain attached is still not enough");
    g.add_edge(a0, right[0]);
    assert!(count_isomorphic_matches(&p, &g) >= 1, "attaching both chains creates the embedding");
}

/// The summary table of Section 8: bounded simulation finds at least as many
/// community members as subgraph isomorphism on generated YouTube-like data,
/// typically far more.
#[test]
fn exp_1_bounded_simulation_finds_more_members_than_isomorphism() {
    let graph = youtube_like(&YouTubeConfig::scaled(0.02, 5));
    let mut more = 0usize;
    let mut total = 0usize;
    for seed in 0..6u64 {
        let pattern = generate_pattern(&graph, &PatternGenConfig::new(3, 3, 2, 3, 600 + seed));
        let bounded = igpm::core::match_bounded_with_bfs(&pattern, &graph);
        let iso_nodes = isomorphic_result_nodes(&pattern.as_normal(), &graph, 20_000);
        let bsim_nodes = bounded.matched_data_nodes();
        assert!(
            iso_nodes.len() <= bsim_nodes.len() || bsim_nodes.is_empty(),
            "isomorphism can never identify more members than bounded simulation"
        );
        total += 1;
        if bsim_nodes.len() > iso_nodes.len() {
            more += 1;
        }
    }
    assert!(more * 2 >= total, "bounded simulation should usually find strictly more members");
}

fn isomorphic_result_nodes(pattern: &Pattern, graph: &DataGraph, limit: usize) -> Vec<NodeId> {
    igpm::baseline::isomorphic_result_nodes(pattern, graph, limit)
}
