//! Integration tests spanning all crates: every algorithm that is supposed to
//! compute the same object (the maximum simulation / bounded simulation, the
//! same distances, the same incremental result) must agree on randomized
//! workloads produced by `igpm-generator`.

use igpm::prelude::*;
use igpm_generator::evolution_split;

fn small_graph(seed: u64) -> DataGraph {
    synthetic_graph(&SyntheticConfig::new(120, 400, 4, seed))
}

#[test]
fn bounded_simulation_is_oracle_independent() {
    for seed in 0..4u64 {
        let graph = small_graph(seed);
        let pattern = generate_pattern(&graph, &PatternGenConfig::new(4, 6, 2, 3, seed + 40));
        let a = igpm::core::match_bounded_with_matrix(&pattern, &graph);
        let b = igpm::core::match_bounded_with_bfs(&pattern, &graph);
        let c = igpm::core::match_bounded_with_two_hop(&pattern, &graph);
        let landmarks = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let d = igpm::core::match_bounded(&pattern, &graph, &landmarks);
        assert_eq!(a, b, "seed {seed}: BFS");
        assert_eq!(a, c, "seed {seed}: 2-hop");
        assert_eq!(a, d, "seed {seed}: landmarks");
    }
}

#[test]
fn simulation_equals_bounded_simulation_on_normal_patterns() {
    for seed in 0..4u64 {
        let graph = small_graph(seed + 100);
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(5, 7, 2, seed + 140));
        let sim = igpm::core::match_simulation(&pattern, &graph);
        let bsim = igpm::core::match_bounded_with_matrix(&pattern, &graph);
        assert_eq!(sim, bsim, "seed {seed}");
    }
}

#[test]
fn hornsat_equals_simulation() {
    for seed in 0..3u64 {
        let graph = small_graph(seed + 200);
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(4, 6, 1, seed + 240));
        let horn = HornSatSimulation::build(&pattern, &graph);
        assert_eq!(horn.matches(), igpm::core::match_simulation(&pattern, &graph), "seed {seed}");
    }
}

#[test]
fn isomorphic_embeddings_are_contained_in_the_simulation() {
    for seed in 0..3u64 {
        let graph = small_graph(seed + 300);
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(3, 3, 2, seed + 340));
        let sim = igpm::core::match_simulation(&pattern, &graph);
        for embedding in find_isomorphic_matches(&pattern, &graph, 500) {
            for (u_idx, &v) in embedding.iter().enumerate() {
                assert!(
                    sim.contains(PatternNodeId::from_index(u_idx), v),
                    "seed {seed}: isomorphism found a pair outside the simulation"
                );
            }
        }
    }
}

#[test]
fn incremental_simulation_tracks_batch_over_evolution() {
    let full = youtube_like(&YouTubeConfig::scaled(0.02, 9));
    let (mut graph, additions) = evolution_split(&full, 0.2, "age");
    let pattern = generate_pattern(&graph, &PatternGenConfig::normal(4, 5, 2, 901));
    let mut index = SimulationIndex::build(&pattern, &graph);
    let updates: Vec<Update> = additions.into_iter().collect();
    for chunk in updates.chunks(150) {
        let batch: BatchUpdate = chunk.iter().copied().collect();
        index.apply_batch(&mut graph, &batch);
        assert_eq!(index.matches(), igpm::core::match_simulation(&pattern, &graph));
    }
    assert_eq!(graph, full);
}

#[test]
fn incremental_bounded_simulation_tracks_batch_over_mixed_updates() {
    let mut graph = small_graph(777);
    let pattern = generate_pattern(&graph, &PatternGenConfig::new(4, 5, 2, 2, 778));
    let mut index = BoundedIndex::build(&pattern, &graph);
    for round in 0..4u64 {
        let batch = mixed_batch(&graph, 20, 20, 7000 + round);
        index.apply_batch(&mut graph, &batch);
        assert_eq!(
            index.matches(),
            igpm::core::match_bounded_with_matrix(&pattern, &graph),
            "round {round}"
        );
    }
}

#[test]
fn matrix_backed_and_landmark_backed_incremental_bsim_agree() {
    let base = small_graph(555);
    let pattern = generate_pattern(
        &base,
        &PatternGenConfig::new(4, 5, 2, 3, 556).with_shape(PatternShape::Dag),
    );
    let batch = mixed_batch(&base, 25, 25, 557);

    let mut g1 = base.clone();
    let mut with_matrix = MatrixBoundedIndex::build(&pattern, &g1);
    with_matrix.apply_batch(&mut g1, &batch);

    let mut g2 = base.clone();
    let mut with_landmarks = BoundedIndex::build(&pattern, &g2);
    with_landmarks.apply_batch(&mut g2, &batch);

    assert_eq!(g1, g2);
    assert_eq!(with_matrix.matches(), with_landmarks.matches());
}

#[test]
fn naive_and_min_delta_incremental_agree_on_citation_workload() {
    let full = citation_like(&CitationConfig::scaled(0.01, 31));
    let (base, additions) = evolution_split(&full, 0.3, "year");
    let pattern = generate_pattern(&base, &PatternGenConfig::normal(4, 5, 2, 32));
    let batch: BatchUpdate = additions;

    let mut g1 = base.clone();
    let mut naive = SimulationIndex::build(&pattern, &g1);
    igpm::baseline::apply_batch_naive(&mut naive, &mut g1, &batch);

    let mut g2 = base.clone();
    let mut smart = SimulationIndex::build(&pattern, &g2);
    smart.apply_batch(&mut g2, &batch);

    assert_eq!(naive.matches(), smart.matches());
    assert_eq!(naive.matches(), igpm::core::match_simulation(&pattern, &g1));
}

#[test]
fn landmark_maintenance_matches_rebuild_on_generated_workloads() {
    let mut graph = small_graph(808);
    let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
    let batch = mixed_batch(&graph, 30, 30, 809);
    igpm::distance::landmark_inc::inc_lm(&mut index, &mut graph, &batch);
    let rebuilt = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
    for a in graph.nodes().step_by(3) {
        for b in graph.nodes().step_by(5) {
            assert_eq!(index.distance(a, b), rebuilt.distance(a, b), "({a}, {b})");
        }
    }
}
