//! Failpoint-driven crash-consistency suite.
//!
//! For every failpoint site in the batch pipeline (`igpm::graph::fail`),
//! every shard count in {1, 4, 8} and both incremental engines, this suite
//! arms the site, applies a batch that is known to reach it, and asserts the
//! transactional contract of the containment layer:
//!
//! * the injected panic is caught and surfaced as
//!   [`ApplyError::StagePanicked`] — never an unwind through the caller;
//! * the **graph** is always rolled back to its pre-batch edge set
//!   (order-insensitive equality plus an edge-index consistency check — the
//!   rollback may reorder adjacency lists, which no matching result depends
//!   on);
//! * if the containment reports the index **usable** (`poisoned == false`),
//!   its auxiliary state is byte-identical to the pre-batch snapshot and
//!   re-applying the batch lands on exactly the state of an uninterrupted
//!   control replica;
//! * if it reports the index **poisoned**, reads and writes fail with
//!   [`ApplyError::Poisoned`] until `recover()` — whose result must be
//!   byte-identical to a fresh build from the (rolled-back) graph — after
//!   which the batch applies cleanly and agrees with the control replica.
//!
//! One sim case runs a ≥ `PARALLEL_WORK_THRESHOLD` batch on a large graph so
//! the injected panic lands between the two passes of the *threaded*
//! graph-mutation fan-out, proving the rollback repairs the deliberately
//! inconsistent cross-side state.
//!
//! The failpoint registry is process-global, so every test serialises on one
//! mutex and the injected panics are silenced with a no-op panic hook while
//! a site is armed.

use igpm::core::{BoundedIndex, SimulationIndex};
use igpm::graph::fail;
use igpm::graph::{ApplyError, BatchUpdate, DataGraph, NodeId, Pattern};
use std::sync::{Mutex, PoisonError};

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// Serialises the armed sections: the registry is process-global, and an
/// armed site would detonate inside any concurrently running test.
static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` with `site` armed and the default panic hook silenced (the
/// injected panics would otherwise spray backtraces over the test output).
/// The hook swap is safe under `SERIAL`.
fn with_armed<T>(site: &str, f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = {
        let _armed = fail::arm_scoped(site);
        f()
    };
    std::panic::set_hook(hook);
    result
}

/// Two directed rings with labels alternating `l0`/`l1`, ring A complete and
/// ring B missing one edge. Under a cyclic 2-node pattern every ring-A node
/// matches and every ring-B node is a mere candidate (the gap unravels the
/// cycle), so one batch can force demotions (break ring A) and promotions
/// via `propCC` (close ring B) at the same time.
struct World {
    graph: DataGraph,
    ring_a: Vec<NodeId>,
    ring_b: Vec<NodeId>,
}

fn two_ring_world(ring_len: usize) -> World {
    assert!(ring_len.is_multiple_of(2), "alternating labels need an even ring");
    let mut graph = DataGraph::new();
    let ring = |graph: &mut DataGraph, complete: bool| -> Vec<NodeId> {
        let nodes: Vec<NodeId> =
            (0..ring_len).map(|i| graph.add_labeled_node(format!("l{}", i % 2))).collect();
        let last = if complete { ring_len } else { ring_len - 1 };
        for i in 0..last {
            graph.add_edge(nodes[i], nodes[(i + 1) % ring_len]);
        }
        nodes
    };
    let ring_a = ring(&mut graph, true);
    let ring_b = ring(&mut graph, false);
    World { graph, ring_a, ring_b }
}

/// Cyclic normal pattern `l0 ⇄ l1` — both nodes sit in one nontrivial SCC,
/// so insertions into the rings engage the sharded `propCC` phase.
fn cycle_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    p.add_normal_edge(a, b);
    p.add_normal_edge(b, a);
    p
}

/// Bounded b-pattern `l0 -[1]-> l1 -[*]-> l0` — cyclic, so the promotion
/// phase always runs; the 1-hop bound makes ring-edge deletions demote.
fn bounded_cycle_pattern() -> Pattern {
    use igpm::graph::EdgeBound;
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    p.add_edge(a, b, EdgeBound::Hops(1));
    p.add_edge(b, a, EdgeBound::Unbounded);
    p
}

/// The crash batch: break ring A (demotions ripple around the whole ring)
/// and close ring B's gap (promotions, through `propCC` for the cyclic
/// pattern). Validation-clean by construction: it deletes a present edge and
/// inserts an absent one, each exactly once.
fn crash_batch(world: &World) -> BatchUpdate {
    let n = world.ring_a.len();
    let mut batch = BatchUpdate::new();
    batch.delete(world.ring_a[0], world.ring_a[1]);
    batch.insert(world.ring_b[n - 1], world.ring_b[0]);
    batch
}

/// Every site the plain-simulation batch pipeline reaches for `crash_batch`,
/// in pipeline order.
const SIM_SITES: [&str; 9] = [
    fail::SHARD_PLAN,
    fail::SIM_REDUCE,
    fail::SIM_MUTATE,
    fail::GRAPH_APPLY_SIDES,
    fail::GRAPH_REMOVE_EDGE,
    fail::GRAPH_ADD_EDGE,
    fail::SIM_ABSORB,
    fail::SIM_DEMOTE,
    fail::SIM_PROMOTE,
];

/// Every site the bounded-simulation batch pipeline reaches for
/// `crash_batch` (the graph mutates inside `IncLM`, so the unit-edge sites
/// fire there; `graph.apply-sides` is plain-engine-only).
const BSIM_SITES: [&str; 8] = [
    fail::SHARD_PLAN,
    fail::BSIM_REDUCE,
    fail::BSIM_LANDMARK,
    fail::GRAPH_REMOVE_EDGE,
    fail::GRAPH_ADD_EDGE,
    fail::BSIM_REFRESH,
    fail::BSIM_DEMOTE,
    fail::BSIM_PROMOTE,
];

/// Abstracts the two engines behind the handful of operations the contract
/// check needs, so one driver covers both.
trait Engine: Sized {
    type Aux: PartialEq + std::fmt::Debug;
    fn build(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self;
    fn aux(&self) -> Self::Aux;
    fn matches(&self) -> igpm::graph::MatchRelation;
    fn try_matches(&self) -> Result<igpm::graph::MatchRelation, ApplyError>;
    fn poisoned(&self) -> bool;
    fn try_apply(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<igpm::core::ApplyOutcome, ApplyError>;
    fn recover(&mut self, graph: &DataGraph, shards: usize);
}

impl Engine for SimulationIndex {
    type Aux = igpm::core::SimAuxSnapshot;
    fn build(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        SimulationIndex::build_with_shards(pattern, graph, shards)
    }
    fn aux(&self) -> Self::Aux {
        self.aux_snapshot()
    }
    fn matches(&self) -> igpm::graph::MatchRelation {
        SimulationIndex::matches(self)
    }
    fn try_matches(&self) -> Result<igpm::graph::MatchRelation, ApplyError> {
        SimulationIndex::try_matches(self)
    }
    fn poisoned(&self) -> bool {
        SimulationIndex::poisoned(self)
    }
    fn try_apply(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<igpm::core::ApplyOutcome, ApplyError> {
        self.try_apply_batch_with_shards(graph, batch, shards)
    }
    fn recover(&mut self, graph: &DataGraph, shards: usize) {
        self.recover_with_shards(graph, shards)
    }
}

impl Engine for BoundedIndex {
    type Aux = igpm::core::BsimAuxSnapshot;
    fn build(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        BoundedIndex::build_with_shards(pattern, graph, shards)
    }
    fn aux(&self) -> Self::Aux {
        self.aux_snapshot()
    }
    fn matches(&self) -> igpm::graph::MatchRelation {
        BoundedIndex::matches(self)
    }
    fn try_matches(&self) -> Result<igpm::graph::MatchRelation, ApplyError> {
        BoundedIndex::try_matches(self)
    }
    fn poisoned(&self) -> bool {
        BoundedIndex::poisoned(self)
    }
    fn try_apply(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<igpm::core::ApplyOutcome, ApplyError> {
        self.try_apply_batch_with_shards(graph, batch, shards)
    }
    fn recover(&mut self, graph: &DataGraph, shards: usize) {
        self.recover_with_shards(graph, shards)
    }
}

/// The full contract check for one (engine, site, shard count) cell.
fn check_site<E: Engine>(pattern: &Pattern, world: &World, site: &str, shards: usize) {
    let context = format!("site `{site}`, shards={shards}");
    let batch = crash_batch(world);

    // Control replica: the batch applied with no failpoint armed.
    let mut control_graph = world.graph.clone();
    let mut control = E::build(pattern, &control_graph, shards);
    let pre_aux = control.aux();
    let pre_matches = Engine::matches(&control);
    control
        .try_apply(&mut control_graph, &batch, shards)
        .unwrap_or_else(|e| panic!("{context}: control apply failed: {e}"));

    // Victim replica: the same batch with `site` armed.
    let mut graph = world.graph.clone();
    let mut index = E::build(pattern, &graph, shards);
    let error = with_armed(site, || index.try_apply(&mut graph, &batch, shards))
        .err()
        .unwrap_or_else(|| panic!("{context}: armed failpoint never fired"));
    let ApplyError::StagePanicked(panic_info) = &error else {
        panic!("{context}: expected StagePanicked, got {error}");
    };
    assert!(
        panic_info.message.contains("failpoint"),
        "{context}: foreign panic contained: {}",
        panic_info.message
    );
    assert!(panic_info.rolled_back, "{context}: graph must always be rolled back");

    // The graph is rolled back to the pre-batch edge set (adjacency order
    // may differ — no matching result depends on it) and stays internally
    // consistent.
    assert_eq!(graph, world.graph, "{context}: graph not rolled back");
    graph.assert_edge_index_consistent();

    if panic_info.poisoned {
        assert!(Engine::poisoned(&index), "{context}: flag disagrees with report");
        // Reads and writes refuse until recovery.
        assert!(
            matches!(Engine::try_matches(&index), Err(ApplyError::Poisoned)),
            "{context}: poisoned read must error"
        );
        assert!(
            matches!(index.try_apply(&mut graph, &batch, shards), Err(ApplyError::Poisoned)),
            "{context}: poisoned write must error"
        );
        // Recovery = fresh sharded build from the rolled-back graph,
        // bit-identical to building from scratch.
        index.recover(&graph, shards);
        let fresh = E::build(pattern, &graph, shards);
        assert_eq!(index.aux(), fresh.aux(), "{context}: recover() diverged from fresh build");
        assert_eq!(Engine::matches(&index), pre_matches, "{context}: recovered pre-batch match");
    } else {
        assert!(!Engine::poisoned(&index), "{context}: flag disagrees with report");
        // Usable: the auxiliary state must be exactly the pre-batch state.
        assert_eq!(index.aux(), pre_aux, "{context}: usable index has torn aux state");
        assert_eq!(Engine::matches(&index), pre_matches, "{context}: usable index, wrong match");
    }

    // Either way the batch now applies cleanly and lands on the control
    // replica's state (graphs compared order-insensitively: the rollback may
    // have reordered adjacency lists).
    index
        .try_apply(&mut graph, &batch, shards)
        .unwrap_or_else(|e| panic!("{context}: post-containment apply failed: {e}"));
    assert_eq!(graph, control_graph, "{context}: graph diverged from control after re-apply");
    assert_eq!(index.aux(), control.aux(), "{context}: aux diverged from control after re-apply");
    assert_eq!(Engine::matches(&index), Engine::matches(&control), "{context}: match diverged");
}

#[test]
fn every_sim_site_rolls_back_or_poisons_and_recovers() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let world = two_ring_world(8);
    let pattern = cycle_pattern();
    for shards in SHARD_COUNTS {
        for site in SIM_SITES {
            check_site::<SimulationIndex>(&pattern, &world, site, shards);
        }
    }
}

#[test]
fn every_bsim_site_rolls_back_or_poisons_and_recovers() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let world = two_ring_world(8);
    let pattern = bounded_cycle_pattern();
    for shards in SHARD_COUNTS {
        for site in BSIM_SITES {
            check_site::<BoundedIndex>(&pattern, &world, site, shards);
        }
    }
}

#[test]
fn sim_stage_reports_classify_rollback_vs_poison() {
    // The containment's poison decision is part of the public contract:
    // pre-mutation and mutation-only stages leave the index usable, anything
    // that may have touched auxiliary state poisons. Pin it per site.
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let world = two_ring_world(8);
    let pattern = cycle_pattern();
    let expect_poison = |site: &str| {
        !matches!(
            site,
            fail::SIM_REDUCE
                | fail::SIM_MUTATE
                | fail::GRAPH_APPLY_SIDES
                | fail::GRAPH_ADD_EDGE
                | fail::GRAPH_REMOVE_EDGE
        )
    };
    for site in SIM_SITES {
        let batch = crash_batch(&world);
        let mut graph = world.graph.clone();
        let mut index = SimulationIndex::build_with_shards(&pattern, &graph, 1);
        let error = with_armed(site, || index.try_apply_batch_with_shards(&mut graph, &batch, 1))
            .err()
            .unwrap_or_else(|| panic!("site `{site}` never fired"));
        let ApplyError::StagePanicked(panic_info) = &error else {
            panic!("site `{site}`: expected StagePanicked, got {error}");
        };
        assert_eq!(
            panic_info.poisoned,
            expect_poison(site),
            "site `{site}` (stage `{}`): unexpected poison classification",
            panic_info.stage
        );
    }
    // In the bounded engine only the pure-read reduction stage is safe.
    let pattern = bounded_cycle_pattern();
    for site in BSIM_SITES {
        let batch = crash_batch(&world);
        let mut graph = world.graph.clone();
        let mut index = BoundedIndex::build_with_shards(&pattern, &graph, 1);
        let error = with_armed(site, || index.try_apply_batch_with_shards(&mut graph, &batch, 1))
            .err()
            .unwrap_or_else(|| panic!("site `{site}` never fired"));
        let ApplyError::StagePanicked(panic_info) = &error else {
            panic!("site `{site}`: expected StagePanicked, got {error}");
        };
        assert_eq!(
            panic_info.poisoned,
            site != fail::BSIM_REDUCE,
            "site `{site}` (stage `{}`): unexpected poison classification",
            panic_info.stage
        );
    }
}

#[test]
fn threaded_mutation_fanout_crash_is_rolled_back() {
    // A ≥ PARALLEL_WORK_THRESHOLD batch on a > threshold graph drives the
    // graph mutation through the two-pass scoped-thread fan-out; the
    // `graph.apply-sides` site then fires *between* the passes, where the
    // forward adjacency is fully mutated and the reverse adjacency is still
    // pre-batch. The rollback must repair that deliberately inconsistent
    // cross-side state.
    use igpm::graph::shard::PARALLEL_WORK_THRESHOLD;
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);

    let ring_len = 3 * PARALLEL_WORK_THRESHOLD / 2; // even, > threshold nodes
    let world = two_ring_world(ring_len);
    let pattern = cycle_pattern();
    // Delete every other ring-A edge and insert a matching number of absent
    // ring-B chords: ≥ threshold updates in total, each edge touched once.
    let mut batch = BatchUpdate::new();
    for i in (0..ring_len).step_by(2) {
        batch.delete(world.ring_a[i], world.ring_a[(i + 1) % ring_len]);
    }
    for i in (0..ring_len).step_by(2) {
        // A chord skipping two nodes keeps the label alternation (l0 → l1).
        batch.insert(world.ring_b[i], world.ring_b[(i + 3) % ring_len]);
    }
    assert!(batch.len() >= PARALLEL_WORK_THRESHOLD, "batch must reach the fan-out threshold");

    for shards in [4, 8] {
        let mut graph = world.graph.clone();
        let mut index = SimulationIndex::build_with_shards(&pattern, &graph, shards);
        let pre_aux = index.aux_snapshot();
        let error = with_armed(fail::GRAPH_APPLY_SIDES, || {
            index.try_apply_batch_with_shards(&mut graph, &batch, shards)
        })
        .expect_err("apply-sides must fire in the fan-out path");
        let ApplyError::StagePanicked(panic_info) = &error else {
            panic!("expected StagePanicked, got {error}");
        };
        assert!(!panic_info.poisoned, "mutation-stage crash leaves the index usable");
        assert_eq!(graph, world.graph, "cross-side partial state not rolled back");
        graph.assert_edge_index_consistent();
        assert_eq!(index.aux_snapshot(), pre_aux);

        // And the batch still applies cleanly afterwards, agreeing with an
        // uninterrupted control replica.
        let mut control_graph = world.graph.clone();
        let mut control = SimulationIndex::build_with_shards(&pattern, &control_graph, shards);
        let control_stats =
            control.try_apply_batch_with_shards(&mut control_graph, &batch, shards).expect("ok");
        let stats = index.try_apply_batch_with_shards(&mut graph, &batch, shards).expect("ok");
        assert_eq!(stats, control_stats, "shards={shards}: stats diverged after containment");
        assert_eq!(graph, control_graph);
        assert_eq!(index.aux_snapshot(), control.aux_snapshot());
    }
}

#[test]
fn unknown_failpoint_names_are_rejected() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(|| fail::arm("sim.no-such-stage"));
    std::panic::set_hook(hook);
    assert!(result.is_err(), "arming an unknown site must panic");
    fail::disarm_all();
}
