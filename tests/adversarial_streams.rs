//! Adversarial update streams: seeded fuzz batches interleaving *invalid*
//! operations (out-of-range endpoints, duplicate inserts, deletes of absent
//! edges — including within-batch sequences like insert-then-insert) with
//! thousands of valid updates, driven through
//! `apply_batch_lenient_with_shards` in lockstep over shard counts
//! {1, 2, 3, 8}.
//!
//! After every batch the suite asserts:
//!
//! * **rejection reports** are identical across shard counts (validation is
//!   sequential-presence semantics, independent of the execution plan);
//! * **auxiliary state** (masks, counters / pairs, support) and `AffStats`
//!   are byte-identical across shard counts;
//! * the engines' graphs are adjacency-identical across shard counts and
//!   edge-set-equal to a **naive mirror** that applies the stream op by op
//!   (skipping exactly what the lenient contract says is skipped);
//! * the maintained match agrees with a **from-scratch recomputation**
//!   (`match_simulation` / `match_bounded_with_matrix`) on the mirror graph,
//!   and periodically with the independent HORNSAT least-model baseline for
//!   the plain-simulation engine.

use igpm::core::{match_bounded_with_matrix, match_simulation};
use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Random labeled digraph: `n` nodes over `labels` labels, `m` distinct
/// random edges (no self-loops barred — simulation handles them).
fn random_graph(rng: &mut StdRng, n: usize, m: usize, labels: usize) -> DataGraph {
    let mut g = DataGraph::new();
    let nodes: Vec<NodeId> =
        (0..n).map(|i| g.add_labeled_node(format!("l{}", i % labels))).collect();
    let mut added = 0;
    while added < m {
        let a = nodes[rng.gen_range(0..n)];
        let b = nodes[rng.gen_range(0..n)];
        if g.add_edge(a, b) {
            added += 1;
        }
    }
    g
}

/// One adversarial batch against the *current* graph: `valid_ops` toggles
/// (delete a present edge / insert an absent one, tracked in sequence so the
/// valid portion stays validation-clean) interleaved with `invalid_ops`
/// drawn from the three rejection classes. Returns the batch and the number
/// of invalid operations planted.
fn adversarial_batch(
    rng: &mut StdRng,
    graph: &DataGraph,
    valid_ops: usize,
    invalid_ops: usize,
) -> (BatchUpdate, usize) {
    let n = graph.node_count();
    let mut updates: Vec<Update> = Vec::with_capacity(valid_ops + invalid_ops);
    // Sequence-local presence: validity is judged against the graph *as the
    // batch would have transformed it so far*, exactly like `validate_batch`.
    let mut presence: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    fn is_present(
        presence: &mut std::collections::HashMap<(NodeId, NodeId), bool>,
        graph: &DataGraph,
        a: NodeId,
        b: NodeId,
    ) -> bool {
        *presence.entry((a, b)).or_insert_with(|| graph.has_edge(a, b))
    }
    for _ in 0..valid_ops {
        let a = NodeId::from_index(rng.gen_range(0..n));
        let b = NodeId::from_index(rng.gen_range(0..n));
        if is_present(&mut presence, graph, a, b) {
            updates.push(Update::delete(a, b));
            presence.insert((a, b), false);
        } else {
            updates.push(Update::insert(a, b));
            presence.insert((a, b), true);
        }
    }
    let mut planted = 0;
    for _ in 0..invalid_ops {
        let a = NodeId::from_index(rng.gen_range(0..n));
        let b = NodeId::from_index(rng.gen_range(0..n));
        match rng.gen_range(0..3u32) {
            // Out-of-range endpoint (sometimes far out).
            0 => {
                let ghost = NodeId::from_index(n + rng.gen_range(0..7usize));
                if rng.gen_bool(0.5) {
                    updates.push(Update::insert(ghost, b));
                } else {
                    updates.push(Update::delete(a, ghost));
                }
                planted += 1;
            }
            // Duplicate insert (of an edge present at this point in the
            // sequence, when one exists nearby).
            1 => {
                if is_present(&mut presence, graph, a, b) {
                    updates.push(Update::insert(a, b));
                    planted += 1;
                } else {
                    updates.push(Update::insert(a, b));
                    presence.insert((a, b), true);
                }
            }
            // Delete of an absent edge.
            _ => {
                if is_present(&mut presence, graph, a, b) {
                    updates.push(Update::delete(a, b));
                    presence.insert((a, b), false);
                } else {
                    updates.push(Update::delete(a, b));
                    planted += 1;
                }
            }
        }
    }
    // Deterministic shuffle so invalid ops land between valid ones. Note the
    // shuffle changes which occurrence of a repeated edge is "the duplicate",
    // but validation is positional, so every replica judges identically.
    for i in (1..updates.len()).rev() {
        updates.swap(i, rng.gen_range(0..=i));
    }
    (BatchUpdate::from_updates(updates), planted)
}

/// The naive mirror: applies the batch op by op with exactly the lenient
/// contract — out-of-range ops skipped, duplicate inserts and absent deletes
/// are no-ops anyway.
fn mirror_apply(graph: &mut DataGraph, batch: &BatchUpdate) {
    let n = graph.node_count();
    for update in batch.iter() {
        let (from, to) = update.endpoints();
        if from.index() >= n || to.index() >= n {
            continue;
        }
        match update {
            Update::InsertEdge { .. } => {
                graph.add_edge(from, to);
            }
            Update::DeleteEdge { .. } => {
                graph.remove_edge(from, to);
            }
        }
    }
}

/// Cyclic normal pattern over three labels (two-node SCC plus a tail) — keeps
/// `propCC` engaged throughout the stream.
fn sim_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    let c = p.add_labeled_node("l2");
    p.add_normal_edge(a, b);
    p.add_normal_edge(b, a);
    p.add_normal_edge(a, c);
    p
}

/// Cyclic b-pattern: `l0 -[2]-> l1 -[*]-> l0`, plus a 1-hop tail.
fn bsim_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.add_labeled_node("l0");
    let b = p.add_labeled_node("l1");
    let c = p.add_labeled_node("l2");
    p.add_edge(a, b, EdgeBound::Hops(2));
    p.add_edge(b, a, EdgeBound::Unbounded);
    p.add_edge(a, c, EdgeBound::Hops(1));
    p
}

#[test]
fn sim_survives_adversarial_streams_in_lockstep() {
    let mut rng = StdRng::seed_from_u64(0xFA11_F001);
    let base = random_graph(&mut rng, 90, 260, 3);
    let pattern = sim_pattern();

    let mut mirror = base.clone();
    let mut replicas: Vec<(DataGraph, SimulationIndex)> = SHARD_COUNTS
        .iter()
        .map(|&s| (base.clone(), SimulationIndex::build_with_shards(&pattern, &base, s)))
        .collect();

    let mut valid_total = 0usize;
    let mut invalid_total = 0usize;
    for step in 0..60 {
        let (batch, planted) = adversarial_batch(&mut rng, &mirror, 24, 6);
        invalid_total += planted;

        let mut reports = Vec::with_capacity(SHARD_COUNTS.len());
        for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter_mut()) {
            let report = index
                .apply_batch_lenient_with_shards(graph, &batch, shards)
                .unwrap_or_else(|e| panic!("step {step}, shards={shards}: {e}"));
            reports.push((shards, report));
        }
        valid_total += batch.len() - reports[0].1.rejected.len();

        // Lockstep: rejection reports, stats and auxiliary state identical
        // across shard counts; graphs adjacency-identical.
        let (_, first) = &reports[0];
        for (shards, report) in &reports[1..] {
            assert_eq!(report.rejected, first.rejected, "step {step}, shards={shards}: reports");
            assert_eq!(report.stats, first.stats, "step {step}, shards={shards}: stats");
        }
        let (graph0, index0) = &replicas[0];
        let aux0 = index0.aux_snapshot();
        for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter()).skip(1) {
            assert_eq!(index.aux_snapshot(), aux0, "step {step}, shards={shards}: aux");
            assert!(graph.identical_to(graph0), "step {step}, shards={shards}: graph");
        }

        // Differential vs the naive mirror.
        mirror_apply(&mut mirror, &batch);
        assert_eq!(*graph0, mirror, "step {step}: lenient apply diverged from the naive mirror");

        // From-scratch recomputation on the mirror graph.
        let expected = match_simulation(&pattern, &mirror);
        assert_eq!(index0.matches(), expected, "step {step}: diverged from scratch");

        // Periodically cross-check with the independent HORNSAT baseline.
        if step % 20 == 19 {
            let hornsat = HornSatSimulation::build(&pattern, &mirror);
            assert_eq!(index0.matches(), hornsat.matches(), "step {step}: HORNSAT disagrees");
        }
    }
    assert!(valid_total >= 1000, "stream too tame: only {valid_total} valid updates");
    assert!(invalid_total >= 100, "stream too tame: only {invalid_total} invalid updates");
}

#[test]
fn bsim_survives_adversarial_streams_in_lockstep() {
    let mut rng = StdRng::seed_from_u64(0xB51F_F001);
    let base = random_graph(&mut rng, 60, 150, 3);
    let pattern = bsim_pattern();

    let mut mirror = base.clone();
    let mut replicas: Vec<(DataGraph, BoundedIndex)> = SHARD_COUNTS
        .iter()
        .map(|&s| (base.clone(), BoundedIndex::build_with_shards(&pattern, &base, s)))
        .collect();

    let mut valid_total = 0usize;
    for step in 0..45 {
        let (batch, _) = adversarial_batch(&mut rng, &mirror, 24, 6);

        let mut reports = Vec::with_capacity(SHARD_COUNTS.len());
        for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter_mut()) {
            let report = index
                .apply_batch_lenient_with_shards(graph, &batch, shards)
                .unwrap_or_else(|e| panic!("step {step}, shards={shards}: {e}"));
            reports.push((shards, report));
        }
        valid_total += batch.len() - reports[0].1.rejected.len();

        let (_, first) = &reports[0];
        for (shards, report) in &reports[1..] {
            assert_eq!(report.rejected, first.rejected, "step {step}, shards={shards}: reports");
            assert_eq!(report.stats, first.stats, "step {step}, shards={shards}: stats");
        }
        let (graph0, index0) = &replicas[0];
        let aux0 = index0.aux_snapshot();
        for (&shards, (graph, index)) in SHARD_COUNTS.iter().zip(replicas.iter()).skip(1) {
            assert_eq!(index.aux_snapshot(), aux0, "step {step}, shards={shards}: aux");
            assert!(graph.identical_to(graph0), "step {step}, shards={shards}: graph");
        }

        mirror_apply(&mut mirror, &batch);
        assert_eq!(*graph0, mirror, "step {step}: lenient apply diverged from the naive mirror");

        let expected = match_bounded_with_matrix(&pattern, &mirror);
        assert_eq!(index0.matches(), expected, "step {step}: diverged from scratch");
    }
    assert!(valid_total >= 1000, "stream too tame: only {valid_total} valid updates");
}

#[test]
fn strict_rejection_is_deterministic_across_shard_counts() {
    // The strict path must produce the *same* typed rejection list for every
    // shard count and leave every replica bit-identical to its pre-batch
    // state — even when the invalid op hides behind a long valid prefix.
    let mut rng = StdRng::seed_from_u64(0x0571_21C7);
    let base = random_graph(&mut rng, 70, 200, 3);
    let pattern = sim_pattern();

    for round in 0..10 {
        let (mut batch, _) = adversarial_batch(&mut rng, &base, 30, 0);
        // Plant exactly one of each invalid class at deterministic spots.
        let n = base.node_count();
        let present = base.edges().next().expect("graph has edges");
        let mut updates: Vec<Update> = batch.iter().copied().collect();
        updates.insert(7, Update::insert(NodeId::from_index(n + 1), present.1));
        updates.insert(19, Update::insert(present.0, present.1));
        batch = BatchUpdate::from_updates(updates);

        let mut errors = Vec::new();
        for &shards in &SHARD_COUNTS {
            let mut graph = base.clone();
            let mut index = SimulationIndex::build_with_shards(&pattern, &base, shards);
            let aux = index.aux_snapshot();
            let err = index
                .try_apply_batch_with_shards(&mut graph, &batch, shards)
                .expect_err("planted invalid ops must reject the batch");
            assert!(graph.identical_to(&base), "round {round}: rejection touched the graph");
            assert_eq!(index.aux_snapshot(), aux, "round {round}: rejection touched the index");
            errors.push(err.to_string());
        }
        assert!(errors.windows(2).all(|w| w[0] == w[1]), "round {round}: divergent rejections");
    }
}
