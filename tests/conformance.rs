//! Cross-engine conformance suite.
//!
//! Differential testing of the incremental engines against every independent
//! implementation of the same semantics in the workspace: seeded random
//! graphs, generated patterns and 1000+-update streams are applied batch by
//! batch to
//!
//! * the counter-backed [`SimulationIndex`] (batch `IncMatch` with
//!   `minDelta`), checked after **every** batch against
//!   `igpm-baseline::apply_batch_naive` (`IncMatchn`, one unit update at a
//!   time through entirely different code paths) and against a from-scratch
//!   `match_simulation` recomputation;
//! * the landmark-backed [`BoundedIndex`] (`IncBMatch`), checked after every
//!   batch against `igpm-baseline::apply_batch_naive_bounded`, against the
//!   matrix-backed [`MatrixBoundedIndex`] (`IncBMatchm`, DAG patterns) and
//!   against a from-scratch `match_bounded_with_matrix` recomputation.
//!
//! Cyclic and DAG patterns are both driven (`propCC` on one side, the
//! matrix baseline on the other), and node churn is injected mid-stream.
//! Every engine replica evolves its own graph copy, so graph equality is
//! asserted too — an engine that silently diverges in how it *applies* an
//! update is caught, not just one that diverges in how it *matches*.
//!
//! This suite is the semantic safety net under the parallel cold-start build
//! and the sharded batch engines: it runs in the CI `IGPM_SHARDS={1,4}`
//! matrix, so every invariant here is enforced for both the sequential and
//! the fanned-out execution of the same computation.

use igpm::baseline::{apply_batch_naive, apply_batch_naive_bounded};
use igpm::core::{match_bounded_with_matrix, match_simulation};
use igpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random unit update over the current graph: half the time an existing
/// edge is deleted (found by walking from a random pivot), otherwise a random
/// pair is inserted. Duplicates and no-ops are intentional — `minDelta`, the
/// naive unit path and the matrix baseline must all reduce them identically.
fn random_update(rng: &mut StdRng, graph: &DataGraph) -> Option<Update> {
    let n = graph.node_count();
    if rng.gen_bool(0.5) && graph.edge_count() > 0 {
        for _ in 0..32 {
            let v = NodeId(rng.gen_range(0..n) as u32);
            if graph.out_degree(v) > 0 {
                let children = graph.children(v);
                let w = children[rng.gen_range(0..children.len())];
                return Some(Update::delete(v, w));
            }
        }
        None
    } else {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        (a != b).then(|| Update::insert(NodeId(a as u32), NodeId(b as u32)))
    }
}

/// Drives the batch `IncMatch` engine and the naive unit-update baseline
/// through the same ≥`total`-update stream, checking both against each other
/// and against from-scratch recomputation after every batch. `grow_every` > 0
/// adds a fresh node between batches (wired in by the next batch).
fn drive_sim_conformance(
    base: &DataGraph,
    pattern: &Pattern,
    seed: u64,
    total: usize,
    grow_every: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g_inc = base.clone();
    let mut inc = SimulationIndex::build(pattern, &g_inc);
    let mut g_naive = base.clone();
    let mut naive = SimulationIndex::build(pattern, &g_naive);

    let mut applied = 0usize;
    let mut round = 0usize;
    let mut pending_fresh: Option<(NodeId, NodeId, NodeId)> = None;
    while applied < total {
        round += 1;
        let batch_size = [1usize, 9, 37, 110][round % 4];
        let mut batch = BatchUpdate::new();
        if let Some((fresh, out, inn)) = pending_fresh.take() {
            batch.insert(fresh, out);
            batch.insert(inn, fresh);
        }
        while batch.len() < batch_size {
            match random_update(&mut rng, &g_inc) {
                Some(update) => batch.push(update),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();

        inc.apply_batch(&mut g_inc, &batch);
        apply_batch_naive(&mut naive, &mut g_naive, &batch);

        assert_eq!(g_inc, g_naive, "seed {seed}, round {round}: graphs diverged");
        assert_eq!(
            inc.matches(),
            naive.matches(),
            "seed {seed}, round {round}: IncMatch diverged from IncMatchn"
        );
        assert_eq!(
            inc.matches(),
            match_simulation(pattern, &g_inc),
            "seed {seed}, round {round}: engines diverged from from-scratch recomputation"
        );

        if grow_every > 0 && round.is_multiple_of(grow_every) {
            let label = rng.gen_range(0..4u32);
            let attrs = Attributes::labeled(format!("l{label}"));
            let fresh = g_inc.add_node(attrs.clone());
            let fresh_naive = g_naive.add_node(attrs);
            assert_eq!(fresh, fresh_naive, "replicas must agree on fresh node ids");
            let n = g_inc.node_count() - 1;
            let out = NodeId(rng.gen_range(0..n) as u32);
            let inn = NodeId(rng.gen_range(0..n) as u32);
            pending_fresh = Some((fresh, out, inn));
        }
    }
    assert!(applied >= total, "stream too short: {applied} < {total}");
}

#[test]
fn sim_conformance_cyclic_pattern_1k_updates() {
    for seed in [0x11u64, 0x12] {
        let graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 8, 1, seed + 2).with_shape(PatternShape::General),
        );
        assert!(!pattern.is_dag(), "want a cyclic pattern so propCC is exercised");
        drive_sim_conformance(&graph, &pattern, seed, 1_100, 0);
    }
}

#[test]
fn sim_conformance_dag_pattern_1k_updates() {
    let seed = 0x13u64;
    let graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(6, 9, 1, seed + 2).with_shape(PatternShape::Dag),
    );
    assert!(pattern.is_dag());
    drive_sim_conformance(&graph, &pattern, seed, 1_100, 0);
}

#[test]
fn sim_conformance_with_node_churn() {
    for (shape, seed) in [(PatternShape::General, 0x14u64), (PatternShape::Dag, 0x15)] {
        let graph = synthetic_graph(&SyntheticConfig::new(150, 500, 4, seed + 1));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(5, 7, 1, seed + 2).with_shape(shape),
        );
        drive_sim_conformance(&graph, &pattern, seed, 1_000, 2);
    }
}

/// Drives `IncBMatch`, the naive bounded baseline and (for DAG patterns) the
/// matrix-backed `IncBMatchm` through the same ≥`total`-update stream,
/// checking all of them against each other and against from-scratch
/// recomputation after every batch.
fn drive_bounded_conformance(
    base: &DataGraph,
    pattern: &Pattern,
    seed: u64,
    total: usize,
    batch_size: usize,
    grow_every: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g_inc = base.clone();
    let mut inc = BoundedIndex::build(pattern, &g_inc);
    let mut g_naive = base.clone();
    let mut naive = BoundedIndex::build(pattern, &g_naive);
    // The matrix baseline handles DAG patterns and a fixed node set only
    // (its candidate rows are frozen at build), so it sits the churn and
    // cyclic configurations out.
    let mut matrix: Option<(DataGraph, MatrixBoundedIndex)> = (pattern.is_dag() && grow_every == 0)
        .then(|| (base.clone(), MatrixBoundedIndex::build(pattern, base)));

    let mut applied = 0usize;
    let mut round = 0usize;
    let mut pending_fresh: Option<(NodeId, NodeId)> = None;
    while applied < total {
        round += 1;
        let mut batch = BatchUpdate::new();
        if let Some((fresh, out)) = pending_fresh.take() {
            batch.insert(fresh, out);
        }
        while batch.len() < batch_size {
            match random_update(&mut rng, &g_inc) {
                Some(update) => batch.push(update),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        applied += batch.len();

        inc.apply_batch(&mut g_inc, &batch);
        apply_batch_naive_bounded(&mut naive, &mut g_naive, &batch);

        assert_eq!(g_inc, g_naive, "seed {seed}, round {round}: graphs diverged");
        assert_eq!(
            inc.matches(),
            match_bounded_with_matrix(pattern, &g_inc),
            "seed {seed}, round {round}: IncBMatch diverged from from-scratch recomputation"
        );
        assert_eq!(
            inc.matches(),
            naive.matches(),
            "seed {seed}, round {round}: IncBMatch diverged from the naive unit path"
        );
        if let Some((g_matrix, matrix_index)) = matrix.as_mut() {
            matrix_index.apply_batch(g_matrix, &batch);
            assert_eq!(g_inc, *g_matrix, "seed {seed}, round {round}: matrix graph diverged");
            assert_eq!(
                inc.matches(),
                matrix_index.matches(),
                "seed {seed}, round {round}: IncBMatch diverged from IncBMatchm"
            );
        }

        if grow_every > 0 && round.is_multiple_of(grow_every) {
            let label = rng.gen_range(0..4u32);
            let attrs = Attributes::labeled(format!("l{label}"));
            let fresh = g_inc.add_node(attrs.clone());
            assert_eq!(fresh, g_naive.add_node(attrs), "replicas must agree on fresh node ids");
            let n = g_inc.node_count() - 1;
            pending_fresh = Some((fresh, NodeId(rng.gen_range(0..n) as u32)));
        }
    }
    assert!(applied >= total, "stream too short: {applied} < {total}");
}

#[test]
fn bounded_conformance_dag_pattern_1k_updates() {
    let seed = 0x21u64;
    let graph = synthetic_graph(&SyntheticConfig::new(80, 240, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::new(4, 5, 1, 2, seed + 2).with_shape(PatternShape::Dag),
    );
    assert!(pattern.is_dag());
    drive_bounded_conformance(&graph, &pattern, seed, 1_040, 40, 0);
}

#[test]
fn bounded_conformance_cyclic_pattern_1k_updates() {
    let seed = 0x22u64;
    let graph = synthetic_graph(&SyntheticConfig::new(80, 240, 4, seed + 1));
    // The General shape does not guarantee a cycle; walk the (deterministic)
    // seed sequence until one appears so the SCC joint pass actually runs.
    let pattern = (0..64)
        .map(|s| {
            generate_pattern(
                &graph,
                &PatternGenConfig::new(4, 5, 1, 2, seed + 2 + s).with_shape(PatternShape::General),
            )
        })
        .find(|p| !p.is_dag())
        .expect("some seed yields a cyclic pattern");
    drive_bounded_conformance(&graph, &pattern, seed, 1_040, 40, 0);
}

#[test]
fn bounded_conformance_with_node_churn() {
    let seed = 0x23u64;
    let graph = synthetic_graph(&SyntheticConfig::new(70, 210, 4, seed + 1));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::new(4, 5, 1, 2, seed + 2).with_shape(PatternShape::Dag),
    );
    drive_bounded_conformance(&graph, &pattern, seed, 1_000, 40, 3);
}
