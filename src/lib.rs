//! # igpm — Incremental Graph Pattern Matching
//!
//! Umbrella crate for the reproduction of *Incremental Graph Pattern Matching*
//! (Wenfei Fan, Xin Wang, Yinghui Wu; SIGMOD 2011 / TODS 2013). It re-exports
//! the public API of the member crates so downstream users can depend on a
//! single crate:
//!
//! * [`graph`] — data graphs, b-patterns, updates, result graphs;
//! * [`distance`] — distance matrices, BFS/2-hop oracles, landmark vectors;
//! * [`core`] — bounded simulation (`Match`), graph simulation, and the
//!   incremental algorithms (`IncMatch*`, `IncBMatch*`);
//! * [`baseline`] — VF2, HORNSAT, `IncMatchn`, `IncBMatchm`;
//! * [`generator`] — synthetic graphs, dataset substitutes, pattern and
//!   update generators.
//!
//! ## Quickstart
//!
//! ```
//! use igpm::prelude::*;
//!
//! // A tiny social graph and a bounded pattern: a CTO within 2 hops of a DB
//! // person who can in turn reach some CTO.
//! let mut g = DataGraph::new();
//! let ann = g.add_node(Attributes::new().with("job", "CTO"));
//! let pat = g.add_node(Attributes::new().with("job", "DB"));
//! let bill = g.add_node(Attributes::new().with("job", "Bio"));
//! g.add_edge(ann, pat);
//! g.add_edge(pat, bill);
//! g.add_edge(bill, ann);
//!
//! let mut p = Pattern::new();
//! let cto = p.add_node(Predicate::any().and_eq("job", "CTO"));
//! let db = p.add_node(Predicate::any().and_eq("job", "DB"));
//! p.add_edge(cto, db, EdgeBound::Hops(2));
//! p.add_edge(db, cto, EdgeBound::Unbounded);
//!
//! let matches = igpm::core::match_bounded_with_matrix(&p, &g);
//! assert!(matches.contains(cto, ann));
//! assert!(matches.contains(db, pat));
//! ```

#![forbid(unsafe_code)]

pub use igpm_baseline as baseline;
pub use igpm_core as core;
pub use igpm_distance as distance;
pub use igpm_generator as generator;
pub use igpm_graph as graph;

/// Commonly used items from every member crate.
pub mod prelude {
    pub use igpm_baseline::{
        count_isomorphic_matches, find_isomorphic_matches, HornSatSimulation, MatrixBoundedIndex,
    };
    pub use igpm_core::{
        build_result_graph, match_bounded, match_bounded_with_bfs, match_bounded_with_matrix,
        match_bounded_with_two_hop, match_simulation, AffStats, ApplyError, ApplyOutcome,
        BoundedIndex, BuildError, DeltaEvent, DurableError, DurableIndex, DurableMatchService,
        DurableOptions, IncrementalEngine, Ingest, IngestApply, IngestError, IngestHandle,
        IngestOptions, IngestSink, IngestStats, InvalidOptions, LenientApply, MatchService,
        PatternId, RejectReason, ServiceApply, ServiceDeltaEvent, ServiceError,
        ServiceSubscription, SimulationIndex, SubmitError, Subscription, Ticket, UpdateRejection,
    };
    pub use igpm_distance::{
        BfsOracle, DistanceMatrix, DistanceOracle, LandmarkIndex, LandmarkSelection, TwoHopLabels,
    };
    pub use igpm_generator::{
        citation_like, generate_pattern, mixed_batch, synthetic_graph, youtube_like,
        CitationConfig, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
        YouTubeConfig,
    };
    pub use igpm_graph::prelude::*;
    pub use igpm_graph::{Attributes, CompareOp};
}
