//! Quickstart: build a small data graph and a b-pattern, run bounded
//! simulation, keep the match up to date while the graph changes — and
//! register several patterns at once on a shared [`MatchService`].
//!
//! Run with `cargo run --example quickstart`.

use igpm::prelude::*;

fn main() {
    // ---------------------------------------------------------------
    // 1. A small collaboration graph.
    // ---------------------------------------------------------------
    let mut graph = DataGraph::new();
    let ann = graph.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
    let pat = graph.add_node(Attributes::new().with("name", "Pat").with("job", "DB"));
    let dan = graph.add_node(Attributes::new().with("name", "Dan").with("job", "DB"));
    let bill = graph.add_node(Attributes::new().with("name", "Bill").with("job", "Bio"));
    let mat = graph.add_node(Attributes::new().with("name", "Mat").with("job", "Bio"));
    let don = graph.add_node(Attributes::new().with("name", "Don").with("job", "CTO"));
    for (a, b) in
        [(ann, pat), (pat, ann), (pat, bill), (ann, bill), (ann, dan), (dan, ann), (dan, mat)]
    {
        graph.add_edge(a, b);
    }

    // ---------------------------------------------------------------
    // 2. A b-pattern: a CTO connected to a DB expert within 2 hops and to a
    //    biologist within 1 hop; the DB expert must reach a biologist in one
    //    hop and some CTO through any chain (this is pattern P3 of the paper).
    // ---------------------------------------------------------------
    let mut pattern = Pattern::new();
    let cto = pattern.add_node(Predicate::any().and_eq("job", "CTO"));
    let db = pattern.add_node(Predicate::any().and_eq("job", "DB"));
    let bio = pattern.add_node(Predicate::any().and_eq("job", "Bio"));
    pattern.add_edge(cto, db, EdgeBound::Hops(2));
    pattern.add_edge(cto, bio, EdgeBound::Hops(1));
    pattern.add_edge(db, bio, EdgeBound::Hops(1));
    pattern.add_edge(db, cto, EdgeBound::Unbounded);

    // ---------------------------------------------------------------
    // 3. Batch matching with the three distance backends of the paper.
    // ---------------------------------------------------------------
    let via_matrix = igpm::core::match_bounded_with_matrix(&pattern, &graph);
    let via_bfs = igpm::core::match_bounded_with_bfs(&pattern, &graph);
    let via_2hop = igpm::core::match_bounded_with_two_hop(&pattern, &graph);
    assert_eq!(via_matrix, via_bfs);
    assert_eq!(via_matrix, via_2hop);

    let name = |v: NodeId| graph.attrs(v).get("name").map(|a| a.to_string()).unwrap_or_default();
    println!("Maximum bounded-simulation match:");
    for (label, u) in [("CTO", cto), ("DB", db), ("Bio", bio)] {
        let matched: Vec<String> = via_matrix.matches(u).iter().map(|&v| name(v)).collect();
        println!("  {label:>4} -> {}", matched.join(", "));
    }

    // ---------------------------------------------------------------
    // 4. Incremental maintenance: the graph evolves, the match follows.
    // ---------------------------------------------------------------
    let mut index = BoundedIndex::build(&pattern, &graph);
    println!("\nDon matches CTO initially: {}", index.matches().contains(cto, don));

    // Don befriends Pat (a DB expert) and Mat (a biologist) — and becomes part
    // of the community without any recomputation from scratch.
    let stats = index.insert_edge(&mut graph, don, pat);
    println!("after +(Don, Pat):  {stats}");
    let stats = index.insert_edge(&mut graph, don, mat);
    println!("after +(Don, Mat):  {stats}");
    println!("Don matches CTO now: {}", index.matches().contains(cto, don));

    // Pat loses the link to Bill; Pat still reaches Mat... through Don? No —
    // within 1 hop there is no biologist left, so Pat drops out.
    let stats = index.delete_edge(&mut graph, pat, bill);
    println!("after -(Pat, Bill): {stats}");
    println!("Pat still matches DB: {}", index.matches().contains(db, pat));

    // The incremental result always agrees with recomputing from scratch.
    assert_eq!(index.matches(), igpm::core::match_bounded_with_matrix(&pattern, &graph));
    println!("\nIncremental result verified against batch recomputation ✓");

    // ---------------------------------------------------------------
    // 5. Many patterns, one graph: the `MatchService` registers any number
    //    of patterns over a shared `DataGraph` and classifies each update
    //    batch once — one minDelta reduction, one graph mutation — before
    //    fanning the result out to every registered pattern.
    // ---------------------------------------------------------------
    let mut service: MatchService<BoundedIndex> = MatchService::new(graph);
    let communities = service.register(&pattern).expect("register");

    let mut duo = Pattern::new();
    let boss = duo.add_node(Predicate::any().and_eq("job", "CTO"));
    let expert = duo.add_node(Predicate::any().and_eq("job", "DB"));
    duo.add_edge(boss, expert, EdgeBound::Hops(1));
    let pairs = service.register(&duo).expect("register");

    // One batch, applied once, with a per-pattern outcome for each handle.
    let mut batch = BatchUpdate::new();
    batch.insert(don, dan);
    let apply = service.apply(&batch).expect("apply");
    for (id, outcome) in &apply.outcomes {
        println!("{id}: {}", outcome.as_ref().expect("outcome").stats);
    }
    println!(
        "communities sees {} CTO matches, pairs sees {}",
        service.matches(communities).expect("view").matches(cto).len(),
        service.matches(pairs).expect("view").matches(boss).len(),
    );
}
