//! The motivating example of the paper (Example 1.1, Fig. 1): detecting a
//! drug-trafficking organisation with bounded simulation, where subgraph
//! isomorphism and plain graph simulation both fail.
//!
//! Run with `cargo run --example drug_ring`.

use igpm::prelude::*;

fn main() {
    // Pattern P0: a boss (B) supervising assistant managers (AM) who oversee
    // field workers (FW) up to 3 levels deep; a secretary (S) relays messages
    // to the top-level field workers.
    let mut pattern = Pattern::new();
    let b = pattern.add_node(Predicate::any().and_eq("role", "B"));
    let am = pattern.add_node(Predicate::any().and_eq("am", true));
    let s = pattern.add_node(Predicate::any().and_eq("s", true));
    let fw = pattern.add_node(Predicate::any().and_eq("role", "W"));
    pattern.add_edge(b, am, EdgeBound::ONE);
    pattern.add_edge(am, b, EdgeBound::ONE);
    pattern.add_edge(b, s, EdgeBound::ONE);
    pattern.add_edge(s, fw, EdgeBound::Hops(1));
    pattern.add_edge(am, fw, EdgeBound::Hops(3));
    pattern.add_edge(fw, am, EdgeBound::Hops(3));

    // Data graph G0: one boss, several assistant managers (the last one also
    // acting as the secretary), each supervising a chain of field workers.
    let mut graph = DataGraph::new();
    let boss = graph.add_node(Attributes::new().with("role", "B").with("name", "boss"));
    let mut ams = Vec::new();
    let mut workers = Vec::new();
    let manager_count = 4;
    for i in 0..manager_count {
        let is_secretary = i == manager_count - 1;
        let mut attrs =
            Attributes::new().with("role", "AM").with("am", true).with("name", format!("A{i}"));
        if is_secretary {
            attrs.set("s", true);
        }
        let a = graph.add_node(attrs);
        graph.add_edge(boss, a);
        graph.add_edge(a, boss);
        // A chain of field workers, deeper for the earlier managers.
        let depth = 3 - (i % 3);
        let mut previous = a;
        for level in 0..depth {
            let w = graph.add_node(
                Attributes::new()
                    .with("role", "W")
                    .with("name", format!("W{i}{level}"))
                    .with("level", level as i64),
            );
            graph.add_edge(previous, w);
            workers.push(w);
            previous = w;
        }
        // The deepest worker reports back to the manager.
        graph.add_edge(previous, a);
        ams.push(a);
    }

    println!("data graph: {} suspects, {} contacts", graph.node_count(), graph.edge_count());

    // Bounded simulation identifies the whole organisation.
    let bounded = igpm::core::match_bounded_with_matrix(&pattern, &graph);
    println!("\nbounded simulation:");
    println!("  bosses found:   {}", bounded.matches(b).len());
    println!("  managers found: {} / {}", bounded.matches(am).len(), ams.len());
    println!("  secretaries:    {}", bounded.matches(s).len());
    println!("  field workers:  {} / {}", bounded.matches(fw).len(), workers.len());

    // Plain simulation (edge-to-edge) loses the deep field workers and the
    // managers supervising them.
    let simulation = igpm::core::match_simulation(&pattern.as_normal(), &graph);
    println!("\nplain graph simulation (edge-to-edge):");
    println!("  managers found: {} / {}", simulation.matches(am).len(), ams.len());
    println!("  field workers:  {} / {}", simulation.matches(fw).len(), workers.len());

    // Subgraph isomorphism cannot even map AM and S to the same person, nor an
    // edge to a multi-hop supervision chain: it finds nothing.
    let iso = igpm::baseline::count_isomorphic_matches(&pattern.as_normal(), &graph);
    println!("\nsubgraph isomorphism embeddings: {iso}");

    assert!(bounded.matches(fw).len() > simulation.matches(fw).len());
    println!("\nbounded simulation finds the full ring; the traditional notions do not ✓");
}
