//! Multi-tenant pattern serving on one shared graph.
//!
//! Sixteen tenants each register their own pattern against a single evolving
//! social graph. A [`MatchService`] classifies every update batch once — one
//! minDelta reduction, one graph mutation, one label-index maintenance pass —
//! and fans the shared classification out to all registered patterns,
//! returning a pattern-keyed outcome map. Overlapping predicates share
//! interned candidate sets, so similar tenants cost a lookup rather than a
//! scan at registration time.
//!
//! The second half upgrades the same workload to the durable tier:
//! [`DurableMatchService`] write-ahead-logs each batch once and publishes
//! pattern-keyed [`ServiceDeltaEvent`]s to subscribers.
//!
//! Run with `cargo run --example multi_tenant`.

use igpm::graph::wal::FsyncPolicy;
use igpm::prelude::*;

fn tenant_patterns(graph: &DataGraph, count: usize) -> Vec<Pattern> {
    (0..count)
        .map(|i| {
            let shape = if i % 2 == 0 { PatternShape::General } else { PatternShape::Dag };
            let nodes = 2 + (i % 3);
            generate_pattern(
                graph,
                &PatternGenConfig::normal(nodes, nodes + 1, 1, 0x7E00 + i as u64).with_shape(shape),
            )
        })
        .collect()
}

fn main() {
    // One shared graph for every tenant.
    let graph = synthetic_graph(&SyntheticConfig::new(400, 1400, 4, 0x7E57));
    let patterns = tenant_patterns(&graph, 16);

    // ---------------------------------------------------------------
    // 1. Register all tenants on one service.
    // ---------------------------------------------------------------
    let mut service: MatchService<SimulationIndex> = MatchService::new(graph);
    let tenants: Vec<PatternId> =
        patterns.iter().map(|p| service.register(p).expect("register")).collect();
    let total_nodes: usize = patterns.iter().map(Pattern::node_count).sum();
    println!(
        "{} tenants registered; {} pattern nodes share {} interned candidate sets",
        tenants.len(),
        total_nodes,
        service.interned_candidate_sets(),
    );

    // ---------------------------------------------------------------
    // 2. The graph evolves; every tenant's view follows from one pass.
    // ---------------------------------------------------------------
    for round in 0..4u64 {
        let batch = mixed_batch(service.graph(), 60, 60, 0x7F00 + round);
        let apply = service.apply(&batch).expect("apply");
        let changed = apply
            .outcomes
            .values()
            .filter(|o| !o.as_ref().expect("outcome").delta.is_empty())
            .count();
        println!(
            "epoch {}: |ΔG|={} applied once, {} of {} tenants saw their match change",
            apply.epoch,
            batch.len(),
            changed,
            apply.outcomes.len(),
        );
    }

    // Snapshot reads: views are epoch-stamped and shared until the next apply.
    let sample = tenants[3];
    let view = service.matches(sample).expect("view");
    println!("tenant {sample} currently holds {} match pairs", view.pair_count());

    // ---------------------------------------------------------------
    // 3. Tenant churn: offboarding invalidates the handle immediately;
    //    the freed slot is recycled under a fresh generation.
    // ---------------------------------------------------------------
    let leaver = tenants[7];
    service.deregister(leaver).expect("deregister");
    assert!(service.matches(leaver).is_err(), "stale handles must not read");
    let newcomer =
        service.register(&patterns[7]).expect("re-register the same pattern under a new handle");
    println!("tenant {leaver} offboarded; slot recycled as {newcomer}");

    // Every surviving view agrees with a from-scratch recomputation.
    for (i, id) in tenants.iter().enumerate() {
        if *id == leaver {
            continue;
        }
        assert_eq!(
            *service.matches(*id).expect("view"),
            match_simulation(&patterns[i], service.graph()),
        );
    }
    println!("all tenant views verified against from-scratch recomputation ✓");

    // ---------------------------------------------------------------
    // 4. The durable tier: WAL-log once, publish pattern-keyed deltas.
    // ---------------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("igpm-multi-tenant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
        keep_checkpoints: 2,
        // `shards: 0` is rejected at open since degenerate configurations
        // got typed errors — pin one shard explicitly.
        shards: 1,
        delta_buffer: 64,
    };
    let seed_graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, 0x7E58));
    let durable_patterns = tenant_patterns(&seed_graph, 4);
    let (mut durable, ids) =
        DurableMatchService::<SimulationIndex>::open(&dir, &durable_patterns, &seed_graph, opts)
            .expect("open durable service");

    let mut feed = durable.subscribe();
    for round in 0..2u64 {
        let batch = mixed_batch(durable.service().graph(), 30, 30, 0x7FF0 + round);
        durable.apply(&batch).expect("durable apply");
    }
    println!("\ndurable service logged {} batches; subscriber feed:", durable.sequence());
    while let Some(event) = feed.poll() {
        match event {
            ServiceDeltaEvent::Delta { pattern_id, seq, delta } => {
                println!("  seq {seq} · {pattern_id}: {} pairs changed", delta.len());
            }
            ServiceDeltaEvent::Lagged { missed, resume_seq } => {
                println!("  lagged: missed {missed}, resuming at {resume_seq}");
            }
        }
    }
    assert_eq!(ids.len(), durable_patterns.len());
    let _ = std::fs::remove_dir_all(&dir);
}
