//! Community detection on the YouTube-like dataset substitute, with the graph
//! evolving over time: the match is first computed on an old snapshot, then
//! maintained incrementally as the newest recommendations are inserted —
//! the workload of Figures 18(c) and 19(c).
//!
//! Run with `cargo run --example community_evolution --release`.

use igpm::prelude::*;
use std::time::Instant;

fn main() {
    // A scaled-down YouTube-like recommendation graph (use --release and bump
    // the scale for the full 14.8K-node dataset).
    let config = YouTubeConfig::scaled(0.15, 7);
    let full = youtube_like(&config);
    println!(
        "YouTube-like graph: {} videos, {} recommendations",
        full.node_count(),
        full.edge_count()
    );

    // Split into an "old" snapshot plus the newest 10% of recommendations.
    let (mut graph, additions) = igpm::generator::evolution_split(&full, 0.10, "age");
    println!(
        "old snapshot has {} edges; {} recommendations arrive later",
        graph.edge_count(),
        additions.len()
    );

    // A community pattern: popular music videos recommending comedy videos
    // within 2 hops, which recommend back into music within 3 hops, plus a
    // people/vlog video one hop away from the comedy cluster.
    let mut pattern = Pattern::new();
    let music = pattern.add_node(Predicate::any().and_eq("category", "Music").and(
        "rate",
        CompareOp::Ge,
        3.0,
    ));
    let comedy = pattern.add_node(Predicate::any().and_eq("category", "Comedy"));
    let people = pattern.add_node(Predicate::any().and_eq("category", "People"));
    pattern.add_edge(music, comedy, EdgeBound::Hops(2));
    pattern.add_edge(comedy, music, EdgeBound::Hops(3));
    pattern.add_edge(comedy, people, EdgeBound::Hops(1));

    // Batch match on the old snapshot.
    let t = Instant::now();
    let mut index = BoundedIndex::build(&pattern, &graph);
    let build_time = t.elapsed();
    let before = index.matches();
    println!(
        "\ninitial match ({build_time:?}): music={}, comedy={}, people={}",
        before.matches(music).len(),
        before.matches(comedy).len(),
        before.matches(people).len()
    );

    // Incrementally absorb the new recommendations in small batches.
    let updates: Vec<Update> = additions.into_iter().collect();
    let t = Instant::now();
    let mut total = AffStats::default();
    for chunk in updates.chunks(200) {
        let batch: BatchUpdate = chunk.iter().copied().collect();
        total.merge(index.apply_batch(&mut graph, &batch).stats);
    }
    let inc_time = t.elapsed();
    let after = index.matches();
    println!(
        "\nafter {} insertions ({inc_time:?}): music={}, comedy={}, people={}",
        updates.len(),
        after.matches(music).len(),
        after.matches(comedy).len(),
        after.matches(people).len()
    );
    println!("accumulated incremental work: {total}");

    // Compare with recomputing from scratch on the final graph.
    let t = Instant::now();
    let batch_result = igpm::core::match_bounded_with_bfs(&pattern, &graph);
    let batch_time = t.elapsed();
    assert_eq!(after, batch_result);
    println!(
        "\nbatch recomputation on the final graph takes {batch_time:?}; incremental absorption took {inc_time:?}"
    );
    println!("incremental and batch results agree ✓");
}
