//! The FriendFeed example of Section 4 (Fig. 4 / Fig. 5): a small social
//! network is updated edge by edge and the match result — together with the
//! result graph `G_r` and the change `ΔM` — is maintained incrementally.
//!
//! Run with `cargo run --example friendfeed_incremental`.

use igpm::prelude::*;

fn person(graph: &mut DataGraph, name: &str, job: &str) -> NodeId {
    graph.add_node(Attributes::new().with("name", name).with("job", job).with("label", job))
}

fn main() {
    // The fraction of FriendFeed depicted in Fig. 4 (without e1..e5).
    let mut graph = DataGraph::new();
    let ann = person(&mut graph, "Ann", "CTO");
    let pat = person(&mut graph, "Pat", "DB");
    let dan = person(&mut graph, "Dan", "DB");
    let bill = person(&mut graph, "Bill", "Bio");
    let mat = person(&mut graph, "Mat", "Bio");
    let don = person(&mut graph, "Don", "CTO");
    let tom = person(&mut graph, "Tom", "Bio");
    let ross = person(&mut graph, "Ross", "Med");
    for (a, b) in [
        (ann, pat),
        (pat, ann),
        (pat, bill),
        (ann, bill),
        (ann, dan),
        (dan, ann),
        (dan, mat),
        (mat, dan),
        (ross, tom),
    ] {
        graph.add_edge(a, b);
    }

    // Pattern P3: CTOs connected to a DB researcher within 2 hops and a
    // biologist within 1 hop; the DB researcher reaches a biologist in 1 hop
    // and some CTO through a path of any length.
    let mut pattern = Pattern::new();
    let cto = pattern.add_node(Predicate::label("CTO"));
    let db = pattern.add_node(Predicate::label("DB"));
    let bio = pattern.add_node(Predicate::label("Bio"));
    pattern.add_edge(cto, db, EdgeBound::Hops(2));
    pattern.add_edge(cto, bio, EdgeBound::Hops(1));
    pattern.add_edge(db, bio, EdgeBound::Hops(1));
    pattern.add_edge(db, cto, EdgeBound::Unbounded);

    let mut index = BoundedIndex::build(&pattern, &graph);
    // Snapshot the display names up front so the closure does not hold a
    // borrow of the graph while it is being mutated below.
    let names: Vec<String> = graph
        .nodes()
        .map(|v| graph.attrs(v).get("name").map(|a| a.to_string()).unwrap_or_default())
        .collect();
    let name = |v: NodeId| names[v.index()].clone();
    let show = |index: &BoundedIndex, heading: &str| {
        let m = index.matches();
        println!("{heading}");
        for (label, u) in [("CTO", cto), ("DB", db), ("Bio", bio)] {
            let people: Vec<String> = m.matches(u).iter().map(|&v| name(v)).collect();
            println!("  {label:>3} -> {}", people.join(", "));
        }
    };
    show(&index, "initial match M(P3, G3):");
    let gr_before = index.result_graph();

    // The five insertions e1..e5 of Fig. 4, applied one by one.
    let insertions =
        [("e1", don, mat), ("e2", don, pat), ("e3", don, tom), ("e4", pat, don), ("e5", tom, don)];
    for (tag, a, b) in insertions {
        let outcome = index.insert_edge(&mut graph, a, b);
        println!(
            "\ninsert {tag} = ({}, {}): {} — {}",
            name(a),
            name(b),
            outcome.stats,
            outcome.delta
        );
    }
    show(&index, "\nmatch after e1..e5:");

    // ΔM measured on the result graphs, as in Fig. 5.
    let gr_after = index.result_graph();
    let delta = gr_before.diff(&gr_after);
    println!("\nresult-graph change {delta}");
    println!(
        "new community members: {:?}",
        delta.added_nodes.iter().map(|&v| name(v)).collect::<Vec<_>>()
    );

    // Consistency with a from-scratch recomputation.
    assert_eq!(index.matches(), igpm::core::match_bounded_with_matrix(&pattern, &graph));
    println!("\nincremental maintenance verified against batch recomputation ✓");
}
