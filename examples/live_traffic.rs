//! Live traffic through the asynchronous ingestion front-end.
//!
//! Three producer threads feed edge updates into one durable multi-pattern
//! service through an [`Ingest`]: a bounded queue admits submissions (typed
//! backpressure instead of silent drops), a dedicated drainer coalesces
//! them into micro-batches sized by an adaptive cap, and every submission
//! resolves a [`Ticket`] with the exact coalesced batch it rode in. The
//! batching policy is re-derived from the committed bench artifact
//! (`BENCH_incsim.json`) when it is present — the amortisation knee the
//! defaults were seeded from — and falls back to the defaults otherwise.
//!
//! After a shutdown-flush (every enqueued submission reaches the sink), the
//! delta stream is replayed from sequence 1 and the final view is verified
//! against a from-scratch recomputation: the asynchronous path must be
//! indistinguishable from having applied the updates synchronously.
//!
//! Run with `cargo run --example live_traffic`.

use igpm::graph::wal::FsyncPolicy;
use igpm::graph::JsonValue;
use igpm::prelude::*;

const PRODUCERS: usize = 3;
const REGION: usize = 12; // nodes per producer, A/B alternating
const EDGES: usize = 4; // disjoint edge slots per producer
const ROUNDS: usize = 5; // odd toggles per slot → every edge ends present

fn seed_world() -> DataGraph {
    let mut graph = DataGraph::new();
    for _ in 0..PRODUCERS {
        for i in 0..REGION {
            graph.add_labeled_node(if i % 2 == 0 { "A" } else { "B" });
        }
    }
    graph
}

fn main() {
    // ---------------------------------------------------------------
    // 1. A durable multi-pattern service as the ingest sink.
    // ---------------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("igpm-live-traffic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut pattern = Pattern::new();
    let a = pattern.add_labeled_node("A");
    let b = pattern.add_labeled_node("B");
    pattern.add_normal_edge(a, b);

    let opts = DurableOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
        keep_checkpoints: 2,
        shards: 1,
        delta_buffer: 256,
    };
    let (service, ids) = DurableMatchService::<SimulationIndex>::open(
        &dir,
        std::slice::from_ref(&pattern),
        &seed_world(),
        opts,
    )
    .expect("open durable service");
    let pattern_id = ids[0];

    // ---------------------------------------------------------------
    // 2. Batching policy: from the committed bench artifact if present.
    // ---------------------------------------------------------------
    let ingest_opts = std::fs::read_to_string("BENCH_incsim.json")
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .and_then(|report| IngestOptions::from_artifact(&report))
        .unwrap_or_default();
    println!(
        "batching policy: coalesce {}..{} updates per sink batch (burst backlog {})",
        ingest_opts.min_batch, ingest_opts.max_batch, ingest_opts.burst_backlog
    );

    // ---------------------------------------------------------------
    // 3. Concurrent producers over disjoint edge regions.
    // ---------------------------------------------------------------
    let ingest = Ingest::spawn(service, ingest_opts);
    let handle = ingest.handle();

    let mut joins = Vec::new();
    for p in 0..PRODUCERS {
        let handle = handle.clone();
        joins.push(std::thread::spawn(move || {
            let base = (p * REGION) as u32;
            let mut tickets = Vec::new();
            for round in 0..ROUNDS {
                for k in 0..EDGES as u32 {
                    let (from, to) = (NodeId(base + 2 * k), NodeId(base + 2 * k + 1));
                    let update = if round % 2 == 0 {
                        Update::insert(from, to)
                    } else {
                        Update::delete(from, to)
                    };
                    let batch: BatchUpdate = std::iter::once(update).collect();
                    // Blocking submit: waits for queue space under load
                    // instead of dropping (`try_submit` would surface typed
                    // `SubmitError::Backpressure` for a non-blocking caller).
                    tickets.push(handle.submit(batch).expect("ingest is open"));
                }
            }
            tickets
        }));
    }
    for (p, join) in joins.into_iter().enumerate() {
        let tickets = join.join().expect("producer thread");
        let mut seqs = Vec::new();
        for ticket in tickets {
            let apply = ticket.wait().expect("every valid submission commits");
            seqs.push(apply.seq);
        }
        assert!(seqs.windows(2).all(|w| w[0] <= w[1]), "per-producer commits are FIFO");
        println!(
            "producer {p}: {} submissions committed across WAL sequences {}..={}",
            seqs.len(),
            seqs.first().expect("at least one"),
            seqs.last().expect("at least one"),
        );
    }

    // ---------------------------------------------------------------
    // 4. Observability, shutdown-flush, and the replayed delta stream.
    // ---------------------------------------------------------------
    let stats = ingest.stats();
    println!(
        "ingest: {} submissions ({} updates) coalesced into {} batches (mean {:.1}, max {}), \
         {} backpressure waits",
        stats.submitted,
        stats.submitted_ops,
        stats.committed_batches,
        stats.committed_ops as f64 / stats.committed_batches.max(1) as f64,
        stats.max_coalesced,
        stats.backpressure_events,
    );

    let service = ingest.shutdown().expect("clean shutdown returns the sink");
    println!("shutdown flushed; durable service sits at WAL sequence {}", service.sequence());

    // The ring still holds every batch: replay the whole stream from seq 1.
    let mut feed = service.subscribe_from(1);
    let mut replayed = 0usize;
    while let Some(event) = feed.poll() {
        match event {
            ServiceDeltaEvent::Delta { seq, delta, .. } => {
                replayed += 1;
                if !delta.is_empty() {
                    println!("  seq {seq}: {} match pairs changed", delta.len());
                }
            }
            ServiceDeltaEvent::Lagged { missed, resume_seq } => {
                println!("  lagged: missed {missed}, resuming at {resume_seq}");
            }
        }
    }
    assert_eq!(replayed as u64, service.sequence(), "one delta per committed batch");

    // The asynchronous path must equal the synchronous answer.
    let view = service.service().matches(pattern_id).expect("view");
    assert_eq!(*view, match_simulation(&pattern, service.service().graph()));
    println!("verified: {} match pairs equal a from-scratch recomputation ✓", view.pair_count());
    let _ = std::fs::remove_dir_all(&dir);
}
