//! Team formation / social matching (pattern P1 of Fig. 2): a founder looks
//! for a software engineer and an HR expert within two hops, and golf-playing
//! sales managers connected through a chain of friends.
//!
//! The example runs on the YouTube-like generated dataset's schema-free
//! cousin: a synthetic social network, to show predicates over multiple
//! attributes and `*` (unbounded) pattern edges on generated data.
//!
//! Run with `cargo run --example team_formation --release`.

use igpm::prelude::*;

fn main() {
    // A synthetic social network: people with a role and an optional hobby.
    let mut graph = synthetic_graph(&SyntheticConfig::new(3_000, 12_000, 6, 42));
    // Re-label nodes with job roles and hobbies so the pattern is meaningful.
    let roles = ["Founder", "SE", "HR", "DM", "PM", "QA"];
    let hobbies = ["golf", "chess", "tennis", "none"];
    for v in graph.nodes().collect::<Vec<_>>() {
        let uid = v.index() as i64;
        let role = roles[(uid as usize * 7 + 3) % roles.len()];
        let hobby = hobbies[(uid as usize * 13 + 1) % hobbies.len()];
        let attrs = graph.attrs_mut(v);
        attrs.set("role", role);
        attrs.set("hobby", hobby);
    }

    // Pattern P1: the founder (A) needs an SE and an HR within 2 hops; sales
    // managers (DM) who play golf must be reachable through a chain of friends
    // and sit within 1 hop of the SE or 2 hops of the HR.
    let mut pattern = Pattern::new();
    let founder = pattern.add_node(Predicate::any().and_eq("role", "Founder"));
    let se = pattern.add_node(Predicate::any().and_eq("role", "SE"));
    let hr = pattern.add_node(Predicate::any().and_eq("role", "HR"));
    let dm = pattern.add_node(Predicate::any().and_eq("role", "DM").and_eq("hobby", "golf"));
    pattern.add_edge(founder, se, EdgeBound::Hops(2));
    pattern.add_edge(founder, hr, EdgeBound::Hops(2));
    pattern.add_edge(founder, dm, EdgeBound::Unbounded);
    pattern.add_edge(se, dm, EdgeBound::Hops(1));
    pattern.add_edge(hr, dm, EdgeBound::Hops(2));

    println!(
        "social network: {} people, {} connections; pattern: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count(),
        pattern.node_count(),
        pattern.edge_count()
    );

    let start = std::time::Instant::now();
    let matches = igpm::core::match_bounded_with_bfs(&pattern, &graph);
    let elapsed = start.elapsed();

    println!("\nbounded simulation ({elapsed:?}):");
    for (label, u) in [("Founder", founder), ("SE", se), ("HR", hr), ("DM+golf", dm)] {
        println!("  {label:>8}: {} candidates match", matches.matches(u).len());
    }
    if matches.is_total() {
        println!("\na viable team pool exists — every role can be staffed ✓");
    } else {
        println!("\nno viable team pool in this network");
    }

    // Subgraph isomorphism on the normalised pattern finds only exact-shaped
    // teams; count how much it misses (cap the enumeration for safety).
    let iso_nodes = igpm::baseline::isomorphic_result_nodes(&pattern.as_normal(), &graph, 10_000);
    let bsim_nodes = matches.matched_data_nodes();
    println!(
        "people identified: bounded simulation {} vs subgraph isomorphism {}",
        bsim_nodes.len(),
        iso_nodes.len()
    );
}
