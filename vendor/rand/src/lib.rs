//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; every generator in this repository only needs a fast,
//! *seeded, deterministic* source of pseudo-randomness, not distributional or
//! cryptographic guarantees. The implementation is xoshiro256** seeded via
//! SplitMix64 — the same construction the upstream `rand_xoshiro` crate uses.
//! Streams differ from upstream `StdRng` (ChaCha12), which is fine: all
//! workloads in this repository are generated and consumed by the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generator implementations.
pub mod rngs {
    /// A seeded, deterministic PRNG (xoshiro256**).
    ///
    /// Drop-in replacement for `rand::rngs::StdRng` within this workspace:
    /// construct it with [`crate::SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64: the recommended way to derive xoshiro state from a
        // 64-bit seed. Guarantees a nonzero state for every seed.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// Types that can be sampled uniformly without a range (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (`rng.gen_range(lo..hi)` / `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `0..bound` (`bound > 0`).
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_unsigned!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampleable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: u32 = rng.gen_range(1..=1);
            assert_eq!(x, 1);
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(1).gen_range(5..5usize);
    }
}
