//! Incremental bounded simulation (Section 6): `IncBMatch+`, `IncBMatch-` and
//! the batch `IncBMatch`.
//!
//! The auxiliary structures follow Section 6.2/6.3:
//!
//! * a [`LandmarkIndex`] (landmark vector + distance vectors) maintained
//!   incrementally by `InsLM` / `DelLM` / `IncLM`
//!   ([`igpm_distance::landmark_inc`]);
//! * for every pattern edge, the set of **cc/cs/ss pairs** (Table III): pairs
//!   of candidate nodes whose distance satisfies the edge bound. Unlike plain
//!   simulation, these are node *pairs* connected by bounded paths rather than
//!   single graph edges.
//!
//! Like the plain-simulation index ([`crate::incremental::sim`]), the match
//! state is held in per-data-node **pattern bitmasks** (`match_bits` /
//! `cand_bits`, pattern arity ≤ 64) and supported by **counters**: for every
//! pattern edge `e = (u, u')` and source node `v`,
//! `support[e][v] = |pairs[e][v] ∩ match(u')|`. Pair churn and match churn
//! both maintain these counters, so demotion/promotion checks are `O(1)`
//! counter reads per pattern edge instead of scans over the pair targets.
//!
//! After an update only the pairs with an endpoint in the affected area (the
//! nodes whose distance vectors changed, plus the update endpoints) can change
//! (see the covering argument in `DESIGN.md`), so `IncBMatch` re-evaluates
//! exactly those pairs and then propagates match promotions/demotions through
//! them — the reduction of bounded simulation to simulation over the result
//! pairs stated by Proposition 6.1.
//!
//! The pair re-evaluation — the distance-query-heavy part of the batch path —
//! is split into a read-only *evaluate* step and a sequential *commit* step.
//! The evaluate step runs the affected `(edge, source, target)` bound checks
//! on scoped threads when the batch is large enough
//! ([`igpm_graph::shard`]); the commit step replays the verdicts in
//! the fixed enumeration order, so results (including [`AffStats`]) are
//! bit-identical for every shard count.

use crate::bounded::evaluate_pair_bounds;
use crate::incremental::sim::MAX_PATTERN_NODES;
use crate::incremental::{
    finalize_delta, panic_message, strip_out_of_range, unwrap_apply, ApplyOutcome, BuildError,
    CacheOp, DeltaTracker, IncrementalEngine, LenientApply, PipelineStage, SharedBatch,
    SharedMutation,
};
use crate::simulation::candidates_with_shards;
use crate::stats::AffStats;
use igpm_distance::landmark_inc::inc_lm_tracked_reduced;
use igpm_distance::{satisfies_bound, LandmarkIndex, LandmarkSelection};
use igpm_graph::fail;
use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::shard::{
    configured_shards, ShardPlan, PARALLEL_EVAL_THRESHOLD, PARALLEL_WORK_THRESHOLD,
};
use igpm_graph::update::{validate_batch, StagePanic};
use igpm_graph::{
    ApplyError, BatchUpdate, DataGraph, MatchDelta, MatchRelation, NodeId, Pattern, PatternEdge,
    PatternNodeId, ResultGraph, StronglyConnectedComponents, Update,
};
use std::cell::{Ref, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Auxiliary state for incremental bounded simulation over one b-pattern.
#[derive(Debug, Clone)]
pub struct BoundedIndex {
    pattern: Pattern,
    landmarks: LandmarkIndex,
    /// Number of pattern nodes (`≤ 64`).
    np: usize,
    /// Number of data nodes covered by the per-node arrays.
    nv: usize,
    /// `cand_bits[v]` bit `u`: `v` satisfies the predicate of `u` (static
    /// under edge updates).
    cand_bits: Vec<u64>,
    /// The same candidates as sorted per-pattern-node lists, kept so that
    /// pair re-evaluation iterates `O(|candidates|)` instead of scanning
    /// every data node.
    cand_lists: Vec<Vec<NodeId>>,
    /// `match_bits[v]` bit `u`: `v` is a current bounded-simulation match of `u`.
    match_bits: Vec<u64>,
    /// `|match(u)|` per pattern node.
    match_count: Vec<usize>,
    /// `pairs[e][v]` = targets `v'` such that `(v, v')` satisfies pattern edge `e`.
    pairs: Vec<FastHashMap<NodeId, FastHashSet<NodeId>>>,
    /// `rev_pairs[e][v']` = sources `v` such that `(v, v')` satisfies pattern edge `e`.
    rev_pairs: Vec<FastHashMap<NodeId, FastHashSet<NodeId>>>,
    /// `support[e][v] = |pairs[e][v] ∩ match(e.to)|` — sparse counters.
    support: Vec<FastHashMap<NodeId, u32>>,
    /// Pattern-edge indices grouped by source pattern node.
    edges_from: Vec<Vec<usize>>,
    /// Pattern-edge indices grouped by target pattern node.
    edges_to: Vec<Vec<usize>>,
    scc: StronglyConnectedComponents,
    has_cycle: bool,
    /// Statistics of the cold-start refinement drain (identical for every
    /// shard count, see [`BoundedIndex::build_with_shards`]).
    build_stats: AffStats,
    /// Lazily rebuilt sorted view of the current match, maintained
    /// incrementally from the emitted [`MatchDelta`]s.
    cache: RefCell<Option<MatchRelation>>,
    /// Per-batch recorder of raw match-bit transitions, armed at the top of
    /// every apply path (off during build refinement).
    tracker: DeltaTracker,
    /// Set by the panic containment when a mid-batch panic may have torn the
    /// auxiliary state (landmark vectors, pair sets, support counters). A
    /// poisoned index refuses reads and writes until
    /// [`BoundedIndex::recover`] rebuilds it from the graph.
    poisoned: bool,
}

/// Content view of a [`BoundedIndex`]'s auxiliary state (membership masks,
/// pair sets, support counters), used by the build-equivalence suite to
/// assert that every shard count lands on identical internals. Hash-map
/// backed structures are rendered as sorted tuples so the comparison is
/// independent of bucket order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsimAuxSnapshot {
    /// `cand_bits` per data node.
    pub cand_bits: Vec<u64>,
    /// `match_bits` per data node.
    pub match_bits: Vec<u64>,
    /// `|match(u)|` per pattern node.
    pub match_count: Vec<usize>,
    /// Sorted `(pattern edge, source, target)` satisfied pairs.
    pub pairs: Vec<(u32, u32, u32)>,
    /// Sorted `(pattern edge, target, source)` reverse-pair entries — kept
    /// separately from `pairs` because the two maps are maintained by
    /// different code paths and must stay mirror images.
    pub rev_pairs: Vec<(u32, u32, u32)>,
    /// Sorted `(pattern edge, source, support count)` entries (zero entries
    /// dropped, so map-presence differences cannot hide).
    pub support: Vec<(u32, u32, u32)>,
}

impl BoundedIndex {
    /// Builds the index: landmark vectors, cc/cs/ss pair sets and the initial
    /// maximum match (the batch `Matchbs` step), with the landmark BFS runs
    /// and the pairwise distance checks sharded across [`configured_shards`]
    /// threads (see [`BoundedIndex::build_with_shards`]).
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        Self::build_with_shards(pattern, graph, configured_shards())
    }

    /// Fallible [`BoundedIndex::build`]: rejects patterns wider than
    /// [`MAX_PATTERN_NODES`] with a typed [`BuildError`] instead of
    /// panicking. (Bounded patterns need not be normal, so
    /// [`BuildError::NotNormal`] never occurs here.)
    pub fn try_build(pattern: &Pattern, graph: &DataGraph) -> Result<Self, BuildError> {
        Self::try_build_with_shards(pattern, graph, configured_shards())
    }

    /// [`BoundedIndex::try_build`] with an explicit shard count.
    pub fn try_build_with_shards(
        pattern: &Pattern,
        graph: &DataGraph,
        shards: usize,
    ) -> Result<Self, BuildError> {
        if pattern.node_count() > MAX_PATTERN_NODES {
            return Err(BuildError::ArityTooLarge { arity: pattern.node_count() });
        }
        Ok(Self::build_with_shards(pattern, graph, shards))
    }

    /// [`BoundedIndex::build`] with an explicit shard count (`IGPM_SHARDS`
    /// and machine parallelism are ignored). `shards = 1` is the sequential
    /// engine; every count produces bit-identical masks, pair sets, support
    /// counters, cached matches and build [`AffStats`]
    /// ([`BoundedIndex::build_stats`]): the landmark BFS rows are independent
    /// per landmark, the pairwise bound checks are pure reads evaluated in a
    /// fixed enumeration order (`evaluate_pair_bounds`) and committed
    /// sequentially, and the initial refinement is a deterministic fixpoint.
    pub fn build_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        let landmarks =
            LandmarkIndex::build_with_shards(graph, LandmarkSelection::VertexCover, shards);
        Self::build_with_landmarks_with_shards(pattern, graph, landmarks, shards)
    }

    /// Builds the index reusing an existing landmark index (must be exact for
    /// the current graph).
    ///
    /// # Panics
    /// Panics if the pattern has more than [`MAX_PATTERN_NODES`] nodes.
    pub fn build_with_landmarks(
        pattern: &Pattern,
        graph: &DataGraph,
        landmarks: LandmarkIndex,
    ) -> Self {
        Self::build_with_landmarks_with_shards(pattern, graph, landmarks, configured_shards())
    }

    /// [`BoundedIndex::build_with_landmarks`] with an explicit shard count
    /// for the pairwise distance evaluation.
    ///
    /// # Panics
    /// Panics if the pattern has more than [`MAX_PATTERN_NODES`] nodes.
    pub fn build_with_landmarks_with_shards(
        pattern: &Pattern,
        graph: &DataGraph,
        landmarks: LandmarkIndex,
        shards: usize,
    ) -> Self {
        assert!(
            pattern.node_count() <= MAX_PATTERN_NODES,
            "pattern arity {} exceeds the {MAX_PATTERN_NODES}-bit membership masks",
            pattern.node_count()
        );
        // Sharded label-index pass + predicate scans (per node-range slice,
        // merged in node order) — identical lists for every shard count.
        let cand_lists = candidates_with_shards(pattern, graph, shards);
        Self::build_with_landmarks_from_candidates(pattern, graph, landmarks, cand_lists, shards)
    }

    /// Core of the build: seeds masks and pair sets from already-computed
    /// candidate lists, then runs the initial refinement drain. Shared by the
    /// standalone builds (which compute the lists themselves) and
    /// [`IncrementalEngine::build_in_service`] (which receives interned lists
    /// from the service). The lists must be exactly what
    /// [`candidates_with_shards`] would return for this pattern and graph.
    fn build_with_landmarks_from_candidates(
        pattern: &Pattern,
        graph: &DataGraph,
        landmarks: LandmarkIndex,
        cand_lists: Vec<Vec<NodeId>>,
        shards: usize,
    ) -> Self {
        debug_assert!(pattern.node_count() <= MAX_PATTERN_NODES);
        debug_assert_eq!(cand_lists.len(), pattern.node_count());
        let np = pattern.node_count();
        let nv = graph.node_count();
        let scc = StronglyConnectedComponents::of_pattern(pattern);
        let has_cycle = scc.components().any(|c| scc.is_nontrivial(c));
        let edge_count = pattern.edge_count();

        let mut edges_from = vec![Vec::new(); np];
        let mut edges_to = vec![Vec::new(); np];
        for (e_idx, edge) in pattern.edges().iter().enumerate() {
            edges_from[edge.from.index()].push(e_idx);
            edges_to[edge.to.index()].push(e_idx);
        }

        let mut index = BoundedIndex {
            pattern: pattern.clone(),
            landmarks,
            np,
            nv,
            cand_bits: vec![0u64; nv],
            cand_lists: Vec::new(),
            match_bits: vec![0u64; nv],
            match_count: vec![0usize; np],
            pairs: vec![FastHashMap::default(); edge_count],
            rev_pairs: vec![FastHashMap::default(); edge_count],
            support: vec![FastHashMap::default(); edge_count],
            edges_from,
            edges_to,
            scc,
            has_cycle,
            build_stats: AffStats::default(),
            cache: RefCell::new(None),
            tracker: DeltaTracker::default(),
            poisoned: false,
        };
        for (u, list) in cand_lists.iter().enumerate() {
            // Every candidate starts as a match; refinement demotes below.
            index.match_count[u] = list.len();
            for v in list {
                index.cand_bits[v.index()] |= 1 << u;
                index.match_bits[v.index()] |= 1 << u;
            }
        }
        index.rebuild_all_pairs(graph, &cand_lists, shards);
        index.cand_lists = cand_lists;
        index.build_stats = index.refine_initial_matches();
        index
    }

    /// Statistics of the build's initial refinement drain — the demotions
    /// that carve the maximum bounded simulation out of the candidate sets.
    /// Identical for every shard count.
    pub fn build_stats(&self) -> AffStats {
        self.build_stats
    }

    /// Snapshot of the auxiliary state (membership masks, pair sets, support
    /// counters), for bit-identity assertions in the equivalence suites.
    pub fn aux_snapshot(&self) -> BsimAuxSnapshot {
        let mut pairs = Vec::new();
        let mut rev_pairs = Vec::new();
        let mut support = Vec::new();
        for e_idx in 0..self.pattern.edge_count() {
            for (&v, targets) in self.pairs[e_idx].iter() {
                for &w in targets.iter() {
                    pairs.push((e_idx as u32, v.0, w.0));
                }
            }
            for (&w, sources) in self.rev_pairs[e_idx].iter() {
                for &v in sources.iter() {
                    rev_pairs.push((e_idx as u32, w.0, v.0));
                }
            }
            for (&v, &count) in self.support[e_idx].iter() {
                if count > 0 {
                    support.push((e_idx as u32, v.0, count));
                }
            }
        }
        pairs.sort_unstable();
        rev_pairs.sort_unstable();
        support.sort_unstable();
        BsimAuxSnapshot {
            cand_bits: self.cand_bits.clone(),
            match_bits: self.match_bits.clone(),
            match_count: self.match_count.clone(),
            pairs,
            rev_pairs,
            support,
        }
    }

    /// The pattern the index maintains matches for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The landmark index currently backing distance queries.
    pub fn landmarks(&self) -> &LandmarkIndex {
        &self.landmarks
    }

    /// The current maximum bounded-simulation match (cached between
    /// mutations; see [`BoundedIndex::matches_view`] for a zero-copy borrow).
    ///
    /// # Panics
    /// Panics if the index is [poisoned](BoundedIndex::poisoned); use
    /// [`BoundedIndex::try_matches`] for a typed error.
    pub fn matches(&self) -> MatchRelation {
        self.matches_view().clone()
    }

    /// Fallible [`BoundedIndex::matches`]: returns [`ApplyError::Poisoned`]
    /// instead of panicking when a contained mid-batch panic left the
    /// auxiliary state unusable. Routed through
    /// [`BoundedIndex::try_matches_view`], so the fallible surface has a
    /// single poison check.
    pub fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        Ok(self.try_matches_view()?.clone())
    }

    /// True if a contained mid-batch panic left the auxiliary state
    /// (landmark vectors, pair sets, support counters) potentially torn. A
    /// poisoned index refuses matches and further updates until
    /// [`BoundedIndex::recover`] rebuilds it; the *graph* was rolled back to
    /// its pre-batch edge set by the containment.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Rebuilds the index (landmark vectors included) from the graph via the
    /// ordinary sharded cold-start build, clearing the
    /// [poisoned](BoundedIndex::poisoned) flag. By the build-equivalence
    /// invariant the result is bit-identical to
    /// `BoundedIndex::build(&pattern, graph)`.
    pub fn recover(&mut self, graph: &DataGraph) {
        self.recover_with_shards(graph, configured_shards());
    }

    /// [`BoundedIndex::recover`] with an explicit shard count. Delegates to
    /// the one shared rebuild-and-clear-poison step,
    /// [`IncrementalEngine::recover_with_shards`].
    pub fn recover_with_shards(&mut self, graph: &DataGraph, shards: usize) {
        IncrementalEngine::recover_with_shards(self, graph, shards);
    }

    /// Borrowed view of the current maximum match, rebuilt at most once per
    /// mutation, with deterministically sorted match lists.
    ///
    /// # Panics
    /// Panics if the index is [poisoned](BoundedIndex::poisoned); use
    /// [`BoundedIndex::try_matches_view`] for a typed error.
    pub fn matches_view(&self) -> Ref<'_, MatchRelation> {
        assert!(!self.poisoned, "bounded index is poisoned; call recover() before reading");
        self.try_matches_view().expect("poison checked above")
    }

    /// Fallible [`BoundedIndex::matches_view`]: returns
    /// [`ApplyError::Poisoned`] instead of panicking, completing the
    /// fallible read surface (`try_matches` clones, `try_matches_view`
    /// borrows).
    pub fn try_matches_view(&self) -> Result<Ref<'_, MatchRelation>, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        {
            let mut cache = self.cache.borrow_mut();
            if cache.is_none() {
                *cache = Some(self.rebuild_relation());
            }
        }
        Ok(Ref::map(self.cache.borrow(), |cache| cache.as_ref().expect("cache filled above")))
    }

    /// True while the lazily materialised view behind
    /// [`BoundedIndex::matches_view`] is cached. Batches whose emitted
    /// [`MatchDelta`] is empty keep a warm cache warm (no re-materialisation);
    /// non-empty deltas patch it in place — the delta suite pins both.
    pub fn view_cache_is_warm(&self) -> bool {
        self.cache.borrow().is_some()
    }

    fn rebuild_relation(&self) -> MatchRelation {
        rebuild_relation_from_bits(&self.match_bits, &self.match_count, self.np, self.nv)
    }

    fn invalidate_cache(&mut self) {
        *self.cache.get_mut() = None;
    }

    /// True if every pattern node currently has at least one match.
    pub fn is_match(&self) -> bool {
        !self.match_count.is_empty() && self.match_count.iter().all(|&c| c > 0)
    }

    /// The current matches of one pattern node, sorted (partial information).
    pub fn match_set(&self, u: PatternNodeId) -> Vec<NodeId> {
        let mask = 1u64 << u.index();
        (0..self.nv).filter(|&v| self.match_bits[v] & mask != 0).map(NodeId::from_index).collect()
    }

    /// True if `v` currently matches `u` (one word op). Nodes the index has
    /// not yet observed (added after build) match nothing.
    #[inline]
    pub fn contains(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.match_bits.get(v.index()).is_some_and(|&bits| bits & (1 << u.index()) != 0)
    }

    /// Builds the result graph `G_r` for the current match.
    pub fn result_graph(&self) -> ResultGraph {
        let mut result = ResultGraph::new();
        let matches = self.matches_view();
        for (_, v) in matches.pairs() {
            result.add_node(v);
        }
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            for &v in matches.matches(edge.from) {
                if let Some(targets) = self.pairs[e_idx].get(&v) {
                    for &w in targets {
                        if matches.contains(edge.to, w) {
                            result.add_edge(v, w, e_idx as u32);
                        }
                    }
                }
            }
        }
        result
    }

    /// `IncBMatch+`: single edge insertion. As an insertion, the emitted
    /// [`MatchDelta`] rides the monotone fast path (no removal tracking).
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> ApplyOutcome {
        let batch = BatchUpdate::from_updates(vec![Update::insert(from, to)]);
        self.apply_batch(graph, &batch)
    }

    /// `IncBMatch-`: single edge deletion. Returns the batch statistics plus
    /// the emitted [`MatchDelta`].
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> ApplyOutcome {
        let batch = BatchUpdate::from_updates(vec![Update::delete(from, to)]);
        self.apply_batch(graph, &batch)
    }

    /// `IncBMatch`: batch updates. The graph is updated, the landmark and
    /// distance vectors are maintained by `IncLM`, the affected cc/cs/ss pairs
    /// are re-evaluated (maintaining the support counters; the distance
    /// checks run on [`configured_shards`] threads when the affected area is
    /// large enough), and the match is repaired by demotion/promotion
    /// propagation over the pairs.
    ///
    /// Delegates to [`BoundedIndex::apply_batch_lenient`]: structurally
    /// invalid updates (out-of-range node ids) are skipped, redundant ones
    /// are neutralised by the net-effect reduction — identical behaviour to
    /// the historical infallible path for well-formed batches.
    ///
    /// # Panics
    /// Panics if the index is [poisoned](BoundedIndex::poisoned), or —
    /// re-raising a contained mid-batch panic — after a rollback/poison (see
    /// the [module docs](crate::incremental)). Use
    /// [`BoundedIndex::try_apply_batch`] for typed errors.
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, configured_shards())
    }

    /// [`BoundedIndex::apply_batch`] with an explicit shard count for the
    /// batch reduction and the pair re-evaluation step. Results — the match,
    /// the [`AffStats`] and the emitted [`MatchDelta`] — are bit-identical
    /// for every count.
    pub fn apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> ApplyOutcome {
        let lenient = unwrap_apply(self.apply_batch_lenient_with_shards(graph, batch, shards));
        ApplyOutcome { stats: lenient.stats, delta: lenient.delta }
    }

    /// The canonical fallible batch application: validates `batch` against
    /// the current graph ([`igpm_graph::update::validate_batch`]) and rejects
    /// it **whole** — [`ApplyError::InvalidBatch`], nothing touched — if any
    /// update is out of range, a duplicate insert or a removal of an absent
    /// edge. A mid-batch panic (an armed [`igpm_graph::fail`] failpoint or an
    /// engine bug) is contained: the graph is rolled back to its pre-batch
    /// edge set and the call returns [`ApplyError::StagePanicked`] telling
    /// whether the index [poisoned](BoundedIndex::poisoned) itself or stayed
    /// usable.
    pub fn try_apply_batch(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
    ) -> Result<ApplyOutcome, ApplyError> {
        self.try_apply_batch_with_shards(graph, batch, configured_shards())
    }

    /// [`BoundedIndex::try_apply_batch`] with an explicit shard count.
    pub fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        let rejections = validate_batch(graph, batch);
        if !rejections.is_empty() {
            return Err(ApplyError::InvalidBatch(rejections));
        }
        self.apply_batch_contained(graph, batch, shards)
    }

    /// The explicit *lossy* batch application: out-of-range updates are
    /// stripped before the engine sees the batch, duplicate inserts and
    /// absent deletes are neutralised by the net-effect reduction, and every
    /// skipped update is reported in [`LenientApply::rejected`]. For a batch
    /// with no invalid updates this is byte-identical to
    /// [`BoundedIndex::apply_batch`].
    pub fn apply_batch_lenient(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
    ) -> Result<LenientApply, ApplyError> {
        self.apply_batch_lenient_with_shards(graph, batch, configured_shards())
    }

    /// [`BoundedIndex::apply_batch_lenient`] with an explicit shard count.
    pub fn apply_batch_lenient_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<LenientApply, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        // Rejections are positioned against the ORIGINAL batch; the strip
        // below changes the layout the engine sees but not the report.
        let rejections = validate_batch(graph, batch);
        let outcome = match strip_out_of_range(batch, &rejections) {
            Some(stripped) => self.apply_batch_contained(graph, &stripped, shards)?,
            None => self.apply_batch_contained(graph, batch, shards)?,
        };
        Ok(LenientApply { stats: outcome.stats, delta: outcome.delta, rejected: rejections })
    }

    /// Runs the batch pipeline under `catch_unwind` and converts an unwind
    /// into rollback-or-poison (see [`BoundedIndex::contain_batch_panic`]).
    /// The scoped worker threads of the sharded stages funnel their panics
    /// through their join handles, so one containment point covers the
    /// sequential and the fanned-out engines alike.
    fn apply_batch_contained(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        let mut stage = PipelineStage::Prepare;
        let mut applied: Vec<Update> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.apply_batch_stages(graph, batch, shards, &mut stage, &mut applied)
        }));
        match outcome {
            Ok(outcome) => Ok(outcome),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                Err(ApplyError::StagePanicked(
                    self.contain_batch_panic(graph, stage, &applied, message),
                ))
            }
        }
    }

    /// The batch pipeline proper — [`BoundedIndex::apply_batch`]'s
    /// historical body, annotated with the stage transitions and failpoints
    /// the containment relies on. Unlike the plain engine, the graph is
    /// mutated *inside* the `Landmark` stage (`IncLM` applies each effective
    /// update to the graph as it maintains the distance vectors), so
    /// `applied` is recorded before that stage begins.
    fn apply_batch_stages(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
        stage: &mut PipelineStage,
        applied: &mut Vec<Update>,
    ) -> ApplyOutcome {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };
        // Delta tracking starts before any match-bit mutation — including the
        // childless-pattern matches `ensure_node_capacity` grants brand-new
        // nodes. Insert-only batches take the monotone fast path: inserted
        // edges can only shorten distances, so bounds only become *more*
        // satisfiable and the removal side of the tracker provably stays
        // empty (CALM).
        let was_match = self.is_match();
        self.tracker.arm(batch.iter().all(Update::is_insert));
        // Nodes added since the last index operation join the candidate
        // pipeline before anything is classified against the batch.
        self.ensure_node_capacity(graph);

        // Step 0: net-effect reduction on the same shard plan as the plain
        // engine (`minDelta` step 1, sharded by update source with a
        // deterministic first-touch merge). `IncLM` would reduce internally
        // anyway — sequentially; pre-reducing here keeps the effective list
        // identical (a reduced batch reduces to itself) while running the
        // reduction on `IGPM_SHARDS` threads for large batches. The distance
        // maintenance itself stays per-update: distance propagation is
        // order-dependent, unlike the edge-map mutation.
        let plan = ShardPlan::new(graph.node_count(), shards);
        *stage = PipelineStage::Reduce;
        fail::fire(fail::BSIM_REDUCE);
        let (effective, _) = igpm_graph::update::reduce_batch_sharded(graph, batch, plan);
        if effective.is_empty() {
            return self.finish_apply(stats, was_match);
        }

        // Step 1: maintain the landmark/distance vectors (IncLM) and collect
        // the nodes whose distance information changed. The pre-reduced entry
        // point skips IncLM's internal reduction — the list is already
        // minimal. The graph mutates here, one update at a time, interleaved
        // with the distance maintenance.
        *stage = PipelineStage::Landmark;
        applied.extend_from_slice(&effective);
        fail::fire(fail::BSIM_LANDMARK);
        let mut affected: FastHashSet<NodeId> = FastHashSet::default();
        let lm_stats =
            inc_lm_tracked_reduced(&mut self.landmarks, graph, &effective, &mut affected);
        stats.reduced_delta_g = lm_stats.updates_processed;
        stats.aux_changes += lm_stats.affected_entries;

        if lm_stats.updates_processed == 0 {
            return self.finish_apply(stats, was_match);
        }

        // Step 2: re-evaluate the pairs whose endpoints are affected. The
        // support counters absorb every pair transition; `1 → 0` transitions
        // on a matched source seed demotions, `0 → 1` transitions on an
        // unmatched candidate source seed promotions.
        *stage = PipelineStage::Refresh;
        fail::fire(fail::BSIM_REFRESH);
        let mut demotion_seeds: Vec<(u32, u32)> = Vec::new();
        let mut promotion_seeds: Vec<(u32, u32)> = Vec::new();
        self.refresh_pairs(
            graph,
            &affected,
            shards,
            &mut demotion_seeds,
            &mut promotion_seeds,
            &mut stats,
        );

        // Step 3: repair the match — demotions first, then promotions,
        // mirroring IncMatch (the SCC-joint pass of the promotion phase runs
        // sharded on the same plan).
        if !demotion_seeds.is_empty() {
            *stage = PipelineStage::Demote;
            fail::fire(fail::BSIM_DEMOTE);
            self.process_demotions(&mut demotion_seeds, &mut stats);
        }
        if !promotion_seeds.is_empty() || self.has_cycle {
            *stage = PipelineStage::Promote;
            fail::fire(fail::BSIM_PROMOTE);
            self.process_promotions(promotion_seeds, &mut stats, plan);
        }
        self.finish_apply(stats, was_match)
    }

    /// Finalises a batch: converts the tracker's raw match-bit flips into the
    /// observable [`MatchDelta`] (collapsing to/from the empty view when
    /// totality flips, see [`finalize_delta`]) and maintains the cached view
    /// incrementally — kept untouched on an empty delta, patched in place
    /// from the delta otherwise — instead of the old unconditional
    /// invalidation.
    fn finish_apply(&mut self, stats: AffStats, was_match: bool) -> ApplyOutcome {
        let now_match = self.is_match();
        let (match_bits, match_count, np, nv) =
            (&self.match_bits, &self.match_count, self.np, self.nv);
        let (delta, cache_op): (MatchDelta, CacheOp) = finalize_delta(
            &mut self.tracker,
            was_match,
            now_match,
            np,
            || raw_bit_pairs(match_bits, nv),
            || rebuild_relation_from_bits(match_bits, match_count, np, nv),
        );
        match cache_op {
            CacheOp::Keep => {}
            CacheOp::Patch => {
                if let Some(cache) = self.cache.get_mut().as_mut() {
                    delta.apply_to(cache);
                }
            }
            CacheOp::Install(view) => *self.cache.get_mut() = Some(view),
        }
        ApplyOutcome { stats, delta }
    }

    /// Converts a mid-batch unwind into the transactional contract. The
    /// graph is *always* rolled back to its pre-batch edge set
    /// ([`DataGraph::rollback_updates`] tolerates the partially-applied
    /// states an `IncLM` interruption leaves). The index poisons itself
    /// unless the panic landed in the `Reduce` stage — the only stage that
    /// provably touches nothing: from `Landmark` onwards the landmark
    /// vectors mutate interleaved with the graph, so the pre-batch auxiliary
    /// state cannot be assumed intact.
    #[cold]
    fn contain_batch_panic(
        &mut self,
        graph: &mut DataGraph,
        stage: PipelineStage,
        applied: &[Update],
        message: String,
    ) -> StagePanic {
        graph.rollback_updates(applied);
        self.invalidate_cache();
        self.tracker.reset();
        let poisoned = !matches!(stage, PipelineStage::Reduce);
        self.poisoned = poisoned;
        StagePanic { stage: stage.label(), message, rolled_back: true, poisoned }
    }

    /// The pattern-dependent pipeline of one service batch (see
    /// [`IncrementalEngine::try_apply_shared`]). The service has already run
    /// the net-effect reduction, mutated the graph and maintained the shared
    /// [`LandmarkIndex`] (`IncLM` runs exactly once per batch no matter how
    /// many patterns are registered); what remains per pattern is the
    /// affected-pair refresh and the demotion/promotion drains, fed by the
    /// affected set the shared maintenance collected. The caller has already
    /// swapped the shared landmark index into `self.landmarks`.
    fn apply_shared_stages(
        &mut self,
        graph: &DataGraph,
        batch: &SharedBatch<'_>,
        mutation: &SharedMutation,
        shards: usize,
        stage: &mut PipelineStage,
    ) -> ApplyOutcome {
        let mut stats = AffStats { delta_g: batch.batch_len, ..AffStats::default() };
        let was_match = self.is_match();
        self.tracker.arm(batch.monotone);
        self.ensure_node_capacity(graph);
        let plan = ShardPlan::new(graph.node_count(), shards);

        if batch.effective.is_empty() {
            return self.finish_apply(stats, was_match);
        }
        // Mirror the standalone pipeline's accounting: the landmark
        // maintenance ran once service-wide, so every pattern reports the
        // same shared reduction/entry counts it would have measured itself.
        stats.reduced_delta_g = mutation.updates_processed;
        stats.aux_changes += mutation.affected_entries;
        if mutation.updates_processed == 0 {
            return self.finish_apply(stats, was_match);
        }
        let affected = mutation
            .affected
            .as_ref()
            .expect("bounded service batches carry the shared affected set");

        *stage = PipelineStage::Refresh;
        fail::fire(fail::BSIM_REFRESH);
        let mut demotion_seeds: Vec<(u32, u32)> = Vec::new();
        let mut promotion_seeds: Vec<(u32, u32)> = Vec::new();
        self.refresh_pairs(
            graph,
            affected,
            shards,
            &mut demotion_seeds,
            &mut promotion_seeds,
            &mut stats,
        );

        if !demotion_seeds.is_empty() {
            *stage = PipelineStage::Demote;
            fail::fire(fail::BSIM_DEMOTE);
            self.process_demotions(&mut demotion_seeds, &mut stats);
        }
        if !promotion_seeds.is_empty() || self.has_cycle {
            *stage = PipelineStage::Promote;
            fail::fire(fail::BSIM_PROMOTE);
            self.process_promotions(promotion_seeds, &mut stats, plan);
        }
        self.finish_apply(stats, was_match)
    }

    /// Converts a contained panic of the service-mode pipeline into the
    /// always-poison contract of [`IncrementalEngine::try_apply_shared`]: the
    /// graph mutation and landmark maintenance are already committed
    /// service-wide, so the engine is behind the graph even when the panic
    /// interrupted a stage that had not yet touched the pair sets. Recovery
    /// rebuilds from the current graph.
    #[cold]
    fn contain_shared_panic(&mut self, stage: PipelineStage, message: String) -> StagePanic {
        self.invalidate_cache();
        self.tracker.reset();
        self.poisoned = true;
        StagePanic { stage: stage.label(), message, rolled_back: false, poisoned: true }
    }

    // ------------------------------------------------------------------
    // Pair + support maintenance
    // ------------------------------------------------------------------

    /// Derives the pair sets and support counters of every pattern edge. The
    /// distance checks — the dominant cost of the cold start — are evaluated
    /// through [`evaluate_pair_bounds`] (read-only, chunked onto scoped
    /// threads when `shards > 1` and the pair count warrants it) and the
    /// verdicts are committed sequentially in enumeration order, so the
    /// resulting structures are identical for every shard count.
    fn rebuild_all_pairs(&mut self, graph: &DataGraph, cand_lists: &[Vec<NodeId>], shards: usize) {
        // Evaluation is blocked by source rows so the verdict buffer stays
        // bounded (≈ EVAL_BLOCK_PAIRS booleans) instead of O(|sources| ·
        // |targets|); blocks run in enumeration order and each block commits
        // before the next evaluates, so the structures are built by exactly
        // the same insertion sequence as an unblocked sequential scan.
        const EVAL_BLOCK_PAIRS: usize = 1 << 22;
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            let sources = &cand_lists[edge.from.index()];
            let targets = &cand_lists[edge.to.index()];
            let mut forward: FastHashMap<NodeId, FastHashSet<NodeId>> = FastHashMap::default();
            let mut backward: FastHashMap<NodeId, FastHashSet<NodeId>> = FastHashMap::default();
            let mut support: FastHashMap<NodeId, u32> = FastHashMap::default();
            let rows_per_block = (EVAL_BLOCK_PAIRS / targets.len().max(1)).max(1);
            for block in sources.chunks(rows_per_block) {
                let verdicts = evaluate_pair_bounds(
                    graph,
                    &self.landmarks,
                    block,
                    targets,
                    edge.bound,
                    shards,
                );
                for (i, &v) in block.iter().enumerate() {
                    for (j, &w) in targets.iter().enumerate() {
                        if verdicts[i * targets.len() + j] {
                            forward.entry(v).or_default().insert(w);
                            backward.entry(w).or_default().insert(v);
                            // All targets are initial matches, so the initial
                            // support is simply the pair count.
                            *support.entry(v).or_insert(0) += 1;
                        }
                    }
                }
            }
            self.pairs[e_idx] = forward;
            self.rev_pairs[e_idx] = backward;
            self.support[e_idx] = support;
        }
    }

    /// Initial greatest-fixpoint refinement over the pair sets, counter-backed
    /// (replaces the seed's repeated full-relation scans). Returns the drain
    /// statistics (the build [`AffStats`]).
    fn refine_initial_matches(&mut self) -> AffStats {
        let mut worklist: Vec<(u32, u32)> = Vec::new();
        for v in 0..self.nv {
            let mut bits = self.match_bits[v];
            while bits != 0 {
                let u = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !self.has_counter_support(u, NodeId::from_index(v)) {
                    worklist.push((u as u32, v as u32));
                }
            }
        }
        let mut stats = AffStats::default();
        self.process_demotions(&mut worklist, &mut stats);
        stats
    }

    /// Does `v` (as a match of `u`) have, for every pattern edge `(u, u2)`, a
    /// pair target currently matching `u2`? One counter read per edge.
    #[inline]
    fn has_counter_support(&self, u: usize, v: NodeId) -> bool {
        self.edges_from[u].iter().all(|&e| self.support[e].get(&v).copied().unwrap_or(0) > 0)
    }

    /// Re-evaluates every pair with an affected endpoint, maintaining
    /// `pairs`/`rev_pairs`/`support` and collecting demotion/promotion seeds.
    ///
    /// The affected pairs are enumerated in a fixed order, their distance
    /// bounds are checked read-only (on threads when [`PARALLEL_EVAL_THRESHOLD`]
    /// items warrant it — the expensive part of the batch path), and the
    /// verdicts are committed sequentially in enumeration order, making the
    /// result independent of the shard count.
    fn refresh_pairs(
        &mut self,
        graph: &DataGraph,
        affected: &FastHashSet<NodeId>,
        shards: usize,
        demotion_seeds: &mut Vec<(u32, u32)>,
        promotion_seeds: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        let mut items: Vec<(u32, NodeId, NodeId)> = Vec::new();
        for e_idx in 0..self.pattern.edge_count() {
            let edge = self.pattern.edges()[e_idx];
            let from_bit = 1u64 << edge.from.index();
            let to_bit = 1u64 << edge.to.index();
            // Pairs whose *source* is affected: re-evaluate against the
            // target *candidate list*, not all of V.
            for &x in affected.iter() {
                if x.index() >= self.nv || self.cand_bits[x.index()] & from_bit == 0 {
                    continue;
                }
                for &w in &self.cand_lists[edge.to.index()] {
                    items.push((e_idx as u32, x, w));
                }
            }
            // Pairs whose *target* is affected (skip sources already handled).
            for &x in affected.iter() {
                if x.index() >= self.nv || self.cand_bits[x.index()] & to_bit == 0 {
                    continue;
                }
                for &v in &self.cand_lists[edge.from.index()] {
                    if affected.contains(&v) {
                        continue;
                    }
                    items.push((e_idx as u32, v, x));
                }
            }
        }
        let verdicts = self.evaluate_bounds(graph, &items, shards);
        for (&(e_idx, v, w), &now) in items.iter().zip(verdicts.iter()) {
            self.commit_pair(e_idx as usize, v, w, now, demotion_seeds, promotion_seeds, stats);
        }
    }

    /// Evaluates the distance bound of every enumerated pair against the
    /// current landmark vectors. Pure reads — chunked across scoped threads
    /// when there are enough items to amortise the spawns.
    fn evaluate_bounds(
        &self,
        graph: &DataGraph,
        items: &[(u32, NodeId, NodeId)],
        shards: usize,
    ) -> Vec<bool> {
        let edges = self.pattern.edges();
        let landmarks = &self.landmarks;
        let eval = |&(e_idx, v, w): &(u32, NodeId, NodeId)| {
            satisfies_bound(graph, landmarks, v, w, edges[e_idx as usize].bound)
        };
        let shards = shards.max(1);
        if shards == 1 || items.len() < PARALLEL_EVAL_THRESHOLD {
            return items.iter().map(eval).collect();
        }
        let chunk = items.len().div_ceil(shards);
        let mut verdicts = vec![false; items.len()];
        std::thread::scope(|scope| {
            for (item_chunk, verdict_chunk) in items.chunks(chunk).zip(verdicts.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (item, slot) in item_chunk.iter().zip(verdict_chunk.iter_mut()) {
                        *slot = eval(item);
                    }
                });
            }
        });
        verdicts
    }

    /// Applies the verdict for one pair `(v, w)` of pattern edge `e_idx`,
    /// updating the pair sets and support counters when its status flipped.
    #[allow(clippy::too_many_arguments)]
    fn commit_pair(
        &mut self,
        e_idx: usize,
        v: NodeId,
        w: NodeId,
        now: bool,
        demotion_seeds: &mut Vec<(u32, u32)>,
        promotion_seeds: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        let edge = self.pattern.edges()[e_idx];
        let before = self.pairs[e_idx].get(&v).map(|s| s.contains(&w)).unwrap_or(false);
        if now == before {
            return;
        }
        stats.aux_changes += 1;
        let target_matches = self.match_bits[w.index()] & (1 << edge.to.index()) != 0;
        let source_bit = 1u64 << edge.from.index();
        if now {
            self.pairs[e_idx].entry(v).or_default().insert(w);
            self.rev_pairs[e_idx].entry(w).or_default().insert(v);
            if target_matches {
                let counter = self.support[e_idx].entry(v).or_insert(0);
                *counter += 1;
                stats.counter_updates += 1;
                if *counter == 1
                    && self.cand_bits[v.index()] & source_bit != 0
                    && self.match_bits[v.index()] & source_bit == 0
                {
                    promotion_seeds.push((edge.from.index() as u32, v.0));
                }
            }
        } else {
            if let Some(set) = self.pairs[e_idx].get_mut(&v) {
                set.remove(&w);
            }
            if let Some(set) = self.rev_pairs[e_idx].get_mut(&w) {
                set.remove(&v);
            }
            if target_matches {
                let counter = self.support[e_idx].get_mut(&v).expect("supported pair counted");
                debug_assert!(*counter > 0, "support underflow on pair ({v}, {w})");
                *counter -= 1;
                stats.counter_updates += 1;
                if *counter == 0 && self.match_bits[v.index()] & source_bit != 0 {
                    demotion_seeds.push((edge.from.index() as u32, v.0));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Match maintenance over the pair sets
    // ------------------------------------------------------------------

    /// Demotion propagation seeded by support counters that reached zero.
    fn process_demotions(&mut self, worklist: &mut Vec<(u32, u32)>, stats: &mut AffStats) {
        while let Some((u, v)) = worklist.pop() {
            let u = u as usize;
            let v_node = NodeId(v);
            stats.nodes_visited += 1;
            if self.match_bits[v as usize] & (1 << u) == 0 {
                continue;
            }
            if self.has_counter_support(u, v_node) {
                continue;
            }
            self.match_bits[v as usize] &= !(1 << u);
            self.match_count[u] -= 1;
            self.tracker.record_removed(u, v);
            stats.matches_removed += 1;
            stats.aux_changes += 1;
            // Every source that used v as a pair target for a pattern edge
            // ending in u loses one unit of support.
            for i in 0..self.edges_to[u].len() {
                let e_idx = self.edges_to[u][i];
                let Some(sources) = self.rev_pairs[e_idx].get(&v_node) else { continue };
                let sources: Vec<NodeId> = sources.iter().copied().collect();
                let source_pattern = self.pattern.edges()[e_idx].from.index();
                for p in sources {
                    let counter =
                        self.support[e_idx].get_mut(&p).expect("paired source has support entry");
                    debug_assert!(*counter > 0, "support underflow demoting (u{u}, n{v})");
                    *counter -= 1;
                    stats.counter_updates += 1;
                    if *counter == 0 && self.match_bits[p.index()] & (1 << source_pattern) != 0 {
                        worklist.push((source_pattern as u32, p.0));
                    }
                }
            }
        }
    }

    /// Promotes the pair `(u, v)` and bumps the support of every paired
    /// source; `0 → 1` transitions re-enqueue unmatched candidate sources.
    fn promote(
        &mut self,
        u: usize,
        v: NodeId,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        self.match_bits[v.index()] |= 1 << u;
        self.match_count[u] += 1;
        self.tracker.record_inserted(u, v.0);
        stats.matches_added += 1;
        stats.aux_changes += 1;
        for i in 0..self.edges_to[u].len() {
            let e_idx = self.edges_to[u][i];
            let Some(sources) = self.rev_pairs[e_idx].get(&v) else { continue };
            let sources: Vec<NodeId> = sources.iter().copied().collect();
            let source_pattern = self.pattern.edges()[e_idx].from.index();
            let source_bit = 1u64 << source_pattern;
            for p in sources {
                let counter = self.support[e_idx].entry(p).or_insert(0);
                *counter += 1;
                stats.counter_updates += 1;
                if *counter == 1
                    && self.cand_bits[p.index()] & source_bit != 0
                    && self.match_bits[p.index()] & source_bit == 0
                {
                    worklist.push((source_pattern as u32, p.0));
                }
            }
        }
    }

    /// Promotion propagation, with a joint pass for pattern SCCs (the
    /// bounded-simulation analogue of propCS / propCC), the joint pass
    /// sharded on `plan` (see [`BoundedIndex::promote_sccs`]).
    fn process_promotions(
        &mut self,
        mut worklist: Vec<(u32, u32)>,
        stats: &mut AffStats,
        plan: ShardPlan,
    ) {
        let mut run_cc = self.has_cycle;
        loop {
            let promoted_cs = self.promote_from_worklist(&mut worklist, stats);
            if promoted_cs {
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.promote_sccs(stats, &mut worklist, plan);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                run_cc = true;
            }
        }
    }

    fn promote_from_worklist(
        &mut self,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) -> bool {
        let mut promoted_any = false;
        while let Some((u, v)) = worklist.pop() {
            let u = u as usize;
            let v_node = NodeId(v);
            stats.nodes_visited += 1;
            let bit = 1u64 << u;
            if self.match_bits[v as usize] & bit != 0 || self.cand_bits[v as usize] & bit == 0 {
                continue;
            }
            if !self.has_counter_support(u, v_node) {
                continue;
            }
            self.promote(u, v_node, worklist, stats);
            promoted_any = true;
        }
        promoted_any
    }

    /// Evaluates candidates of every nontrivial pattern SCC jointly:
    /// tentatively assume all of them match, refine down to the greatest
    /// fixpoint, and promote the survivors.
    ///
    /// The refinement is counter-backed, mirroring `sim.rs::prop_cc`: per
    /// (candidate `v`, SCC-internal pattern edge `e`) a *tentative support*
    /// counter `tsup[(v, e)] = |pairs[e][v] ∩ tentative(e.to)|` is derived
    /// once, and a worklist eliminates non-viable assumptions, decrementing
    /// the counters of their paired tentative sources — instead of the
    /// previous repeated full-candidate-set fixpoint sweeps that rescanned
    /// every pair target per iteration.
    ///
    /// Sharded like `sim.rs::prop_cc`: each SCC's joint evaluation is a pure
    /// read ([`evaluate_bsim_scc_joint`]) run speculatively on scoped threads
    /// (one worker per SCC, striped over the enumeration), verdicts are
    /// committed in enumeration order, and a committed promotion switches the
    /// remaining SCCs to live re-evaluation — reproducing the sequential
    /// cross-SCC data flow exactly. Within one SCC the `O(|V|)` tentative
    /// gather, the `tsup` derivation and the viability seed scan are chunked.
    /// Bit-identical (matches, pairs, support counters, [`AffStats`]) for
    /// every shard count.
    fn promote_sccs(
        &mut self,
        stats: &mut AffStats,
        worklist: &mut Vec<(u32, u32)>,
        plan: ShardPlan,
    ) -> bool {
        let comp_masks: Vec<u64> = self
            .scc
            .components()
            .filter(|&comp| self.scc.is_nontrivial(comp))
            .map(|comp| self.scc.members(comp).iter().fold(0u64, |mask, &u| mask | (1 << u)))
            .collect();
        if comp_masks.is_empty() {
            return false;
        }
        // The bounded joint evaluation walks pair *sets* per candidate —
        // orders of magnitude more work per item than a counter bump — so the
        // pair-evaluation spawn threshold applies, not the counter one.
        let fan_out = plan.count > 1 && self.nv >= PARALLEL_EVAL_THRESHOLD;

        // Phase A — speculative read-only evaluation (multi-SCC patterns
        // only; a single SCC parallelises inside its evaluation instead),
        // through the shared striping helper
        // ([`crate::incremental::speculate_scc_verdicts`]).
        let mut verdicts: Vec<Option<BsimSccVerdict>> = if fan_out && comp_masks.len() > 1 {
            let ctx = self.scc_eval_ctx();
            crate::incremental::speculate_scc_verdicts(&comp_masks, plan.count, |mask| {
                evaluate_bsim_scc_joint(ctx, mask, plan, false)
            })
        } else {
            (0..comp_masks.len()).map(|_| None).collect()
        };

        // Phase B — ordered commit with dirty fallback.
        let mut dirty = false;
        let mut promoted_any = false;
        for (i, &comp_mask) in comp_masks.iter().enumerate() {
            let verdict = match (dirty, verdicts[i].take()) {
                (false, Some(verdict)) => verdict,
                _ => evaluate_bsim_scc_joint(self.scc_eval_ctx(), comp_mask, plan, fan_out),
            };
            stats.merge(verdict.stats);
            if verdict.survivors.is_empty() {
                continue;
            }
            for (v, mut bits) in verdict.survivors {
                while bits != 0 {
                    let u = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.promote(u, NodeId(v), worklist, stats);
                }
            }
            promoted_any = true;
            dirty = true;
        }
        promoted_any
    }

    /// The read-only view of the index state that [`evaluate_bsim_scc_joint`]
    /// needs — plain `Sync` refs, so worker threads can hold it without
    /// capturing the index (whose lazy match cache is not `Sync`).
    fn scc_eval_ctx(&self) -> BsimSccCtx<'_> {
        BsimSccCtx {
            nv: self.nv,
            cand_bits: &self.cand_bits,
            match_bits: &self.match_bits,
            pairs: &self.pairs,
            rev_pairs: &self.rev_pairs,
            support: &self.support,
            edges_from: &self.edges_from,
            edges_to: &self.edges_to,
            edges: self.pattern.edges(),
        }
    }

    // ------------------------------------------------------------------
    // Node growth
    // ------------------------------------------------------------------

    /// Extends the per-node arrays when the graph gained nodes since the
    /// index was built, mirroring `SimulationIndex::ensure_node_capacity`.
    /// New nodes are isolated at this point (edges to them arrive through
    /// update batches, which also grow the landmark distance rows), so a new
    /// node matches a pattern node iff it satisfies the predicate of a
    /// *childless* pattern node; otherwise it starts as a candidate. Pair
    /// sets stay untouched: an isolated node reaches nothing, and the first
    /// edge updates touching it put it in the affected set of
    /// [`BoundedIndex::refresh_pairs`].
    fn ensure_node_capacity(&mut self, graph: &DataGraph) {
        let new_nv = graph.node_count();
        if new_nv <= self.nv {
            return;
        }
        self.cand_bits.resize(new_nv, 0);
        self.match_bits.resize(new_nv, 0);
        for v in self.nv..new_nv {
            let node = NodeId::from_index(v);
            for u in self.pattern.nodes() {
                if !self.pattern.predicate(u).satisfied_by(graph.attrs(node)) {
                    continue;
                }
                self.cand_bits[v] |= 1 << u.index();
                // Node ids grow monotonically, so pushing keeps the candidate
                // lists sorted.
                self.cand_lists[u.index()].push(node);
                if self.edges_from[u.index()].is_empty() {
                    // A childless-pattern match is a view-level insertion the
                    // tracker must see (it is vacuously supported, so no
                    // later stage of this batch can demote it again).
                    self.match_bits[v] |= 1 << u.index();
                    self.match_count[u.index()] += 1;
                    self.tracker.record_inserted(u.index(), v as u32);
                }
            }
        }
        self.nv = new_nv;
    }

    /// Recomputes every support counter from the pair sets and the match
    /// bitmasks (test-only consistency oracle).
    #[cfg(test)]
    fn assert_support_consistent(&self) {
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            let to_bit = 1u64 << edge.to.index();
            for v in 0..self.nv {
                let v_node = NodeId::from_index(v);
                let expected = self.pairs[e_idx]
                    .get(&v_node)
                    .map(|targets| {
                        targets.iter().filter(|w| self.match_bits[w.index()] & to_bit != 0).count()
                    })
                    .unwrap_or(0) as u32;
                let actual = self.support[e_idx].get(&v_node).copied().unwrap_or(0);
                assert_eq!(actual, expected, "support drift at edge {e_idx}, node n{v}");
            }
        }
    }
}

/// Materialises the observable view from the match bitmasks: the empty
/// relation when any pattern node is unmatched (`P ⋬ G`), otherwise one
/// sorted list per pattern node. A free function over the individual fields
/// so [`BoundedIndex::finish_apply`] can call it while the delta tracker is
/// mutably borrowed.
fn rebuild_relation_from_bits(
    match_bits: &[u64],
    match_count: &[usize],
    np: usize,
    nv: usize,
) -> MatchRelation {
    if match_count.contains(&0) {
        return MatchRelation::empty(np);
    }
    let mut lists: Vec<Vec<NodeId>> = match_count.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (v, &word) in match_bits.iter().take(nv).enumerate() {
        let mut bits = word;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            lists[u].push(NodeId::from_index(v));
        }
    }
    MatchRelation::from_lists(lists)
}

/// Enumerates the raw bitmask-level match pairs `(u, v)` regardless of
/// totality — the collapse case of [`finalize_delta`] reconstructs the
/// pre-batch view from these by undoing the batch's recorded churn.
fn raw_bit_pairs(match_bits: &[u64], nv: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (v, &word) in match_bits.iter().take(nv).enumerate() {
        let mut bits = word;
        while bits != 0 {
            let u = bits.trailing_zeros();
            bits &= bits - 1;
            pairs.push((u, v as u32));
        }
    }
    pairs
}

/// Read-only slices of a [`BoundedIndex`]'s state consumed by
/// [`evaluate_bsim_scc_joint`].
#[derive(Clone, Copy)]
struct BsimSccCtx<'a> {
    nv: usize,
    cand_bits: &'a [u64],
    match_bits: &'a [u64],
    pairs: &'a [FastHashMap<NodeId, FastHashSet<NodeId>>],
    rev_pairs: &'a [FastHashMap<NodeId, FastHashSet<NodeId>>],
    support: &'a [FastHashMap<NodeId, u32>],
    edges_from: &'a [Vec<usize>],
    edges_to: &'a [Vec<usize>],
    edges: &'a [PatternEdge],
}

/// Outcome of one SCC's joint evaluation over the pair sets: survivors in
/// ascending node order plus the evaluation's statistics. A pure function of
/// the state the evaluation read — independent of chunking.
struct BsimSccVerdict {
    survivors: Vec<(u32, u64)>,
    stats: AffStats,
}

/// The read-only SCC-joint evaluation behind [`BoundedIndex::promote_sccs`]:
/// tentatively assume every unmatched candidate of the SCC matches, refine to
/// the greatest fixpoint with tentative-support counters over the pair sets,
/// and report the survivors. Mutates nothing.
///
/// With `fan_out` set, the `O(|V|)` tentative gather, the `tsup` derivation
/// (sources owned by their chunk — disjoint-key union) and the viability seed
/// scan run chunked on scoped threads with ordered merges; the elimination
/// cascade is confluent and stays on the calling thread. The verdict and its
/// statistics are identical for every chunking.
fn evaluate_bsim_scc_joint(
    ctx: BsimSccCtx<'_>,
    comp_mask: u64,
    plan: ShardPlan,
    fan_out: bool,
) -> BsimSccVerdict {
    let mut stats = AffStats::default();

    // tentative[v] = pattern nodes of this SCC that v is tentatively assumed
    // to match (candidates that do not match yet), gathered in ascending
    // node order. Unlike the pair-walking steps below, one gather item is a
    // single mask read, so the spawn gate is the counter-work threshold.
    let gather_range = |range: std::ops::Range<usize>| {
        let mut out = Vec::new();
        for v in range {
            let bits = (ctx.cand_bits[v] & !ctx.match_bits[v]) & comp_mask;
            if bits != 0 {
                out.push((v as u32, bits));
            }
        }
        out
    };
    let gathered: Vec<(u32, u64)> =
        if fan_out && plan.count > 1 && ctx.nv >= PARALLEL_WORK_THRESHOLD {
            let gather_range = &gather_range;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..plan.count)
                    .map(|shard| {
                        let range = plan.range(shard);
                        scope.spawn(move || gather_range(range))
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("bsim gather panicked")).collect()
            })
        } else {
            gather_range(0..ctx.nv)
        };
    if gathered.is_empty() {
        return BsimSccVerdict { survivors: Vec::new(), stats };
    }
    let mut tentative: FastHashMap<u32, u64> = FastHashMap::default();
    for &(v, bits) in &gathered {
        tentative.insert(v, bits);
    }

    // tsup[(v, e)] = |pairs[e][v] ∩ tentative(e.to)| for SCC-internal pattern
    // edges `e` whose source `v` tentatively assumes `e.from`, chunked over
    // the gathered sources (a source's counters are owned by its chunk).
    let chunk_plan = ShardPlan::new(gathered.len(), plan.count);
    let chunked = fan_out && chunk_plan.count > 1 && gathered.len() >= PARALLEL_EVAL_THRESHOLD;
    let mut tsup: FastHashMap<(u32, u32), u32> = FastHashMap::default();
    if chunked {
        let tentative = &tentative;
        let partials: Vec<TsupChunk> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunk_plan.count)
                .map(|shard| {
                    let chunk = &gathered[chunk_plan.range(shard)];
                    scope.spawn(move || derive_bsim_tsup_chunk(ctx, tentative, comp_mask, chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("bsim tsup panicked")).collect()
        });
        for (partial, updates) in partials {
            tsup.extend(partial);
            stats.counter_updates += updates;
        }
    } else {
        let (partial, updates) = derive_bsim_tsup_chunk(ctx, &tentative, comp_mask, &gathered);
        tsup = partial;
        stats.counter_updates += updates;
    }

    // Seed the elimination worklist with every currently non-viable tentative
    // pair: some pattern edge out of `u` has neither real support (a counted
    // match target) nor tentative support.
    let mut eliminate: Vec<(u32, u32)> = if chunked {
        let tsup = &tsup;
        let chunks: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunk_plan.count)
                .map(|shard| {
                    let chunk = &gathered[chunk_plan.range(shard)];
                    scope.spawn(move || seed_bsim_eliminations_chunk(ctx, tsup, chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("bsim seed panicked")).collect()
        });
        chunks.concat()
    } else {
        seed_bsim_eliminations_chunk(ctx, &tsup, &gathered)
    };
    stats.nodes_visited +=
        gathered.iter().map(|&(_, bits)| bits.count_ones() as usize).sum::<usize>();

    // Eliminate with cascade: dropping the assumption (u, v) costs every
    // tentatively paired source one unit of support for the pattern edges
    // ending in u. Confluent; statistics count order-independent sets.
    while let Some((u, v)) = eliminate.pop() {
        let Some(bits) = tentative.get_mut(&v) else { continue };
        let bit = 1u64 << u;
        if *bits & bit == 0 {
            continue;
        }
        stats.nodes_visited += 1;
        *bits &= !bit;
        if *bits == 0 {
            tentative.remove(&v);
        }
        for &e_idx in &ctx.edges_to[u as usize] {
            let source_u = ctx.edges[e_idx].from.index();
            if comp_mask & (1 << source_u) == 0 {
                continue;
            }
            let Some(sources) = ctx.rev_pairs[e_idx].get(&NodeId(v)) else { continue };
            for &p in sources {
                let Some(counter) = tsup.get_mut(&(p.0, e_idx as u32)) else { continue };
                debug_assert!(*counter > 0, "tentative support underflow");
                *counter -= 1;
                stats.counter_updates += 1;
                if *counter == 0
                    && ctx.support[e_idx].get(&p).copied().unwrap_or(0) == 0
                    && tentative.get(&p.0).is_some_and(|&pb| pb & (1 << source_u) != 0)
                {
                    eliminate.push((source_u as u32, p.0));
                }
            }
        }
    }

    let mut survivors: Vec<(u32, u64)> = tentative.into_iter().collect();
    survivors.sort_unstable_by_key(|&(v, _)| v);
    BsimSccVerdict { survivors, stats }
}

/// One chunk's tentative-support counters plus the number of units counted
/// deriving them.
type TsupChunk = (FastHashMap<(u32, u32), u32>, usize);

/// Derives the tentative-support counters of one chunk of candidate sources
/// (`tsup[(v, e)] = |pairs[e][v] ∩ tentative(e.to)|`).
fn derive_bsim_tsup_chunk(
    ctx: BsimSccCtx<'_>,
    tentative: &FastHashMap<u32, u64>,
    comp_mask: u64,
    chunk: &[(u32, u64)],
) -> TsupChunk {
    let mut tsup: FastHashMap<(u32, u32), u32> = FastHashMap::default();
    let mut updates = 0usize;
    for &(v, bits) in chunk {
        let mut b = bits;
        while b != 0 {
            let u = b.trailing_zeros() as usize;
            b &= b - 1;
            for &e_idx in &ctx.edges_from[u] {
                let to_bit = 1u64 << ctx.edges[e_idx].to.index();
                if comp_mask & to_bit == 0 {
                    continue;
                }
                let Some(targets) = ctx.pairs[e_idx].get(&NodeId(v)) else { continue };
                let count = targets
                    .iter()
                    .filter(|w| tentative.get(&w.0).is_some_and(|&wbits| wbits & to_bit != 0))
                    .count() as u32;
                if count > 0 {
                    tsup.insert((v, e_idx as u32), count);
                    updates += count as usize;
                }
            }
        }
    }
    (tsup, updates)
}

/// Scans one chunk of tentative pairs for viability, returning the
/// non-viable ones in chunk order.
fn seed_bsim_eliminations_chunk(
    ctx: BsimSccCtx<'_>,
    tsup: &FastHashMap<(u32, u32), u32>,
    chunk: &[(u32, u64)],
) -> Vec<(u32, u32)> {
    let viable = |u: usize, v: u32| {
        ctx.edges_from[u].iter().all(|&e_idx| {
            ctx.support[e_idx].get(&NodeId(v)).copied().unwrap_or(0) > 0
                || tsup.get(&(v, e_idx as u32)).copied().unwrap_or(0) > 0
        })
    };
    let mut eliminate = Vec::new();
    for &(v, bits) in chunk {
        let mut b = bits;
        while b != 0 {
            let u = b.trailing_zeros() as usize;
            b &= b - 1;
            if !viable(u, v) {
                eliminate.push((u as u32, v));
            }
        }
    }
    eliminate
}

/// The recovery-orchestration view of the engine; every method delegates to
/// the inherent API of the same name (`rebuild_with_shards` to
/// [`BoundedIndex::build_with_shards`]).
impl IncrementalEngine for BoundedIndex {
    fn rebuild_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        Self::build_with_shards(pattern, graph, shards)
    }

    fn pattern(&self) -> &Pattern {
        self.pattern()
    }

    fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        BoundedIndex::try_apply_batch_with_shards(self, graph, batch, shards)
    }

    fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        BoundedIndex::try_matches(self)
    }

    fn poisoned(&self) -> bool {
        BoundedIndex::poisoned(self)
    }

    /// The landmark/distance index is graph-wide and pattern-independent, so
    /// the service maintains exactly one and every registered bounded pattern
    /// reads it — the sharing that makes multi-pattern `IncLM` cost
    /// independent of the pattern count.
    type Shared = LandmarkIndex;

    fn shared_build(graph: &DataGraph, shards: usize) -> Self::Shared {
        LandmarkIndex::build_with_shards(graph, LandmarkSelection::VertexCover, shards)
    }

    fn shared_stage() -> &'static str {
        PipelineStage::Landmark.label()
    }

    fn shared_mutate(
        shared: &mut LandmarkIndex,
        graph: &mut DataGraph,
        effective: &[Update],
        shards: usize,
    ) -> SharedMutation {
        let _ = shards;
        fail::fire(fail::BSIM_LANDMARK);
        let mut affected: FastHashSet<NodeId> = FastHashSet::default();
        let lm_stats = inc_lm_tracked_reduced(shared, graph, effective, &mut affected);
        SharedMutation {
            affected: Some(affected),
            updates_processed: lm_stats.updates_processed,
            affected_entries: lm_stats.affected_entries,
        }
    }

    fn build_in_service(
        pattern: &Pattern,
        graph: &DataGraph,
        shared: &mut LandmarkIndex,
        cand_lists: &[Arc<Vec<NodeId>>],
        shards: usize,
    ) -> Result<Self, BuildError> {
        if pattern.node_count() > MAX_PATTERN_NODES {
            return Err(BuildError::ArityTooLarge { arity: pattern.node_count() });
        }
        // The build consumes a `LandmarkIndex` by value; borrow the shared
        // one by swapping a zero-landmark placeholder in for its duration.
        // (`Explicit(vec![])` builds no distance vectors — it is free.)
        let placeholder =
            LandmarkIndex::build_with_shards(graph, LandmarkSelection::Explicit(Vec::new()), 1);
        let landmarks = std::mem::replace(shared, placeholder);
        let owned: Vec<Vec<NodeId>> = cand_lists.iter().map(|l| l.as_ref().clone()).collect();
        let mut engine =
            Self::build_with_landmarks_from_candidates(pattern, graph, landmarks, owned, shards);
        // Hand the real landmark index back to the service; the engine keeps
        // the placeholder and has the shared index swapped in around every
        // `try_apply_shared` / never reads distances outside it.
        std::mem::swap(&mut engine.landmarks, shared);
        Ok(engine)
    }

    fn try_apply_shared(
        &mut self,
        graph: &DataGraph,
        shared: &mut LandmarkIndex,
        batch: &SharedBatch<'_>,
        mutation: &SharedMutation,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        // Swap the shared landmark index in for the duration of the pipeline
        // (the affected-pair refresh queries distances through
        // `self.landmarks`), and back out unconditionally — even after a
        // contained panic the index itself is intact: the pipeline only
        // *reads* it, the one mutation site ran in `shared_mutate`.
        std::mem::swap(&mut self.landmarks, shared);
        let mut stage = PipelineStage::Prepare;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.apply_shared_stages(graph, batch, mutation, shards, &mut stage)
        }));
        std::mem::swap(&mut self.landmarks, shared);
        match outcome {
            Ok(outcome) => Ok(outcome),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                Err(ApplyError::StagePanicked(self.contain_shared_panic(stage, message)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::match_bounded_with_matrix;
    use igpm_generator::{
        degree_biased_deletions, degree_biased_insertions, generate_pattern, mixed_batch,
        synthetic_graph, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
    };
    use igpm_graph::{Attributes, EdgeBound, Predicate};

    /// The FriendFeed graph of Fig. 4 and the b-pattern P3 of Example 4.1:
    /// CTO -[2]-> DB, CTO -[1]-> Bio, DB -[1]-> Bio, DB -[*]-> CTO.
    struct Fixture {
        graph: DataGraph,
        pattern: Pattern,
        ann: NodeId,
        pat: NodeId,
        dan: NodeId,
        bill: NodeId,
        mat: NodeId,
        don: NodeId,
        tom: NodeId,
    }

    fn fixture() -> Fixture {
        let mut g = DataGraph::new();
        let person = |g: &mut DataGraph, name: &str, job: &str| {
            g.add_node(Attributes::new().with("name", name).with("job", job).with("label", job))
        };
        let ann = person(&mut g, "Ann", "CTO");
        let pat = person(&mut g, "Pat", "DB");
        let dan = person(&mut g, "Dan", "DB");
        let bill = person(&mut g, "Bill", "Bio");
        let mat = person(&mut g, "Mat", "Bio");
        let don = person(&mut g, "Don", "CTO");
        let tom = person(&mut g, "Tom", "Bio");
        let ross = person(&mut g, "Ross", "Med");
        g.add_edge(ann, pat);
        g.add_edge(pat, ann);
        g.add_edge(pat, bill);
        g.add_edge(ann, bill);
        g.add_edge(ann, dan);
        g.add_edge(dan, ann);
        g.add_edge(dan, mat);
        g.add_edge(mat, dan);
        g.add_edge(ross, tom);

        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_edge(cto, db, EdgeBound::Hops(2));
        p.add_edge(cto, bio, EdgeBound::Hops(1));
        p.add_edge(db, bio, EdgeBound::Hops(1));
        p.add_edge(db, cto, EdgeBound::Unbounded);
        Fixture { graph: g, pattern: p, ann, pat, dan, bill, mat, don, tom }
    }

    fn assert_consistent(
        index: &BoundedIndex,
        pattern: &Pattern,
        graph: &DataGraph,
        context: &str,
    ) {
        let expected = match_bounded_with_matrix(pattern, graph);
        assert_eq!(index.matches(), expected, "{context}: incremental result diverged from batch");
        index.assert_support_consistent();
    }

    #[test]
    fn example_4_1_initial_match() {
        let f = fixture();
        let index = BoundedIndex::build(&f.pattern, &f.graph);
        assert!(index.is_match());
        // M^k_sim(P3, G3) = {(CTO, Ann), (DB, Pat), (DB, Dan), (Bio, Bill), (Bio, Mat)}.
        assert_eq!(index.matches().matches(PatternNodeId(0)), &[f.ann]);
        assert_eq!(index.matches().matches(PatternNodeId(1)), &[f.pat, f.dan]);
        // Every Bio node (including the isolated Tom) matches the childless
        // pattern node Bio.
        assert_eq!(index.matches().matches(PatternNodeId(2)), &[f.bill, f.mat, f.tom]);
        assert_consistent(&index, &f.pattern, &f.graph, "initial build");
    }

    #[test]
    fn example_4_2_inserting_e2_adds_don_and_tom() {
        // Inserting e2 = (Don, Pat) gives Don a DB neighbour within 2 hops;
        // Example 4.2 expects Don (CTO) and Tom (Bio) to join the match once
        // the remaining insertions arrive. With e2, e1 = (Don, Tom) and
        // e4 = (Pat, Don) the new matches are exactly Don and Tom.
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        index.insert_edge(&mut f.graph, f.don, f.pat);
        assert_consistent(&index, &f.pattern, &f.graph, "after e2");
        let stats_e1 = index.insert_edge(&mut f.graph, f.don, f.tom);
        assert_consistent(&index, &f.pattern, &f.graph, "after e1");
        let stats_e4 = index.insert_edge(&mut f.graph, f.pat, f.don);
        assert_consistent(&index, &f.pattern, &f.graph, "after e4");
        assert!(index.matches().contains(PatternNodeId(0), f.don), "Don becomes a CTO match");
        assert!(index.matches().contains(PatternNodeId(2), f.tom), "Tom becomes a Bio match");
        // Don is promoted once both e2 and e1 are present; e4 changes nothing.
        assert!(stats_e1.stats.matches_added >= 1);
        assert_eq!(stats_e4.stats.matches_added, 0);
    }

    #[test]
    fn deletions_shrink_the_match() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        // Removing (Pat, Bill) leaves Pat without a Bio node within 1 hop.
        let stats = index.delete_edge(&mut f.graph, f.pat, f.bill);
        assert!(stats.stats.matches_removed >= 1);
        assert!(!index.matches().contains(PatternNodeId(1), f.pat));
        assert_consistent(&index, &f.pattern, &f.graph, "after deleting (Pat, Bill)");
        // Removing (Dan, Mat) as well destroys every DB match and hence the whole match.
        index.delete_edge(&mut f.graph, f.dan, f.mat);
        assert!(!index.is_match());
        assert_consistent(&index, &f.pattern, &f.graph, "after deleting (Dan, Mat)");
    }

    #[test]
    fn unboundedness_gadget_for_bounded_simulation() {
        // Theorem 6.1(1) gadget: pattern u -[*]-> t, graph made of three
        // chains; the match appears only when both bridging edges exist.
        let mut p = Pattern::new();
        let u = p.add_labeled_node("u");
        let t = p.add_labeled_node("t");
        p.add_edge(u, t, EdgeBound::Unbounded);

        let mut g = DataGraph::new();
        let us: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("u")).collect();
        let vs: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("v")).collect();
        let ts: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("t")).collect();
        for w in us.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        for w in ts.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(*ts.last().unwrap(), us[0]);

        let mut index = BoundedIndex::build(&p, &g);
        assert!(!index.is_match());
        index.insert_edge(&mut g, *us.last().unwrap(), vs[0]);
        assert!(!index.is_match(), "u-chain still cannot reach a t node");
        assert_consistent(&index, &p, &g, "after first bridge");
        let stats = index.insert_edge(&mut g, *vs.last().unwrap(), ts[0]);
        assert!(index.is_match(), "now every u node reaches every t node");
        assert_consistent(&index, &p, &g, "after second bridge");
        // All four u-labelled nodes become matches of the pattern node u.
        assert!(stats.stats.matches_added >= 4);
    }

    #[test]
    fn batch_updates_agree_with_batch_recomputation() {
        for seed in 0..2u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(120, 360, 4, seed + 300));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::new(4, 5, 1, 3, seed + 310).with_shape(PatternShape::General),
            );
            let mut index = BoundedIndex::build(&pattern, &graph);
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: initial"));
            for round in 0..3 {
                let batch = mixed_batch(&graph, 15, 15, seed * 31 + round);
                index.apply_batch(&mut graph, &batch);
                assert_consistent(
                    &index,
                    &pattern,
                    &graph,
                    &format!("seed {seed}, round {round}: batch"),
                );
            }
        }
    }

    #[test]
    fn unit_updates_agree_with_batch_recomputation() {
        for seed in 0..2u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(100, 300, 4, seed + 400));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::new(4, 5, 1, 2, seed + 410).with_shape(PatternShape::Dag),
            );
            let mut index = BoundedIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(12, seed + 420));
            let del = degree_biased_deletions(&graph, UpdateGenConfig::new(12, seed + 430));
            for (i, update) in ins.iter().chain(del.iter()).enumerate() {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
                if i % 6 == 0 {
                    assert_consistent(&index, &pattern, &graph, &format!("seed {seed}, step {i}"));
                }
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: final"));
        }
    }

    #[test]
    fn result_graph_uses_pair_edges() {
        let f = fixture();
        let index = BoundedIndex::build(&f.pattern, &f.graph);
        let gr = index.result_graph();
        // Ann reaches the DB nodes within 2 hops and the Bio nodes within 1 hop.
        assert!(gr.has_edge(f.ann, f.pat));
        assert!(gr.has_edge(f.ann, f.dan));
        assert!(gr.has_edge(f.ann, f.bill));
        // Pat reaches Ann via an unbounded path.
        assert!(gr.has_edge(f.pat, f.ann));
        assert!(!gr.contains_node(f.don));
    }

    #[test]
    fn no_op_updates_do_not_touch_the_match() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let before = index.matches();
        // Inserting an existing edge / deleting a missing edge are no-ops.
        let stats = index.insert_edge(&mut f.graph, f.ann, f.pat);
        assert_eq!(stats.stats.reduced_delta_g, 0);
        let stats = index.delete_edge(&mut f.graph, f.don, f.tom);
        assert_eq!(stats.stats.reduced_delta_g, 0);
        assert_eq!(index.matches(), before);
    }

    #[test]
    fn nodes_added_after_build_join_the_candidate_pipeline() {
        // Mirror of the SimulationIndex node-churn regression: nodes added
        // *after* the index is built must join the candidate pipeline, the
        // landmark rows must grow with them, and their first edges must be
        // classified live.
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);

        // A new DB person arrives and connects to Ann (CTO) and Bill (Bio):
        // they must become a DB match exactly like a from-scratch run says.
        let eve = f
            .graph
            .add_node(Attributes::new().with("name", "Eve").with("job", "DB").with("label", "DB"));
        index.insert_edge(&mut f.graph, eve, f.ann);
        assert_consistent(&index, &f.pattern, &f.graph, "after (Eve, Ann)");
        index.insert_edge(&mut f.graph, eve, f.bill);
        assert!(index.contains(PatternNodeId(1), eve), "Eve now matches DB");
        assert_consistent(&index, &f.pattern, &f.graph, "after (Eve, Bill)");

        // A new Bio person is isolated: Bio is childless in P3, so they match
        // immediately once an (irrelevant) update lets the index observe them.
        let zed = f.graph.add_node(
            Attributes::new().with("name", "Zed").with("job", "Bio").with("label", "Bio"),
        );
        index.insert_edge(&mut f.graph, f.mat, f.tom);
        assert!(index.contains(PatternNodeId(2), zed), "childless pattern node matches");
        assert_consistent(&index, &f.pattern, &f.graph, "after adding Zed");

        // Batch path over a graph that contains post-build nodes, including
        // edges incident to one.
        let ned = f.graph.add_node(
            Attributes::new().with("name", "Ned").with("job", "CTO").with("label", "CTO"),
        );
        let mut batch = BatchUpdate::new();
        batch.insert(ned, eve);
        batch.insert(ned, f.bill);
        batch.delete(f.ann, f.bill);
        index.apply_batch(&mut f.graph, &batch);
        assert_consistent(&index, &f.pattern, &f.graph, "after batch over post-build nodes");
    }

    #[test]
    fn node_churn_interleaved_with_updates_stays_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB51);
        let mut graph = synthetic_graph(&SyntheticConfig::new(60, 180, 4, 0xB52));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::new(4, 5, 1, 2, 0xB53).with_shape(PatternShape::General),
        );
        let mut index = BoundedIndex::build(&pattern, &graph);
        for step in 0..120usize {
            if step % 10 == 0 {
                // Grow: a brand-new node with an existing label, wired in by
                // updates drawn against the current graph.
                let label = rng.gen_range(0..4u32);
                let fresh = graph.add_node(Attributes::labeled(format!("l{label}")));
                let n = graph.node_count() - 1;
                let out = NodeId(rng.gen_range(0..n) as u32);
                index.insert_edge(&mut graph, fresh, out);
            } else {
                let n = graph.node_count();
                let a = NodeId(rng.gen_range(0..n) as u32);
                let b = NodeId(rng.gen_range(0..n) as u32);
                if a == b {
                    continue;
                }
                if rng.gen_bool(0.6) {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
            }
            if step % 24 == 23 {
                assert_consistent(&index, &pattern, &graph, &format!("churn step {step}"));
            }
        }
        assert_consistent(&index, &pattern, &graph, "churn final");
    }

    #[test]
    fn matches_view_is_cached_and_match_set_sorted() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let before = index.matches();
        assert_eq!(*index.matches_view(), before);
        assert_eq!(index.match_set(PatternNodeId(1)), vec![f.pat, f.dan]);
        assert!(index.contains(PatternNodeId(0), f.ann));
        index.delete_edge(&mut f.graph, f.pat, f.bill);
        assert_ne!(index.matches(), before, "cache invalidated by mutation");
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let f = fixture();
        let mut wide = Pattern::new();
        let mut prev = wide.add_labeled_node("CTO");
        for _ in 0..MAX_PATTERN_NODES {
            let next = wide.add_labeled_node("CTO");
            wide.add_edge(prev, next, EdgeBound::Hops(1));
            prev = next;
        }
        assert_eq!(
            BoundedIndex::try_build(&wide, &f.graph).err(),
            Some(crate::incremental::BuildError::ArityTooLarge { arity: MAX_PATTERN_NODES + 1 })
        );
        let built = BoundedIndex::try_build(&f.pattern, &f.graph).expect("fixture pattern");
        assert_eq!(built.aux_snapshot(), BoundedIndex::build(&f.pattern, &f.graph).aux_snapshot());
    }

    #[test]
    fn redundant_unit_updates_are_exact_no_ops() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let aux = index.aux_snapshot();
        let matches = index.matches();
        let graph_before = f.graph.clone();

        // Duplicate insert: (Ann, Pat) already exists.
        let stats = index.insert_edge(&mut f.graph, f.ann, f.pat);
        assert_eq!(stats.stats.reduced_delta_g, 0, "a present edge never reaches IncLM");
        assert_eq!(stats.stats.delta_m(), 0);
        assert_eq!(stats.stats.aux_changes, 0);

        // Absent delete: (Don, Tom) does not exist.
        let stats = index.delete_edge(&mut f.graph, f.don, f.tom);
        assert_eq!(stats.stats.reduced_delta_g, 0);
        assert_eq!(stats.stats.delta_m(), 0);
        assert_eq!(stats.stats.aux_changes, 0);

        assert_eq!(index.aux_snapshot(), aux, "pairs/support/masks untouched by no-ops");
        assert_eq!(index.matches(), matches);
        assert_eq!(f.graph, graph_before, "graph untouched by no-ops");
        assert_consistent(&index, &f.pattern, &f.graph, "after unit no-ops");
    }

    #[test]
    fn strict_apply_rejects_invalid_batches_whole() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let aux = index.aux_snapshot();
        let graph_before = f.graph.clone();

        let oob = NodeId::from_index(f.graph.node_count() + 3);
        let mut batch = BatchUpdate::new();
        batch.insert(f.don, f.pat); // valid
        batch.insert(f.ann, f.pat); // duplicate
        batch.delete(f.don, f.tom); // absent
        batch.delete(oob, f.ann); // out of range
        let err = index.try_apply_batch(&mut f.graph, &batch).unwrap_err();
        let ApplyError::InvalidBatch(rejections) = &err else {
            panic!("expected InvalidBatch, got {err}");
        };
        let reasons: Vec<_> = rejections.iter().map(|r| (r.position, r.reason)).collect();
        assert_eq!(
            reasons,
            vec![
                (1, igpm_graph::RejectReason::DuplicateInsert),
                (2, igpm_graph::RejectReason::AbsentDelete),
                (3, igpm_graph::RejectReason::NodeOutOfRange),
            ]
        );
        assert_eq!(index.aux_snapshot(), aux, "rejected batch must touch nothing");
        assert_eq!(f.graph, graph_before, "rejected batch must touch nothing");

        // Still usable: the valid part applies cleanly afterwards.
        let mut valid = BatchUpdate::new();
        valid.insert(f.don, f.pat);
        index.try_apply_batch(&mut f.graph, &valid).expect("valid batch");
        assert_consistent(&index, &f.pattern, &f.graph, "after post-rejection apply");
    }

    #[test]
    fn lenient_apply_skips_invalid_updates_and_reports_them() {
        let f = fixture();
        let oob = NodeId::from_index(f.graph.node_count() + 1);

        let mut lenient_graph = f.graph.clone();
        let mut lenient = BoundedIndex::build(&f.pattern, &lenient_graph);
        let mut batch = BatchUpdate::new();
        batch.insert(f.don, f.pat); // valid
        batch.insert(oob, f.tom); // out of range
        batch.insert(f.don, f.tom); // valid
        batch.insert(f.don, f.tom); // duplicate (of the one just inserted)
        batch.delete(f.mat, f.tom); // absent
        batch.insert(f.pat, f.don); // valid
        let report = lenient.apply_batch_lenient(&mut lenient_graph, &batch).expect("lenient");
        let reasons: Vec<_> = report.rejected.iter().map(|r| (r.position, r.reason)).collect();
        assert_eq!(
            reasons,
            vec![
                (1, igpm_graph::RejectReason::NodeOutOfRange),
                (3, igpm_graph::RejectReason::DuplicateInsert),
                (4, igpm_graph::RejectReason::AbsentDelete),
            ]
        );

        let mut control_graph = f.graph.clone();
        let mut control = BoundedIndex::build(&f.pattern, &control_graph);
        let mut valid = BatchUpdate::new();
        valid.insert(f.don, f.pat);
        valid.insert(f.don, f.tom);
        valid.insert(f.pat, f.don);
        let control_stats = control.apply_batch(&mut control_graph, &valid);

        assert_eq!(lenient_graph, control_graph, "lenient graph = valid-only graph");
        assert_eq!(lenient.aux_snapshot(), control.aux_snapshot(), "identical auxiliary state");
        assert_eq!(lenient.matches(), control.matches());
        assert_eq!(report.stats.reduced_delta_g, control_stats.stats.reduced_delta_g);
        assert_eq!(report.stats.matches_added, control_stats.stats.matches_added);
        assert_eq!(report.stats.matches_removed, control_stats.stats.matches_removed);
        assert_consistent(&lenient, &f.pattern, &lenient_graph, "after lenient apply");
    }

    #[test]
    fn redundant_batches_leave_aux_and_stats_untouched() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let before = index.matches();
        let aux = index.aux_snapshot();

        let mut batch = BatchUpdate::new();
        batch.insert(f.ann, f.pat); // duplicate insert
        batch.delete(f.don, f.tom); // absent delete
        let report = index.apply_batch_lenient(&mut f.graph, &batch).expect("lenient");
        assert_eq!(report.stats.reduced_delta_g, 0);
        assert_eq!(report.stats.delta_m(), 0);
        assert_eq!(report.stats.aux_changes, 0);
        assert_eq!(report.rejected.len(), 2, "both no-ops reported");
        assert_eq!(index.aux_snapshot(), aux);
        assert_eq!(index.matches(), before);
        assert_consistent(&index, &f.pattern, &f.graph, "after redundant batch");
    }
}
