//! Incremental bounded simulation (Section 6): `IncBMatch+`, `IncBMatch-` and
//! the batch `IncBMatch`.
//!
//! The auxiliary structures follow Section 6.2/6.3:
//!
//! * a [`LandmarkIndex`] (landmark vector + distance vectors) maintained
//!   incrementally by `InsLM` / `DelLM` / `IncLM`
//!   ([`igpm_distance::landmark_inc`]);
//! * for every pattern edge, the set of **cc/cs/ss pairs** (Table III): pairs
//!   of candidate nodes whose distance satisfies the edge bound. Unlike plain
//!   simulation, these are node *pairs* connected by bounded paths rather than
//!   single graph edges.
//!
//! After an update only the pairs with an endpoint in the affected area (the
//! nodes whose distance vectors changed, plus the update endpoints) can change
//! (see the covering argument in `DESIGN.md`), so `IncBMatch` re-evaluates
//! exactly those pairs and then propagates match promotions/demotions through
//! them — the reduction of bounded simulation to simulation over the result
//! pairs stated by Proposition 6.1.

use crate::simulation::candidates;
use crate::stats::AffStats;
use igpm_distance::landmark_inc::inc_lm_tracked;
use igpm_distance::{satisfies_bound, LandmarkIndex, LandmarkSelection};
use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::{
    BatchUpdate, DataGraph, MatchRelation, NodeId, Pattern, PatternNodeId, ResultGraph,
    StronglyConnectedComponents, Update,
};

/// Auxiliary state for incremental bounded simulation over one b-pattern.
#[derive(Debug, Clone)]
pub struct BoundedIndex {
    pattern: Pattern,
    landmarks: LandmarkIndex,
    /// All nodes satisfying each pattern node's predicate (static under edge updates).
    cand_all: Vec<FastHashSet<NodeId>>,
    /// `pairs[e][v]` = targets `v'` such that `(v, v')` satisfies pattern edge `e`.
    pairs: Vec<FastHashMap<NodeId, FastHashSet<NodeId>>>,
    /// `rev_pairs[e][v']` = sources `v` such that `(v, v')` satisfies pattern edge `e`.
    rev_pairs: Vec<FastHashMap<NodeId, FastHashSet<NodeId>>>,
    /// `match(u)`: current bounded-simulation matches.
    match_sets: Vec<FastHashSet<NodeId>>,
    scc: StronglyConnectedComponents,
    has_cycle: bool,
}

impl BoundedIndex {
    /// Builds the index: landmark vectors, cc/cs/ss pair sets and the initial
    /// maximum match (the batch `Matchbs` step).
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        let landmarks = LandmarkIndex::build(graph, LandmarkSelection::VertexCover);
        Self::build_with_landmarks(pattern, graph, landmarks)
    }

    /// Builds the index reusing an existing landmark index (must be exact for
    /// the current graph).
    pub fn build_with_landmarks(pattern: &Pattern, graph: &DataGraph, landmarks: LandmarkIndex) -> Self {
        let cand_all: Vec<FastHashSet<NodeId>> = candidates(pattern, graph)
            .into_iter()
            .map(|list| list.into_iter().collect())
            .collect();
        let scc = StronglyConnectedComponents::of_pattern(pattern);
        let has_cycle = scc.components().any(|c| scc.is_nontrivial(c));
        let edge_count = pattern.edge_count();

        let mut index = BoundedIndex {
            pattern: pattern.clone(),
            landmarks,
            cand_all,
            pairs: vec![FastHashMap::default(); edge_count],
            rev_pairs: vec![FastHashMap::default(); edge_count],
            match_sets: Vec::new(),
            scc,
            has_cycle,
        };
        index.rebuild_all_pairs(graph);
        index.match_sets = index.compute_matches_from_pairs();
        index
    }

    /// The pattern the index maintains matches for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The landmark index currently backing distance queries.
    pub fn landmarks(&self) -> &LandmarkIndex {
        &self.landmarks
    }

    /// The current maximum bounded-simulation match.
    pub fn matches(&self) -> MatchRelation {
        if self.match_sets.iter().any(FastHashSet::is_empty) {
            return MatchRelation::empty(self.pattern.node_count());
        }
        MatchRelation::from_lists(
            self.match_sets.iter().map(|s| s.iter().copied().collect::<Vec<_>>()),
        )
    }

    /// True if every pattern node currently has at least one match.
    pub fn is_match(&self) -> bool {
        !self.match_sets.is_empty() && self.match_sets.iter().all(|s| !s.is_empty())
    }

    /// The current matches of one pattern node (partial information).
    pub fn match_set(&self, u: PatternNodeId) -> &FastHashSet<NodeId> {
        &self.match_sets[u.index()]
    }

    /// Builds the result graph `G_r` for the current match.
    pub fn result_graph(&self) -> ResultGraph {
        let mut result = ResultGraph::new();
        let matches = self.matches();
        for (_, v) in matches.pairs() {
            result.add_node(v);
        }
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            for &v in matches.matches(edge.from) {
                if let Some(targets) = self.pairs[e_idx].get(&v) {
                    for &w in targets {
                        if matches.contains(edge.to, w) {
                            result.add_edge(v, w, e_idx as u32);
                        }
                    }
                }
            }
        }
        result
    }

    /// `IncBMatch+`: single edge insertion.
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let batch = BatchUpdate::from_updates(vec![Update::insert(from, to)]);
        self.apply_batch(graph, &batch)
    }

    /// `IncBMatch-`: single edge deletion.
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let batch = BatchUpdate::from_updates(vec![Update::delete(from, to)]);
        self.apply_batch(graph, &batch)
    }

    /// `IncBMatch`: batch updates. The graph is updated, the landmark and
    /// distance vectors are maintained by `IncLM`, the affected cc/cs/ss pairs
    /// are re-evaluated, and the match is repaired by demotion/promotion
    /// propagation over the pairs.
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> AffStats {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };

        // Step 1: maintain the landmark/distance vectors (IncLM) and collect
        // the nodes whose distance information changed.
        let mut affected: FastHashSet<NodeId> = FastHashSet::default();
        let lm_stats = inc_lm_tracked(&mut self.landmarks, graph, batch, &mut affected);
        stats.reduced_delta_g = lm_stats.updates_processed;
        stats.aux_changes += lm_stats.affected_entries;

        if lm_stats.updates_processed == 0 {
            return stats;
        }

        // Step 2: re-evaluate the pairs whose endpoints are affected.
        let (broken, created) = self.refresh_pairs(graph, &affected, &mut stats);

        // Step 3: repair the match — demotions first (broken pairs), then
        // promotions (created pairs), mirroring IncMatch.
        if !broken.is_empty() {
            self.process_demotions(&broken, &mut stats);
        }
        if !created.is_empty() || self.has_cycle {
            self.process_promotions(&created, &mut stats);
        }
        stats
    }

    // ------------------------------------------------------------------
    // Pair maintenance
    // ------------------------------------------------------------------

    fn rebuild_all_pairs(&mut self, graph: &DataGraph) {
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            let sources: Vec<NodeId> = self.cand_all[edge.from.index()].iter().copied().collect();
            let targets: Vec<NodeId> = self.cand_all[edge.to.index()].iter().copied().collect();
            let mut forward: FastHashMap<NodeId, FastHashSet<NodeId>> = FastHashMap::default();
            let mut backward: FastHashMap<NodeId, FastHashSet<NodeId>> = FastHashMap::default();
            for &v in &sources {
                for &w in &targets {
                    if satisfies_bound(graph, &self.landmarks, v, w, edge.bound) {
                        forward.entry(v).or_default().insert(w);
                        backward.entry(w).or_default().insert(v);
                    }
                }
            }
            self.pairs[e_idx] = forward;
            self.rev_pairs[e_idx] = backward;
        }
    }

    /// Re-evaluates every pair with an affected endpoint. Returns the pairs
    /// that disappeared and the pairs that appeared, per pattern edge.
    #[allow(clippy::type_complexity)]
    fn refresh_pairs(
        &mut self,
        graph: &DataGraph,
        affected: &FastHashSet<NodeId>,
        stats: &mut AffStats,
    ) -> (Vec<(usize, NodeId, NodeId)>, Vec<(usize, NodeId, NodeId)>) {
        let mut broken = Vec::new();
        let mut created = Vec::new();
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            let from_cands = &self.cand_all[edge.from.index()];
            let to_cands = &self.cand_all[edge.to.index()];
            // Pairs whose *source* is affected.
            for &x in affected.iter().filter(|x| from_cands.contains(x)) {
                for &w in to_cands {
                    let now = satisfies_bound(graph, &self.landmarks, x, w, edge.bound);
                    let before = self.pairs[e_idx].get(&x).map(|s| s.contains(&w)).unwrap_or(false);
                    if now == before {
                        continue;
                    }
                    stats.aux_changes += 1;
                    if now {
                        self.pairs[e_idx].entry(x).or_default().insert(w);
                        self.rev_pairs[e_idx].entry(w).or_default().insert(x);
                        created.push((e_idx, x, w));
                    } else {
                        if let Some(set) = self.pairs[e_idx].get_mut(&x) {
                            set.remove(&w);
                        }
                        if let Some(set) = self.rev_pairs[e_idx].get_mut(&w) {
                            set.remove(&x);
                        }
                        broken.push((e_idx, x, w));
                    }
                }
            }
            // Pairs whose *target* is affected (skip sources already handled above).
            for &x in affected.iter().filter(|x| to_cands.contains(x)) {
                for &v in from_cands {
                    if affected.contains(&v) {
                        continue;
                    }
                    let now = satisfies_bound(graph, &self.landmarks, v, x, edge.bound);
                    let before = self.pairs[e_idx].get(&v).map(|s| s.contains(&x)).unwrap_or(false);
                    if now == before {
                        continue;
                    }
                    stats.aux_changes += 1;
                    if now {
                        self.pairs[e_idx].entry(v).or_default().insert(x);
                        self.rev_pairs[e_idx].entry(x).or_default().insert(v);
                        created.push((e_idx, v, x));
                    } else {
                        if let Some(set) = self.pairs[e_idx].get_mut(&v) {
                            set.remove(&x);
                        }
                        if let Some(set) = self.rev_pairs[e_idx].get_mut(&x) {
                            set.remove(&v);
                        }
                        broken.push((e_idx, v, x));
                    }
                }
            }
        }
        (broken, created)
    }

    // ------------------------------------------------------------------
    // Match maintenance over the pair sets
    // ------------------------------------------------------------------

    /// Does `v` (as a match of `u`) have, for every pattern edge `(u, u2)`, a
    /// pair target currently matching `u2`?
    fn has_full_support(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.pattern.edges().iter().enumerate().all(|(e_idx, edge)| {
            if edge.from != u {
                return true;
            }
            match self.pairs[e_idx].get(&v) {
                Some(targets) => targets.iter().any(|w| self.match_sets[edge.to.index()].contains(w)),
                None => false,
            }
        })
    }

    /// Demotion propagation seeded by broken pairs.
    fn process_demotions(&mut self, broken: &[(usize, NodeId, NodeId)], stats: &mut AffStats) {
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(e_idx, v, w) in broken {
            let edge = self.pattern.edges()[e_idx];
            if self.match_sets[edge.from.index()].contains(&v)
                && self.match_sets[edge.to.index()].contains(&w)
            {
                worklist.push((edge.from, v));
            }
        }
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if !self.match_sets[u.index()].contains(&v) {
                continue;
            }
            if self.has_full_support(u, v) {
                continue;
            }
            self.match_sets[u.index()].remove(&v);
            stats.matches_removed += 1;
            stats.aux_changes += 1;
            // Every match that used v as a pair target for a pattern edge
            // ending in u must be re-checked.
            for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
                if edge.to != u {
                    continue;
                }
                if let Some(sources) = self.rev_pairs[e_idx].get(&v) {
                    for &p in sources {
                        if self.match_sets[edge.from.index()].contains(&p) {
                            worklist.push((edge.from, p));
                        }
                    }
                }
            }
        }
    }

    /// Promotion propagation seeded by created pairs, with a joint pass for
    /// pattern SCCs (the bounded-simulation analogue of propCS / propCC).
    fn process_promotions(&mut self, created: &[(usize, NodeId, NodeId)], stats: &mut AffStats) {
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(e_idx, v, _) in created {
            let edge = self.pattern.edges()[e_idx];
            if !self.match_sets[edge.from.index()].contains(&v) {
                worklist.push((edge.from, v));
            }
        }
        let mut run_cc = self.has_cycle;
        loop {
            let promoted_cs = self.promote_from_worklist(&mut worklist, stats);
            if promoted_cs {
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.promote_sccs(stats, &mut worklist);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                run_cc = true;
            }
        }
    }

    fn promote_from_worklist(
        &mut self,
        worklist: &mut Vec<(PatternNodeId, NodeId)>,
        stats: &mut AffStats,
    ) -> bool {
        let mut promoted_any = false;
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if self.match_sets[u.index()].contains(&v) || !self.cand_all[u.index()].contains(&v) {
                continue;
            }
            if !self.has_full_support(u, v) {
                continue;
            }
            self.match_sets[u.index()].insert(v);
            stats.matches_added += 1;
            stats.aux_changes += 1;
            promoted_any = true;
            for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
                if edge.to != u {
                    continue;
                }
                if let Some(sources) = self.rev_pairs[e_idx].get(&v) {
                    for &p in sources {
                        if !self.match_sets[edge.from.index()].contains(&p) {
                            worklist.push((edge.from, p));
                        }
                    }
                }
            }
        }
        promoted_any
    }

    fn promote_sccs(&mut self, stats: &mut AffStats, worklist: &mut Vec<(PatternNodeId, NodeId)>) -> bool {
        let mut promoted_any = false;
        let components: Vec<_> = self.scc.components().collect();
        for comp in components {
            if !self.scc.is_nontrivial(comp) {
                continue;
            }
            let members: Vec<PatternNodeId> = self
                .scc
                .members(comp)
                .iter()
                .map(|&i| PatternNodeId::from_index(i))
                .collect();
            let in_scc = |u: PatternNodeId| members.contains(&u);

            let mut tentative: Vec<FastHashSet<NodeId>> = vec![FastHashSet::default(); self.pattern.node_count()];
            for &u in &members {
                tentative[u.index()] = self.cand_all[u.index()]
                    .iter()
                    .copied()
                    .filter(|v| !self.match_sets[u.index()].contains(v))
                    .collect();
            }
            let mut changed = true;
            while changed {
                changed = false;
                for &u in &members {
                    let survivors: Vec<NodeId> = tentative[u.index()]
                        .iter()
                        .copied()
                        .filter(|&v| {
                            stats.nodes_visited += 1;
                            self.pattern.edges().iter().enumerate().all(|(e_idx, edge)| {
                                if edge.from != u {
                                    return true;
                                }
                                match self.pairs[e_idx].get(&v) {
                                    Some(targets) => targets.iter().any(|w| {
                                        self.match_sets[edge.to.index()].contains(w)
                                            || (in_scc(edge.to) && tentative[edge.to.index()].contains(w))
                                    }),
                                    None => false,
                                }
                            })
                        })
                        .collect();
                    if survivors.len() != tentative[u.index()].len() {
                        changed = true;
                        tentative[u.index()] = survivors.into_iter().collect();
                    }
                }
            }
            for &u in &members {
                let survivors: Vec<NodeId> = tentative[u.index()].iter().copied().collect();
                for v in survivors {
                    self.match_sets[u.index()].insert(v);
                    stats.matches_added += 1;
                    stats.aux_changes += 1;
                    promoted_any = true;
                    for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
                        if edge.to != u {
                            continue;
                        }
                        if let Some(sources) = self.rev_pairs[e_idx].get(&v) {
                            for &p in sources {
                                if !self.match_sets[edge.from.index()].contains(&p) {
                                    worklist.push((edge.from, p));
                                }
                            }
                        }
                    }
                }
            }
        }
        promoted_any
    }

    /// Full greatest-fixpoint computation over the pair sets (initial build).
    fn compute_matches_from_pairs(&self) -> Vec<FastHashSet<NodeId>> {
        let mut sets: Vec<FastHashSet<NodeId>> = self.cand_all.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for u in self.pattern.nodes() {
                let to_remove: Vec<NodeId> = sets[u.index()]
                    .iter()
                    .copied()
                    .filter(|&v| {
                        !self.pattern.edges().iter().enumerate().all(|(e_idx, edge)| {
                            if edge.from != u {
                                return true;
                            }
                            match self.pairs[e_idx].get(&v) {
                                Some(targets) => targets.iter().any(|w| sets[edge.to.index()].contains(w)),
                                None => false,
                            }
                        })
                    })
                    .collect();
                if !to_remove.is_empty() {
                    changed = true;
                    for v in to_remove {
                        sets[u.index()].remove(&v);
                    }
                }
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::match_bounded_with_matrix;
    use igpm_generator::{
        degree_biased_deletions, degree_biased_insertions, generate_pattern, mixed_batch,
        synthetic_graph, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
    };
    use igpm_graph::{Attributes, EdgeBound, Predicate};

    /// The FriendFeed graph of Fig. 4 and the b-pattern P3 of Example 4.1:
    /// CTO -[2]-> DB, CTO -[1]-> Bio, DB -[1]-> Bio, DB -[*]-> CTO.
    struct Fixture {
        graph: DataGraph,
        pattern: Pattern,
        ann: NodeId,
        pat: NodeId,
        dan: NodeId,
        bill: NodeId,
        mat: NodeId,
        don: NodeId,
        tom: NodeId,
    }

    fn fixture() -> Fixture {
        let mut g = DataGraph::new();
        let mut person = |g: &mut DataGraph, name: &str, job: &str| {
            g.add_node(Attributes::new().with("name", name).with("job", job).with("label", job))
        };
        let ann = person(&mut g, "Ann", "CTO");
        let pat = person(&mut g, "Pat", "DB");
        let dan = person(&mut g, "Dan", "DB");
        let bill = person(&mut g, "Bill", "Bio");
        let mat = person(&mut g, "Mat", "Bio");
        let don = person(&mut g, "Don", "CTO");
        let tom = person(&mut g, "Tom", "Bio");
        let ross = person(&mut g, "Ross", "Med");
        g.add_edge(ann, pat);
        g.add_edge(pat, ann);
        g.add_edge(pat, bill);
        g.add_edge(ann, bill);
        g.add_edge(ann, dan);
        g.add_edge(dan, ann);
        g.add_edge(dan, mat);
        g.add_edge(mat, dan);
        g.add_edge(ross, tom);

        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_edge(cto, db, EdgeBound::Hops(2));
        p.add_edge(cto, bio, EdgeBound::Hops(1));
        p.add_edge(db, bio, EdgeBound::Hops(1));
        p.add_edge(db, cto, EdgeBound::Unbounded);
        Fixture { graph: g, pattern: p, ann, pat, dan, bill, mat, don, tom }
    }

    fn assert_consistent(index: &BoundedIndex, pattern: &Pattern, graph: &DataGraph, context: &str) {
        let expected = match_bounded_with_matrix(pattern, graph);
        assert_eq!(index.matches(), expected, "{context}: incremental result diverged from batch");
    }

    #[test]
    fn example_4_1_initial_match() {
        let f = fixture();
        let index = BoundedIndex::build(&f.pattern, &f.graph);
        assert!(index.is_match());
        // M^k_sim(P3, G3) = {(CTO, Ann), (DB, Pat), (DB, Dan), (Bio, Bill), (Bio, Mat)}.
        assert_eq!(index.matches().matches(PatternNodeId(0)), &[f.ann]);
        assert_eq!(index.matches().matches(PatternNodeId(1)), &[f.pat, f.dan]);
        // Every Bio node (including the isolated Tom) matches the childless
        // pattern node Bio.
        assert_eq!(index.matches().matches(PatternNodeId(2)), &[f.bill, f.mat, f.tom]);
        assert_consistent(&index, &f.pattern, &f.graph, "initial build");
    }

    #[test]
    fn example_4_2_inserting_e2_adds_don_and_tom() {
        // Inserting e2 = (Don, Pat) gives Don a DB neighbour within 2 hops;
        // Example 4.2 expects Don (CTO) and Tom (Bio) to join the match once
        // the remaining insertions arrive. With e2, e1 = (Don, Tom) and
        // e4 = (Pat, Don) the new matches are exactly Don and Tom.
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        index.insert_edge(&mut f.graph, f.don, f.pat);
        assert_consistent(&index, &f.pattern, &f.graph, "after e2");
        let stats_e1 = index.insert_edge(&mut f.graph, f.don, f.tom);
        assert_consistent(&index, &f.pattern, &f.graph, "after e1");
        let stats_e4 = index.insert_edge(&mut f.graph, f.pat, f.don);
        assert_consistent(&index, &f.pattern, &f.graph, "after e4");
        assert!(index.matches().contains(PatternNodeId(0), f.don), "Don becomes a CTO match");
        assert!(index.matches().contains(PatternNodeId(2), f.tom), "Tom becomes a Bio match");
        // Don is promoted once both e2 and e1 are present; e4 changes nothing.
        assert!(stats_e1.matches_added >= 1);
        assert_eq!(stats_e4.matches_added, 0);
    }

    #[test]
    fn deletions_shrink_the_match() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        // Removing (Pat, Bill) leaves Pat without a Bio node within 1 hop.
        let stats = index.delete_edge(&mut f.graph, f.pat, f.bill);
        assert!(stats.matches_removed >= 1);
        assert!(!index.matches().contains(PatternNodeId(1), f.pat));
        assert_consistent(&index, &f.pattern, &f.graph, "after deleting (Pat, Bill)");
        // Removing (Dan, Mat) as well destroys every DB match and hence the whole match.
        index.delete_edge(&mut f.graph, f.dan, f.mat);
        assert!(!index.is_match());
        assert_consistent(&index, &f.pattern, &f.graph, "after deleting (Dan, Mat)");
    }

    #[test]
    fn unboundedness_gadget_for_bounded_simulation() {
        // Theorem 6.1(1) gadget: pattern u -[*]-> t, graph made of three
        // chains; the match appears only when both bridging edges exist.
        let mut p = Pattern::new();
        let u = p.add_labeled_node("u");
        let t = p.add_labeled_node("t");
        p.add_edge(u, t, EdgeBound::Unbounded);

        let mut g = DataGraph::new();
        let us: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("u")).collect();
        let vs: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("v")).collect();
        let ts: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("t")).collect();
        for w in us.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        for w in ts.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(*ts.last().unwrap(), us[0]);

        let mut index = BoundedIndex::build(&p, &g);
        assert!(!index.is_match());
        index.insert_edge(&mut g, *us.last().unwrap(), vs[0]);
        assert!(!index.is_match(), "u-chain still cannot reach a t node");
        assert_consistent(&index, &p, &g, "after first bridge");
        let stats = index.insert_edge(&mut g, *vs.last().unwrap(), ts[0]);
        assert!(index.is_match(), "now every u node reaches every t node");
        assert_consistent(&index, &p, &g, "after second bridge");
        // All four u-labelled nodes become matches of the pattern node u.
        assert!(stats.matches_added >= 4);
    }

    #[test]
    fn batch_updates_agree_with_batch_recomputation() {
        for seed in 0..2u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(120, 360, 4, seed + 300));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::new(4, 5, 1, 3, seed + 310).with_shape(PatternShape::General),
            );
            let mut index = BoundedIndex::build(&pattern, &graph);
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: initial"));
            for round in 0..3 {
                let batch = mixed_batch(&graph, 15, 15, seed * 31 + round);
                index.apply_batch(&mut graph, &batch);
                assert_consistent(&index, &pattern, &graph, &format!("seed {seed}, round {round}: batch"));
            }
        }
    }

    #[test]
    fn unit_updates_agree_with_batch_recomputation() {
        for seed in 0..2u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(100, 300, 4, seed + 400));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::new(4, 5, 1, 2, seed + 410).with_shape(PatternShape::Dag),
            );
            let mut index = BoundedIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(12, seed + 420));
            let del = degree_biased_deletions(&graph, UpdateGenConfig::new(12, seed + 430));
            for (i, update) in ins.iter().chain(del.iter()).enumerate() {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
                if i % 6 == 0 {
                    assert_consistent(&index, &pattern, &graph, &format!("seed {seed}, step {i}"));
                }
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: final"));
        }
    }

    #[test]
    fn result_graph_uses_pair_edges() {
        let f = fixture();
        let index = BoundedIndex::build(&f.pattern, &f.graph);
        let gr = index.result_graph();
        // Ann reaches the DB nodes within 2 hops and the Bio nodes within 1 hop.
        assert!(gr.has_edge(f.ann, f.pat));
        assert!(gr.has_edge(f.ann, f.dan));
        assert!(gr.has_edge(f.ann, f.bill));
        // Pat reaches Ann via an unbounded path.
        assert!(gr.has_edge(f.pat, f.ann));
        assert!(!gr.contains_node(f.don));
    }

    #[test]
    fn no_op_updates_do_not_touch_the_match() {
        let mut f = fixture();
        let mut index = BoundedIndex::build(&f.pattern, &f.graph);
        let before = index.matches();
        // Inserting an existing edge / deleting a missing edge are no-ops.
        let stats = index.insert_edge(&mut f.graph, f.ann, f.pat);
        assert_eq!(stats.reduced_delta_g, 0);
        let stats = index.delete_edge(&mut f.graph, f.don, f.tom);
        assert_eq!(stats.reduced_delta_g, 0);
        assert_eq!(index.matches(), before);
    }
}
