//! Shard configuration for the parallel batch engines and cold-start builds.
//!
//! The batch maintenance of [`crate::incremental::sim::SimulationIndex`] (and
//! the pair re-evaluation phase of [`crate::incremental::bsim::BoundedIndex`])
//! partitions its per-node state across *shards* and runs the shards on
//! scoped threads, and the `build_with_shards` constructors of both indexes
//! reuse the same partition for the cold-start path. The configuration —
//! the `IGPM_SHARDS` knob, the contiguous [`ShardPlan`] partition and the
//! spawn thresholds — lives in [`igpm_graph::shard`] so that
//! `igpm-distance`'s parallel landmark build can honour the same knob; this
//! module re-exports it for the engines here (and for backwards-compatible
//! paths).
//!
//! Shard count never changes *results*: every sharded engine — batch rounds
//! and builds alike — is bit-identical (including [`crate::AffStats`]) for
//! every shard count, so `IGPM_SHARDS` is purely a performance knob.

pub use igpm_graph::shard::{configured_shards, MAX_SHARDS};
// The plan and the spawn thresholds stay crate-internal, as before the move
// — they are tuning machinery, not API (the canonical public home is
// `igpm_graph::shard`).
pub(crate) use igpm_graph::shard::{ShardPlan, PARALLEL_EVAL_THRESHOLD, PARALLEL_WORK_THRESHOLD};
