//! Incremental graph pattern matching (Sections 5 and 6).
//!
//! * [`sim`] — incremental **graph simulation**: the auxiliary
//!   `match()`/`candt()` structures, `IncMatch-` (unit deletions),
//!   `IncMatch+`/`IncMatch+dag` (unit insertions) and the batch `IncMatch`
//!   with the `minDelta` update reduction.
//! * [`bsim`] — incremental **bounded simulation**: landmark/distance vectors
//!   as the distance-side auxiliary structure, cc/cs/ss *pairs* instead of
//!   edges, and the `IncBMatch+`/`IncBMatch-`/`IncBMatch` procedures.
//!
//! Shard configuration (the `IGPM_SHARDS` knob and the contiguous node-range
//! partition) lives at its canonical home, [`igpm_graph::shard`]; both
//! engines import it from there directly.
//!
//! # Failure model: panics, errors and invariants
//!
//! Both engines expose a *transactional* batch boundary (see `RECOVERY.md`
//! at the repository root):
//!
//! * [`SimulationIndex::try_apply_batch`](sim::SimulationIndex::try_apply_batch)
//!   / [`BoundedIndex::try_apply_batch`](bsim::BoundedIndex::try_apply_batch)
//!   — the canonical fallible APIs. Batches are validated up front
//!   ([`igpm_graph::update::validate_batch`]) and rejected whole
//!   ([`ApplyError::InvalidBatch`]) if any update is out of range, a
//!   duplicate insert or an absent delete; nothing is touched on rejection.
//! * `apply_batch_lenient` — the explicit lossy variant: structurally
//!   invalid updates (out-of-range ids) are stripped, redundant updates
//!   (duplicate inserts, absent deletes) are neutralised by the net-effect
//!   reduction, and every skipped update is reported.
//! * `apply_batch` — the historical infallible name, now a delegate of the
//!   lenient path: identical behaviour for well-formed input, a clean panic
//!   (with state contained as below) instead of silent corruption otherwise.
//!
//! A panic *mid-batch* — an armed [`igpm_graph::fail`] failpoint or a real
//! bug — is caught at the batch boundary (`catch_unwind`; the scoped worker
//! threads of every sharded stage funnel their panics through their join
//! handles into the same containment). The containment consults how far the
//! pipeline got: panics before any mutation leave everything untouched;
//! panics during graph mutation roll the graph back
//! ([`igpm_graph::DataGraph::rollback_updates`]) with the auxiliary state
//! untouched (the index stays usable); panics after auxiliary mutation began
//! roll the graph back and **poison** the index — reads error with
//! [`ApplyError::Poisoned`] until `recover()` rebuilds from the graph via
//! the ordinary sharded build, which is bit-identical to a fresh build by
//! the build-equivalence invariant.
//!
//! The `unwrap`/`expect`/`assert!` occurrences that remain in these engines
//! fall into two audited classes:
//!
//! * **Input-reachable conditions** are typed errors or documented panics at
//!   the API boundary: batch shape → [`ApplyError`]; pattern shape
//!   (non-normal pattern, arity > 64) → [`BuildError`] via `try_build*`,
//!   with the infallible `build*` names delegating and panicking; reading a
//!   poisoned index → [`ApplyError::Poisoned`] from the `try_*` readers, a
//!   documented panic from the infallible readers. No other panic is
//!   reachable from user input that passed validation.
//! * **Internal invariants** stay as asserts on purpose: worker-thread join
//!   `expect`s ("… shard panicked" — re-raising a contained panic, not an
//!   error of their own), counter-underflow and mask-consistency
//!   `debug_assert`s, and the "reduced batch contained a no-op" checks that
//!   guard the reduced-batch precondition inside the mutation kernels.
//!   Turning those into `Result`s would hide engine bugs instead of
//!   surfacing them; the containment layer above converts any such failure
//!   into rollback-or-poison rather than a torn index.

pub mod bsim;
pub mod sim;

use crate::stats::AffStats;
use igpm_graph::hash::FastHashSet;
use igpm_graph::update::{RejectReason, UpdateRejection};
use igpm_graph::{
    ApplyError, BatchUpdate, DataGraph, MatchDelta, MatchRelation, NodeId, Pattern, PatternNodeId,
    Update,
};
use std::fmt;
use std::sync::Arc;

/// The engine-shaped hole in the recovery machinery: everything an
/// orchestrator (in-memory poison recovery, or the on-disk
/// [`DurableIndex`](crate::durable::DurableIndex)) needs from an incremental
/// matching engine, implemented by both [`sim::SimulationIndex`] and
/// [`bsim::BoundedIndex`].
///
/// The trait's centrepiece is the **provided**
/// [`recover_with_shards`](IncrementalEngine::recover_with_shards): the
/// single shared rebuild-and-clear-poison step. Rebuilding via the ordinary
/// sharded cold-start build is bit-identical to a fresh build by the
/// build-equivalence invariant, and assigning the fresh value over `*self`
/// drops every possibly-torn auxiliary structure *and* the poisoned flag in
/// one move — there is no separate poison bookkeeping to forget. Both
/// engines' inherent `recover_with_shards` delegate here, and
/// `DurableIndex` composes the same step with WAL replay (see the
/// "Durability" section of `RECOVERY.md`).
pub trait IncrementalEngine: Sized {
    /// Cold-start build over `shards` shards — the engines' inherent
    /// `build_with_shards`.
    ///
    /// # Panics
    /// Panics on an unbuildable pattern (see [`BuildError`]), exactly like
    /// the inherent constructor it delegates to.
    fn rebuild_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self;

    /// The pattern the index was built for.
    fn pattern(&self) -> &Pattern;

    /// The transactional batch boundary — the engines' inherent
    /// `try_apply_batch_with_shards` (validate whole, apply whole, contain
    /// panics as rollback-or-poison). Returns the [`AffStats`] of the batch
    /// *and* the emitted [`MatchDelta`] — the structured `ΔM` stream the
    /// [`DurableIndex`](crate::durable::DurableIndex) re-emits verbatim
    /// during WAL-tail replay.
    fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError>;

    /// The current maximum match, or [`ApplyError::Poisoned`].
    fn try_matches(&self) -> Result<MatchRelation, ApplyError>;

    /// True iff a contained panic tore the auxiliary state and the index
    /// must be recovered before further use.
    fn poisoned(&self) -> bool;

    /// Rebuilds the index from `graph` via the ordinary sharded cold-start
    /// build, clearing the poisoned flag — bit-identical to a fresh build by
    /// the build-equivalence invariant. The one shared recovery step; see
    /// the trait docs.
    fn recover_with_shards(&mut self, graph: &DataGraph, shards: usize) {
        *self = Self::rebuild_with_shards(self.pattern(), graph, shards);
    }

    // ------------------------------------------------------------------
    // Service mode (MatchService)
    // ------------------------------------------------------------------
    //
    // A `MatchService` registers many engines of one type over one shared
    // `DataGraph` and splits every batch into pattern-independent work done
    // once (validation, net-effect reduction, graph mutation, shared
    // auxiliary maintenance) and per-pattern work fanned out to every
    // registered engine. The methods below are that split: `shared_*` run
    // once per batch for the whole service; `build_in_service` /
    // `try_apply_shared` run once per registered pattern. The contract is
    // the **shard- and sharing-invariance of outcomes**: for every shard
    // count, a pattern's `ApplyOutcome` from the service path is
    // bit-identical to the outcome an independent single-pattern index —
    // built over the same graph with the same shared auxiliary state —
    // produces for the same stream (`tests/service_conformance.rs`).

    /// The pattern-independent auxiliary structure the service maintains
    /// *once* for all registered patterns. Plain simulation needs none
    /// (`()`); bounded simulation shares one [`igpm_distance::LandmarkIndex`]
    /// — the distance side of `IncLM` is pattern-independent, so the
    /// RETE-style sharing win is running it once per batch instead of once
    /// per pattern.
    type Shared;

    /// Builds the shared auxiliary structure for the current graph, sharded.
    /// Also the service-level *recovery* step after a contained shared-stage
    /// panic: a freshly built value must be exact for the rolled-back graph.
    fn shared_build(graph: &DataGraph, shards: usize) -> Self::Shared;

    /// The [`igpm_graph::StagePanic`] stage label reported when
    /// [`shared_mutate`](IncrementalEngine::shared_mutate) panics: the
    /// engine's name for the stage that mutates the graph service-wide
    /// (`"mutate"` for plain simulation, `"landmark"` for bounded).
    fn shared_stage() -> &'static str;

    /// The once-per-batch graph mutation: applies the net-effective updates
    /// to `graph` and maintains `shared` alongside, returning the
    /// [`SharedMutation`] summary every engine's
    /// [`try_apply_shared`](IncrementalEngine::try_apply_shared) consumes.
    /// Only called with a non-empty `effective` list (the service
    /// early-finishes empty reductions exactly like the single-engine
    /// pipelines). Fires the engine's graph-mutation failpoint
    /// ([`igpm_graph::fail`]), so fault tests can interrupt the shared stage.
    fn shared_mutate(
        shared: &mut Self::Shared,
        graph: &mut DataGraph,
        effective: &[Update],
        shards: usize,
    ) -> SharedMutation;

    /// Cold-start build *inside a service*: like
    /// [`rebuild_with_shards`](IncrementalEngine::rebuild_with_shards) but
    /// fallible, fed the interned per-pattern-node candidate lists the
    /// service deduplicates across registrations (index `u` holds the
    /// candidates of pattern node `u`, sorted ascending — exactly what
    /// `candidates_with_shards` would compute), and borrowing the shared
    /// auxiliary state for the duration of the build. The result is
    /// bit-identical to an independent index built over the same graph with
    /// the same shared state.
    fn build_in_service(
        pattern: &Pattern,
        graph: &DataGraph,
        shared: &mut Self::Shared,
        cand_lists: &[Arc<Vec<NodeId>>],
        shards: usize,
    ) -> Result<Self, BuildError>;

    /// The per-pattern half of a service batch: consumes the shared
    /// reduction ([`SharedBatch`]) and mutation summary ([`SharedMutation`])
    /// instead of redoing them, and runs only the pattern-dependent pipeline
    /// stages against the **already-mutated** graph. Statistics and deltas
    /// are bit-identical to what the engine's own
    /// [`try_apply_batch_with_shards`](IncrementalEngine::try_apply_batch_with_shards)
    /// would have produced for the original batch.
    ///
    /// Unlike the single-engine path there is no rollback arm: the graph
    /// mutation is already committed service-wide, so a contained panic
    /// **always poisons** this engine (`rolled_back: false`) and never
    /// touches the graph or the other registered patterns — recovery is
    /// per-pattern, from the current graph.
    fn try_apply_shared(
        &mut self,
        graph: &DataGraph,
        shared: &mut Self::Shared,
        batch: &SharedBatch<'_>,
        mutation: &SharedMutation,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError>;

    /// The canonical candidate-set keys of this engine's pattern, one per
    /// pattern node in node order: the [`fmt::Display`] rendering of each
    /// node's predicate. Two pattern nodes (of any registered patterns)
    /// share a key iff they have equal candidate sets over every graph, so
    /// the service uses these strings to intern candidate lists across
    /// registrations.
    fn candidate_keys(&self) -> Vec<String> {
        let pattern = self.pattern();
        pattern.nodes().map(|u| pattern.predicate(u).to_string()).collect()
    }
}

/// The pattern-independent view of one service batch, computed once and
/// handed to every registered engine's
/// [`IncrementalEngine::try_apply_shared`].
#[derive(Debug, Clone, Copy)]
pub struct SharedBatch<'a> {
    /// Length of the *original* batch (before reduction) — what each
    /// engine's [`AffStats::delta_g`] must report, exactly as the
    /// single-engine path does.
    pub batch_len: usize,
    /// True iff every update of the original batch is an insertion — the
    /// CALM monotone fast-path trigger, sampled on the original batch like
    /// the single-engine pipelines sample it.
    pub monotone: bool,
    /// The net-effective updates in first-touch order: the output of the
    /// shared `minDelta` net-effect reduction
    /// ([`igpm_graph::reduce_batch_sharded`]), identical to the effective
    /// list every engine's own reduction stage would produce.
    pub effective: &'a [Update],
}

/// Summary of one [`IncrementalEngine::shared_mutate`] run, consumed by
/// every engine's per-pattern apply.
#[derive(Debug, Clone, Default)]
pub struct SharedMutation {
    /// The nodes whose shared auxiliary entries changed (the `IncLM`
    /// affected set of the bounded engine). `None` for engines whose shared
    /// state is trivial.
    pub affected: Option<FastHashSet<NodeId>>,
    /// How many effective updates the shared mutation actually processed —
    /// what the bounded engine reports as [`AffStats::reduced_delta_g`].
    pub updates_processed: usize,
    /// How many shared auxiliary entries changed — the bounded engine's
    /// [`AffStats::aux_changes`] contribution of the landmark stage.
    pub affected_entries: usize,
}

/// Typed error of the fallible index constructors
/// ([`sim::SimulationIndex::try_build`], [`bsim::BoundedIndex::try_build`]).
/// The infallible `build*` names delegate to these and panic with exactly
/// the [`fmt::Display`] text below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The pattern is not a normal pattern (unit bounds only) — required by
    /// incremental simulation, which maintains matches over graph *edges*.
    NotNormal,
    /// The pattern has more nodes than the 64-bit membership masks can
    /// represent.
    ArityTooLarge {
        /// The offending pattern's node count.
        arity: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NotNormal => write!(f, "incremental simulation needs a normal pattern"),
            BuildError::ArityTooLarge { arity } => write!(
                f,
                "pattern arity {arity} exceeds the {}-bit membership masks",
                sim::MAX_PATTERN_NODES
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Result of one successful (transactional) batch application: the
/// [`AffStats`] accounting plus the emitted [`MatchDelta`].
///
/// The delta is expressed against the observable match view and obeys the
/// exact-view identity `view(t) = view(t-1) ∖ removed ⊎ inserted`; it is
/// bit-identical for every shard count (the delta extension of the shard
/// invariant, see `tests/delta_stream.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyOutcome {
    /// Statistics of the applied batch.
    pub stats: AffStats,
    /// The structured `ΔM` of the batch: the match pairs that entered and
    /// left the view, each list sorted ascending.
    pub delta: MatchDelta,
}

impl fmt::Display for ApplyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.stats, self.delta)
    }
}

/// Result of a lenient batch application: the statistics of the applied
/// portion plus every update that was skipped (with its reason).
#[derive(Debug, Clone, PartialEq)]
pub struct LenientApply {
    /// Statistics of the applied (valid) portion of the batch.
    pub stats: AffStats,
    /// The emitted [`MatchDelta`] of the applied portion — equal to the
    /// delta the strict path emits for the surviving (non-rejected) updates.
    pub delta: MatchDelta,
    /// The skipped updates, in batch order. Structurally invalid updates
    /// (out-of-range ids) were stripped before the engine saw the batch —
    /// their reported positions refer to the **original** batch, not the
    /// post-strip layout; redundant ones (duplicate inserts, absent deletes)
    /// were neutralised by the net-effect reduction — either way they had no
    /// effect.
    pub rejected: Vec<UpdateRejection>,
}

/// What the per-batch [`DeltaTracker`] records.
///
/// `Monotone` is the CALM fast path: a batch of pure insertions can only
/// grow the maximum (bounded) simulation — edge insertions never lengthen a
/// path and never retract a counter below its old value — so removal
/// tracking is skipped entirely and a `debug_assert!` documents that the
/// skipped tracker would have stayed empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) enum TrackMode {
    /// Cold-start build / refinement: no previous view exists, record
    /// nothing.
    #[default]
    Off,
    /// Insert-only batch: record insertions; removals are impossible.
    Monotone,
    /// General batch: record both directions.
    Full,
}

/// Per-batch recorder of raw match-bit transitions, owned by each engine and
/// armed at the top of every apply path. "Raw" means mask-level: the
/// finalisation step ([`finalize_delta`]) converts the raw transitions into
/// the view-level [`MatchDelta`], handling the collapse to the empty view
/// when some pattern node loses its last match (`P ⋬ G`) and the
/// resurrection out of it.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaTracker {
    mode: TrackMode,
    inserted: Vec<(u32, u32)>,
    removed: Vec<(u32, u32)>,
}

impl DeltaTracker {
    /// Starts recording for one batch. `monotone` engages the CALM fast
    /// path (insert-only batch): removal tracking is skipped.
    pub(crate) fn arm(&mut self, monotone: bool) {
        self.mode = if monotone { TrackMode::Monotone } else { TrackMode::Full };
        self.inserted.clear();
        self.removed.clear();
    }

    /// Stops recording and drops anything recorded (build paths, panic
    /// containment).
    pub(crate) fn reset(&mut self) {
        self.mode = TrackMode::Off;
        self.inserted.clear();
        self.removed.clear();
    }

    /// Records the raw transition `(u, v): candidate → match`.
    #[inline]
    pub(crate) fn record_inserted(&mut self, u: usize, v: u32) {
        if self.mode != TrackMode::Off {
            self.inserted.push((u as u32, v));
        }
    }

    /// Records the raw transition `(u, v): match → candidate`. A no-op in
    /// `Off` mode; unreachable in `Monotone` mode — the debug assertion is
    /// the proof obligation of the fast path.
    #[inline]
    pub(crate) fn record_removed(&mut self, u: usize, v: u32) {
        match self.mode {
            TrackMode::Off => {}
            TrackMode::Monotone => {
                debug_assert!(
                    false,
                    "monotone fast path violated: insert-only batch demoted (u{u}, n{v})"
                );
            }
            TrackMode::Full => self.removed.push((u as u32, v)),
        }
    }
}

/// What the engine should do with its cached [`MatchRelation`] view after a
/// batch, as decided by [`finalize_delta`]. Replaces the historical
/// unconditional `invalidate_cache()` on the apply paths: an empty delta
/// keeps the cache, a non-empty one patches it in place, and only the
/// collapse/resurrection transitions install a fresh value.
pub(crate) enum CacheOp {
    /// The view did not change — leave the cache exactly as it is.
    Keep,
    /// Patch a warm cache in place with the emitted delta (a cold cache
    /// stays cold).
    Patch,
    /// Install this relation as the new cached view (collapse installs the
    /// empty relation, resurrection installs the freshly rebuilt one).
    Install(MatchRelation),
}

/// Converts the raw transitions recorded by a [`DeltaTracker`] into the
/// view-level [`MatchDelta`] and the matching [`CacheOp`].
///
/// `was_match`/`now_match` are `is_match()` sampled immediately before the
/// tracker was armed and at finalisation; `raw_current_pairs` enumerates the
/// current mask-level pairs (consulted only on a collapse); `rebuild`
/// materialises the current view (consulted only on a resurrection).
pub(crate) fn finalize_delta(
    tracker: &mut DeltaTracker,
    was_match: bool,
    now_match: bool,
    pattern_nodes: usize,
    raw_current_pairs: impl FnOnce() -> Vec<(u32, u32)>,
    rebuild: impl FnOnce() -> MatchRelation,
) -> (MatchDelta, CacheOp) {
    let mut inserted = std::mem::take(&mut tracker.inserted);
    let mut removed = std::mem::take(&mut tracker.removed);
    tracker.reset();
    inserted.sort_unstable();
    removed.sort_unstable();
    debug_assert!(inserted.windows(2).all(|w| w[0] != w[1]), "duplicate raw insertion");
    debug_assert!(removed.windows(2).all(|w| w[0] != w[1]), "duplicate raw removal");
    match (was_match, now_match) {
        // The view was empty and stays empty: raw candidate churn is not
        // observable, nothing to emit, the cache (cold, or a warm empty
        // relation) is still exact.
        (false, false) => (MatchDelta::empty(), CacheOp::Keep),
        // The ordinary case: the raw transitions are the view transitions,
        // minus the pairs that flipped both ways within the batch (demoted
        // by the deletion half, re-promoted by the insertion half).
        (true, true) => {
            let (inserted, removed) = cancel_opposites(inserted, removed);
            let delta = MatchDelta { inserted: to_pairs(inserted), removed: to_pairs(removed) };
            if delta.is_empty() {
                (delta, CacheOp::Keep)
            } else {
                (delta, CacheOp::Patch)
            }
        }
        // Collapse: some pattern node lost its last match, the view drops
        // from view(t-1) to ∅ — emit the *entire previous view* as removed,
        // reconstructed from the current masks by undoing the raw churn.
        (true, false) => {
            let mut previous = raw_current_pairs();
            previous.sort_unstable();
            previous.retain(|pair| inserted.binary_search(pair).is_err());
            previous.extend(removed);
            previous.sort_unstable();
            let delta = MatchDelta { inserted: Vec::new(), removed: to_pairs(previous) };
            (delta, CacheOp::Install(MatchRelation::empty(pattern_nodes)))
        }
        // Resurrection: every pattern node (re)gained a match, the view
        // jumps from ∅ to the full current relation — emit it whole and
        // install it as the warm cache (it was just materialised anyway).
        (false, true) => {
            let view = rebuild();
            let mut pairs: Vec<(PatternNodeId, NodeId)> = view.pairs().collect();
            pairs.sort_unstable();
            let delta = MatchDelta { inserted: pairs, removed: Vec::new() };
            (delta, CacheOp::Install(view))
        }
    }
}

/// Sorted raw `(pattern_bit, data_index)` pairs at the mask level.
type RawPairs = Vec<(u32, u32)>;

/// Two-pointer removal of the pairs present in both sorted lists — a pair
/// demoted and re-promoted within one batch has no net view effect.
fn cancel_opposites(inserted: RawPairs, removed: RawPairs) -> (RawPairs, RawPairs) {
    if inserted.is_empty() || removed.is_empty() {
        return (inserted, removed);
    }
    let mut kept_inserted = Vec::with_capacity(inserted.len());
    let mut kept_removed = Vec::with_capacity(removed.len());
    let (mut i, mut j) = (0, 0);
    while i < inserted.len() && j < removed.len() {
        match inserted[i].cmp(&removed[j]) {
            std::cmp::Ordering::Less => {
                kept_inserted.push(inserted[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                kept_removed.push(removed[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    kept_inserted.extend_from_slice(&inserted[i..]);
    kept_removed.extend_from_slice(&removed[j..]);
    (kept_inserted, kept_removed)
}

fn to_pairs(raw: Vec<(u32, u32)>) -> Vec<(PatternNodeId, NodeId)> {
    raw.into_iter().map(|(u, v)| (PatternNodeId(u), NodeId(v))).collect()
}

/// How far the batch pipeline progressed — consulted by the panic
/// containment to decide between rollback and poisoning. Stages are set
/// *before* their work begins, so the stage recorded at unwind time is the
/// stage whose work (or whose entry failpoint) panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PipelineStage {
    /// Growing per-node arrays / planning shards; auxiliary arrays may be
    /// mid-growth, the graph is untouched.
    Prepare,
    /// Net-effect reduction: pure reads, nothing mutated yet.
    Reduce,
    /// Graph mutation: the graph is (partially) mutated, auxiliary state is
    /// still pre-batch.
    Mutate,
    /// Landmark/distance maintenance (`IncLM`, bounded engine only): graph
    /// and landmark vectors mutate interleaved.
    Landmark,
    /// Pair re-evaluation (bounded engine only).
    Refresh,
    /// Counter absorption (plain engine only).
    Absorb,
    /// Demotion drain.
    Demote,
    /// Promotion drain.
    Promote,
}

impl PipelineStage {
    pub(crate) fn label(self) -> &'static str {
        match self {
            PipelineStage::Prepare => "prepare",
            PipelineStage::Reduce => "reduce",
            PipelineStage::Mutate => "mutate",
            PipelineStage::Landmark => "landmark",
            PipelineStage::Refresh => "refresh",
            PipelineStage::Absorb => "absorb",
            PipelineStage::Demote => "demote",
            PipelineStage::Promote => "promote",
        }
    }
}

/// Renders a `catch_unwind` payload as text (panics carry `&str` or `String`
/// payloads everywhere in this workspace).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Strips the structurally invalid updates (out-of-range ids) out of `batch`
/// for the lenient path. Returns `None` when nothing needs stripping — the
/// caller then applies the original batch unchanged, so the lenient path is
/// byte-identical to the historical `apply_batch` for well-formed input
/// (redundant updates are neutralised by the net-effect reduction either
/// way).
pub(crate) fn strip_out_of_range(
    batch: &BatchUpdate,
    rejections: &[UpdateRejection],
) -> Option<BatchUpdate> {
    if rejections.iter().all(|r| r.reason != RejectReason::NodeOutOfRange) {
        return None;
    }
    let mut bad = rejections
        .iter()
        .filter(|r| r.reason == RejectReason::NodeOutOfRange)
        .map(|r| r.position)
        .peekable();
    let mut kept = Vec::with_capacity(batch.len());
    for (position, &update) in batch.iter().enumerate() {
        if bad.peek() == Some(&position) {
            bad.next();
        } else {
            kept.push(update);
        }
    }
    Some(BatchUpdate::from_updates(kept))
}

/// Guard used by the infallible `apply_batch` delegates: re-raises a
/// contained error as a panic, preserving the historical "a bad batch or a
/// mid-batch bug panics" behaviour — but with the state guarantees of the
/// containment (rolled back or poisoned) instead of a torn index.
pub(crate) fn unwrap_apply<T>(result: Result<T, ApplyError>) -> T {
    result.unwrap_or_else(|error| panic!("apply_batch: {error}"))
}

/// Phase A of the sharded SCC-joint protocol shared by `sim::prop_cc` and
/// `bsim::promote_sccs`: evaluate every nontrivial component's verdict
/// speculatively on scoped threads — each SCC owned by one worker, ownership
/// striped over the enumeration (at most `stripes` workers) — and slot the
/// results back by enumeration index, ready for the ordered commit with
/// dirty fallback that phase B of each engine performs. `evaluate` must be a
/// pure read of the engine state: different components run concurrently
/// against the same frozen state, and a verdict is discarded (re-evaluated
/// live) whenever an earlier commit promoted something.
pub(crate) fn speculate_scc_verdicts<V: Send>(
    comp_masks: &[u64],
    stripes: usize,
    evaluate: impl Fn(u64) -> V + Sync,
) -> Vec<Option<V>> {
    let stripes = stripes.clamp(1, comp_masks.len());
    let mut slots: Vec<Option<V>> = (0..comp_masks.len()).map(|_| None).collect();
    let evaluated: Vec<Vec<(usize, V)>> = std::thread::scope(|scope| {
        let evaluate = &evaluate;
        let handles: Vec<_> = (0..stripes)
            .map(|stripe| {
                scope.spawn(move || {
                    comp_masks
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % stripes == stripe)
                        .map(|(i, &mask)| (i, evaluate(mask)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("SCC speculation worker panicked")).collect()
    });
    for (i, verdict) in evaluated.into_iter().flatten() {
        slots[i] = Some(verdict);
    }
    slots
}
