//! Incremental graph pattern matching (Sections 5 and 6).
//!
//! * [`sim`] — incremental **graph simulation**: the auxiliary
//!   `match()`/`candt()` structures, `IncMatch-` (unit deletions),
//!   `IncMatch+`/`IncMatch+dag` (unit insertions) and the batch `IncMatch`
//!   with the `minDelta` update reduction.
//! * [`bsim`] — incremental **bounded simulation**: landmark/distance vectors
//!   as the distance-side auxiliary structure, cc/cs/ss *pairs* instead of
//!   edges, and the `IncBMatch+`/`IncBMatch-`/`IncBMatch` procedures.
//!
//! Shard configuration (the `IGPM_SHARDS` knob and the contiguous node-range
//! partition) lives at its canonical home, [`igpm_graph::shard`]; both
//! engines import it from there directly.

pub mod bsim;
pub mod sim;

/// Phase A of the sharded SCC-joint protocol shared by `sim::prop_cc` and
/// `bsim::promote_sccs`: evaluate every nontrivial component's verdict
/// speculatively on scoped threads — each SCC owned by one worker, ownership
/// striped over the enumeration (at most `stripes` workers) — and slot the
/// results back by enumeration index, ready for the ordered commit with
/// dirty fallback that phase B of each engine performs. `evaluate` must be a
/// pure read of the engine state: different components run concurrently
/// against the same frozen state, and a verdict is discarded (re-evaluated
/// live) whenever an earlier commit promoted something.
pub(crate) fn speculate_scc_verdicts<V: Send>(
    comp_masks: &[u64],
    stripes: usize,
    evaluate: impl Fn(u64) -> V + Sync,
) -> Vec<Option<V>> {
    let stripes = stripes.clamp(1, comp_masks.len());
    let mut slots: Vec<Option<V>> = (0..comp_masks.len()).map(|_| None).collect();
    let evaluated: Vec<Vec<(usize, V)>> = std::thread::scope(|scope| {
        let evaluate = &evaluate;
        let handles: Vec<_> = (0..stripes)
            .map(|stripe| {
                scope.spawn(move || {
                    comp_masks
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % stripes == stripe)
                        .map(|(i, &mask)| (i, evaluate(mask)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("SCC speculation worker panicked")).collect()
    });
    for (i, verdict) in evaluated.into_iter().flatten() {
        slots[i] = Some(verdict);
    }
    slots
}
