//! Incremental graph pattern matching (Sections 5 and 6).
//!
//! * [`sim`] — incremental **graph simulation**: the auxiliary
//!   `match()`/`candt()` structures, `IncMatch-` (unit deletions),
//!   `IncMatch+`/`IncMatch+dag` (unit insertions) and the batch `IncMatch`
//!   with the `minDelta` update reduction.
//! * [`bsim`] — incremental **bounded simulation**: landmark/distance vectors
//!   as the distance-side auxiliary structure, cc/cs/ss *pairs* instead of
//!   edges, and the `IncBMatch+`/`IncBMatch-`/`IncBMatch` procedures.
//! * [`shard`] — shard configuration (the `IGPM_SHARDS` knob and the
//!   contiguous node-range partition, re-exported from
//!   [`igpm_graph::shard`]) shared by the parallel batch paths and the
//!   parallel cold-start builds of both engines.

pub mod bsim;
pub mod shard;
pub mod sim;
