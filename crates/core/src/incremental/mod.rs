//! Incremental graph pattern matching (Sections 5 and 6).
//!
//! * [`sim`] — incremental **graph simulation**: the auxiliary
//!   `match()`/`candt()` structures, `IncMatch-` (unit deletions),
//!   `IncMatch+`/`IncMatch+dag` (unit insertions) and the batch `IncMatch`
//!   with the `minDelta` update reduction.
//! * [`bsim`] — incremental **bounded simulation**: landmark/distance vectors
//!   as the distance-side auxiliary structure, cc/cs/ss *pairs* instead of
//!   edges, and the `IncBMatch+`/`IncBMatch-`/`IncBMatch` procedures.
//!
//! Shard configuration (the `IGPM_SHARDS` knob and the contiguous node-range
//! partition) lives at its canonical home, [`igpm_graph::shard`]; both
//! engines import it from there directly.
//!
//! # Failure model: panics, errors and invariants
//!
//! Both engines expose a *transactional* batch boundary (see `RECOVERY.md`
//! at the repository root):
//!
//! * [`SimulationIndex::try_apply_batch`](sim::SimulationIndex::try_apply_batch)
//!   / [`BoundedIndex::try_apply_batch`](bsim::BoundedIndex::try_apply_batch)
//!   — the canonical fallible APIs. Batches are validated up front
//!   ([`igpm_graph::update::validate_batch`]) and rejected whole
//!   ([`ApplyError::InvalidBatch`]) if any update is out of range, a
//!   duplicate insert or an absent delete; nothing is touched on rejection.
//! * `apply_batch_lenient` — the explicit lossy variant: structurally
//!   invalid updates (out-of-range ids) are stripped, redundant updates
//!   (duplicate inserts, absent deletes) are neutralised by the net-effect
//!   reduction, and every skipped update is reported.
//! * `apply_batch` — the historical infallible name, now a delegate of the
//!   lenient path: identical behaviour for well-formed input, a clean panic
//!   (with state contained as below) instead of silent corruption otherwise.
//!
//! A panic *mid-batch* — an armed [`igpm_graph::fail`] failpoint or a real
//! bug — is caught at the batch boundary (`catch_unwind`; the scoped worker
//! threads of every sharded stage funnel their panics through their join
//! handles into the same containment). The containment consults how far the
//! pipeline got: panics before any mutation leave everything untouched;
//! panics during graph mutation roll the graph back
//! ([`igpm_graph::DataGraph::rollback_updates`]) with the auxiliary state
//! untouched (the index stays usable); panics after auxiliary mutation began
//! roll the graph back and **poison** the index — reads error with
//! [`ApplyError::Poisoned`] until `recover()` rebuilds from the graph via
//! the ordinary sharded build, which is bit-identical to a fresh build by
//! the build-equivalence invariant.
//!
//! The `unwrap`/`expect`/`assert!` occurrences that remain in these engines
//! fall into two audited classes:
//!
//! * **Input-reachable conditions** are typed errors or documented panics at
//!   the API boundary: batch shape → [`ApplyError`]; pattern shape
//!   (non-normal pattern, arity > 64) → [`BuildError`] via `try_build*`,
//!   with the infallible `build*` names delegating and panicking; reading a
//!   poisoned index → [`ApplyError::Poisoned`] from the `try_*` readers, a
//!   documented panic from the infallible readers. No other panic is
//!   reachable from user input that passed validation.
//! * **Internal invariants** stay as asserts on purpose: worker-thread join
//!   `expect`s ("… shard panicked" — re-raising a contained panic, not an
//!   error of their own), counter-underflow and mask-consistency
//!   `debug_assert`s, and the "reduced batch contained a no-op" checks that
//!   guard the reduced-batch precondition inside the mutation kernels.
//!   Turning those into `Result`s would hide engine bugs instead of
//!   surfacing them; the containment layer above converts any such failure
//!   into rollback-or-poison rather than a torn index.

pub mod bsim;
pub mod sim;

use crate::stats::AffStats;
use igpm_graph::update::{RejectReason, UpdateRejection};
use igpm_graph::{ApplyError, BatchUpdate, DataGraph, MatchRelation, Pattern};
use std::fmt;

/// The engine-shaped hole in the recovery machinery: everything an
/// orchestrator (in-memory poison recovery, or the on-disk
/// [`DurableIndex`](crate::durable::DurableIndex)) needs from an incremental
/// matching engine, implemented by both [`sim::SimulationIndex`] and
/// [`bsim::BoundedIndex`].
///
/// The trait's centrepiece is the **provided**
/// [`recover_with_shards`](IncrementalEngine::recover_with_shards): the
/// single shared rebuild-and-clear-poison step. Rebuilding via the ordinary
/// sharded cold-start build is bit-identical to a fresh build by the
/// build-equivalence invariant, and assigning the fresh value over `*self`
/// drops every possibly-torn auxiliary structure *and* the poisoned flag in
/// one move — there is no separate poison bookkeeping to forget. Both
/// engines' inherent `recover_with_shards` delegate here, and
/// `DurableIndex` composes the same step with WAL replay (see the
/// "Durability" section of `RECOVERY.md`).
pub trait IncrementalEngine: Sized {
    /// Cold-start build over `shards` shards — the engines' inherent
    /// `build_with_shards`.
    ///
    /// # Panics
    /// Panics on an unbuildable pattern (see [`BuildError`]), exactly like
    /// the inherent constructor it delegates to.
    fn rebuild_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self;

    /// The pattern the index was built for.
    fn pattern(&self) -> &Pattern;

    /// The transactional batch boundary — the engines' inherent
    /// `try_apply_batch_with_shards` (validate whole, apply whole, contain
    /// panics as rollback-or-poison).
    fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<AffStats, ApplyError>;

    /// The current maximum match, or [`ApplyError::Poisoned`].
    fn try_matches(&self) -> Result<MatchRelation, ApplyError>;

    /// True iff a contained panic tore the auxiliary state and the index
    /// must be recovered before further use.
    fn poisoned(&self) -> bool;

    /// Rebuilds the index from `graph` via the ordinary sharded cold-start
    /// build, clearing the poisoned flag — bit-identical to a fresh build by
    /// the build-equivalence invariant. The one shared recovery step; see
    /// the trait docs.
    fn recover_with_shards(&mut self, graph: &DataGraph, shards: usize) {
        *self = Self::rebuild_with_shards(self.pattern(), graph, shards);
    }
}

/// Typed error of the fallible index constructors
/// ([`sim::SimulationIndex::try_build`], [`bsim::BoundedIndex::try_build`]).
/// The infallible `build*` names delegate to these and panic with exactly
/// the [`fmt::Display`] text below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The pattern is not a normal pattern (unit bounds only) — required by
    /// incremental simulation, which maintains matches over graph *edges*.
    NotNormal,
    /// The pattern has more nodes than the 64-bit membership masks can
    /// represent.
    ArityTooLarge {
        /// The offending pattern's node count.
        arity: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NotNormal => write!(f, "incremental simulation needs a normal pattern"),
            BuildError::ArityTooLarge { arity } => write!(
                f,
                "pattern arity {arity} exceeds the {}-bit membership masks",
                sim::MAX_PATTERN_NODES
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Result of a lenient batch application: the statistics of the applied
/// portion plus every update that was skipped (with its reason).
#[derive(Debug, Clone, PartialEq)]
pub struct LenientApply {
    /// Statistics of the applied (valid) portion of the batch.
    pub stats: AffStats,
    /// The skipped updates, in batch order. Structurally invalid updates
    /// (out-of-range ids) were stripped before the engine saw the batch;
    /// redundant ones (duplicate inserts, absent deletes) were neutralised
    /// by the net-effect reduction — either way they had no effect.
    pub rejected: Vec<UpdateRejection>,
}

/// How far the batch pipeline progressed — consulted by the panic
/// containment to decide between rollback and poisoning. Stages are set
/// *before* their work begins, so the stage recorded at unwind time is the
/// stage whose work (or whose entry failpoint) panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PipelineStage {
    /// Growing per-node arrays / planning shards; auxiliary arrays may be
    /// mid-growth, the graph is untouched.
    Prepare,
    /// Net-effect reduction: pure reads, nothing mutated yet.
    Reduce,
    /// Graph mutation: the graph is (partially) mutated, auxiliary state is
    /// still pre-batch.
    Mutate,
    /// Landmark/distance maintenance (`IncLM`, bounded engine only): graph
    /// and landmark vectors mutate interleaved.
    Landmark,
    /// Pair re-evaluation (bounded engine only).
    Refresh,
    /// Counter absorption (plain engine only).
    Absorb,
    /// Demotion drain.
    Demote,
    /// Promotion drain.
    Promote,
}

impl PipelineStage {
    pub(crate) fn label(self) -> &'static str {
        match self {
            PipelineStage::Prepare => "prepare",
            PipelineStage::Reduce => "reduce",
            PipelineStage::Mutate => "mutate",
            PipelineStage::Landmark => "landmark",
            PipelineStage::Refresh => "refresh",
            PipelineStage::Absorb => "absorb",
            PipelineStage::Demote => "demote",
            PipelineStage::Promote => "promote",
        }
    }
}

/// Renders a `catch_unwind` payload as text (panics carry `&str` or `String`
/// payloads everywhere in this workspace).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Strips the structurally invalid updates (out-of-range ids) out of `batch`
/// for the lenient path. Returns `None` when nothing needs stripping — the
/// caller then applies the original batch unchanged, so the lenient path is
/// byte-identical to the historical `apply_batch` for well-formed input
/// (redundant updates are neutralised by the net-effect reduction either
/// way).
pub(crate) fn strip_out_of_range(
    batch: &BatchUpdate,
    rejections: &[UpdateRejection],
) -> Option<BatchUpdate> {
    if rejections.iter().all(|r| r.reason != RejectReason::NodeOutOfRange) {
        return None;
    }
    let mut bad = rejections
        .iter()
        .filter(|r| r.reason == RejectReason::NodeOutOfRange)
        .map(|r| r.position)
        .peekable();
    let mut kept = Vec::with_capacity(batch.len());
    for (position, &update) in batch.iter().enumerate() {
        if bad.peek() == Some(&position) {
            bad.next();
        } else {
            kept.push(update);
        }
    }
    Some(BatchUpdate::from_updates(kept))
}

/// Guard used by the infallible `apply_batch` delegates: re-raises a
/// contained error as a panic, preserving the historical "a bad batch or a
/// mid-batch bug panics" behaviour — but with the state guarantees of the
/// containment (rolled back or poisoned) instead of a torn index.
pub(crate) fn unwrap_apply<T>(result: Result<T, ApplyError>) -> T {
    result.unwrap_or_else(|error| panic!("apply_batch: {error}"))
}

/// Phase A of the sharded SCC-joint protocol shared by `sim::prop_cc` and
/// `bsim::promote_sccs`: evaluate every nontrivial component's verdict
/// speculatively on scoped threads — each SCC owned by one worker, ownership
/// striped over the enumeration (at most `stripes` workers) — and slot the
/// results back by enumeration index, ready for the ordered commit with
/// dirty fallback that phase B of each engine performs. `evaluate` must be a
/// pure read of the engine state: different components run concurrently
/// against the same frozen state, and a verdict is discarded (re-evaluated
/// live) whenever an earlier commit promoted something.
pub(crate) fn speculate_scc_verdicts<V: Send>(
    comp_masks: &[u64],
    stripes: usize,
    evaluate: impl Fn(u64) -> V + Sync,
) -> Vec<Option<V>> {
    let stripes = stripes.clamp(1, comp_masks.len());
    let mut slots: Vec<Option<V>> = (0..comp_masks.len()).map(|_| None).collect();
    let evaluated: Vec<Vec<(usize, V)>> = std::thread::scope(|scope| {
        let evaluate = &evaluate;
        let handles: Vec<_> = (0..stripes)
            .map(|stripe| {
                scope.spawn(move || {
                    comp_masks
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % stripes == stripe)
                        .map(|(i, &mask)| (i, evaluate(mask)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("SCC speculation worker panicked")).collect()
    });
    for (i, verdict) in evaluated.into_iter().flatten() {
        slots[i] = Some(verdict);
    }
    slots
}
