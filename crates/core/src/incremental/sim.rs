//! Incremental graph simulation (Section 5): `IncMatch-`, `IncMatch+`,
//! `IncMatch+dag` and the batch `IncMatch` with `minDelta`.
//!
//! The auxiliary structures are exactly the ones the paper identifies as
//! *necessary local information* (Section 4): for every pattern node `u`, the
//! set `match(u)` of current matches and the set `candt(u)` of candidates
//! (nodes that satisfy the predicate of `u` but do not currently match it).
//! Updates are classified per pattern edge into `ss`, `cs` and `cc` edges
//! (Table II):
//!
//! * only deletions of **ss** edges can invalidate matches
//!   (Proposition 5.1) — handled by [`SimulationIndex::delete_edge`], which
//!   propagates invalidations through the affected area only;
//! * only insertions of **cs** or **cc** edges can create matches
//!   (Proposition 5.2) — handled by [`SimulationIndex::insert_edge`]; `cc`
//!   edges matter only inside strongly connected components of the pattern,
//!   which is where the `propCC` phase runs;
//! * batch updates go through [`SimulationIndex::apply_batch`], which first
//!   reduces `ΔG` (`minDelta`): updates with no net effect on the graph and
//!   updates that are not `ss`/`cs`/`cc` edges for any pattern edge are
//!   discarded before any matching work happens.

use crate::simulation::{candidates, simulation_result_graph};
use crate::stats::AffStats;
use igpm_distance::landmark_inc::reduce_batch;
use igpm_graph::hash::FastHashSet;
use igpm_graph::{
    BatchUpdate, DataGraph, MatchRelation, NodeId, Pattern, PatternNodeId, ResultGraph,
    StronglyConnectedComponents, Update,
};

/// Auxiliary state for incremental simulation over one pattern.
#[derive(Debug, Clone)]
pub struct SimulationIndex {
    pattern: Pattern,
    /// `match(u)`: data nodes currently simulating pattern node `u`.
    match_sets: Vec<FastHashSet<NodeId>>,
    /// `candt(u)`: data nodes satisfying the predicate of `u` but not matching it.
    candt_sets: Vec<FastHashSet<NodeId>>,
    /// Pattern SCC information, used to decide when `propCC` must run.
    scc: StronglyConnectedComponents,
    /// True if the pattern contains a nontrivial SCC (a cycle).
    has_cycle: bool,
}

impl SimulationIndex {
    /// Builds the index by computing the maximum simulation from scratch (the
    /// batch `Matchs` step that seeds every incremental session).
    ///
    /// # Panics
    /// Panics if `pattern` is not a normal pattern.
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        assert!(pattern.is_normal(), "incremental simulation needs a normal pattern");
        let all_candidates = candidates(pattern, graph);
        let scc = StronglyConnectedComponents::of_pattern(pattern);
        let has_cycle = scc.components().any(|c| scc.is_nontrivial(c));

        let mut index = SimulationIndex {
            pattern: pattern.clone(),
            match_sets: all_candidates
                .iter()
                .map(|list| list.iter().copied().collect())
                .collect(),
            candt_sets: vec![FastHashSet::default(); pattern.node_count()],
            scc,
            has_cycle,
        };
        // Refine the candidate sets down to the greatest fixpoint.
        index.refine_all(graph);
        // candt(u) = candidates \ match(u).
        for (u_idx, list) in all_candidates.into_iter().enumerate() {
            for v in list {
                if !index.match_sets[u_idx].contains(&v) {
                    index.candt_sets[u_idx].insert(v);
                }
            }
        }
        index
    }

    /// The pattern the index maintains matches for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The current maximum match `M_sim(P, G)`. Empty if some pattern node has
    /// no match (i.e. `P ⋬_sim G`).
    pub fn matches(&self) -> MatchRelation {
        if self.match_sets.iter().any(FastHashSet::is_empty) {
            return MatchRelation::empty(self.pattern.node_count());
        }
        MatchRelation::from_lists(
            self.match_sets.iter().map(|set| set.iter().copied().collect::<Vec<_>>()),
        )
    }

    /// True if every pattern node currently has at least one match.
    pub fn is_match(&self) -> bool {
        !self.match_sets.is_empty() && self.match_sets.iter().all(|s| !s.is_empty())
    }

    /// The current matches of one pattern node (may be nonempty even when the
    /// overall pattern does not match — this is the partial information that
    /// makes the problem semi-bounded rather than bounded, cf. Example 4.3).
    pub fn match_set(&self, u: PatternNodeId) -> &FastHashSet<NodeId> {
        &self.match_sets[u.index()]
    }

    /// The current candidates of one pattern node.
    pub fn candidate_set(&self, u: PatternNodeId) -> &FastHashSet<NodeId> {
        &self.candt_sets[u.index()]
    }

    /// Builds the result graph `G_r` for the current match.
    pub fn result_graph(&self, graph: &DataGraph) -> ResultGraph {
        simulation_result_graph(&self.pattern, graph, &self.matches())
    }

    // ------------------------------------------------------------------
    // Unit updates
    // ------------------------------------------------------------------

    /// `IncMatch-`: deletes the edge `(from, to)` from `graph` and maintains
    /// the match (optimal, `O(|AFF|)`, Theorem 5.1(2a)).
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        if !graph.remove_edge(from, to) {
            return stats;
        }
        if !self.is_ss_edge(from, to) {
            // Proposition 5.1: non-ss deletions cannot change the match.
            return stats;
        }
        stats.reduced_delta_g = 1;
        self.process_deletions(graph, &[(from, to)], &mut stats);
        stats
    }

    /// `IncMatch+` (general patterns) / `IncMatch+dag` (DAG patterns — the
    /// `propCC` phase simply never fires): inserts the edge `(from, to)` into
    /// `graph` and maintains the match.
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        if !graph.add_edge(from, to) {
            return stats;
        }
        if !self.is_cs_or_cc_edge(from, to) {
            // Proposition 5.2: only cs/cc insertions can add matches.
            return stats;
        }
        stats.reduced_delta_g = 1;
        self.process_insertions(graph, &[(from, to)], &mut stats);
        stats
    }

    // ------------------------------------------------------------------
    // Batch updates: IncMatch with minDelta
    // ------------------------------------------------------------------

    /// `IncMatch`: applies a batch of updates after reducing it with
    /// `minDelta`, processing all deletions simultaneously and then all
    /// insertions simultaneously (Fig. 10).
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> AffStats {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };

        // minDelta step 1: drop updates whose net effect on the graph is nil.
        let (effective, _) = reduce_batch(graph, batch);

        // minDelta step 2: drop updates that are irrelevant to the pattern
        // (not ss edges for deletions, not cs/cc edges for insertions). They
        // are still applied to the graph below.
        let mut relevant_deletions: Vec<(NodeId, NodeId)> = Vec::new();
        let mut relevant_insertions: Vec<(NodeId, NodeId)> = Vec::new();
        for update in &effective {
            let (a, b) = update.endpoints();
            match update {
                Update::DeleteEdge { .. } if self.is_ss_edge(a, b) => relevant_deletions.push((a, b)),
                Update::InsertEdge { .. } if self.is_cs_or_cc_edge(a, b) => relevant_insertions.push((a, b)),
                _ => {}
            }
        }
        stats.reduced_delta_g = relevant_deletions.len() + relevant_insertions.len();

        // Apply the whole (net) batch to the graph before any matching work so
        // that every support check sees the final graph.
        for update in &effective {
            update.apply(graph);
        }

        // Deletions first (they can only shrink), then insertions.
        if !relevant_deletions.is_empty() {
            self.process_deletions(graph, &relevant_deletions, &mut stats);
        }
        if !relevant_insertions.is_empty() {
            self.process_insertions(graph, &relevant_insertions, &mut stats);
        }
        stats
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// True if `(from, to)` is an ss edge for some pattern edge: both
    /// endpoints currently match the edge's endpoints.
    fn is_ss_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.pattern.edges().iter().any(|e| {
            self.match_sets[e.from.index()].contains(&from)
                && self.match_sets[e.to.index()].contains(&to)
        })
    }

    /// True if `(from, to)` is a cs or cc edge for some pattern edge: the
    /// source is a candidate and the target is a candidate or a match.
    fn is_cs_or_cc_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.pattern.edges().iter().any(|e| {
            self.candt_sets[e.from.index()].contains(&from)
                && (self.match_sets[e.to.index()].contains(&to)
                    || self.candt_sets[e.to.index()].contains(&to))
        })
    }

    /// Does `v` (as a match of `u`) still have, for every pattern edge
    /// `(u, u2)`, a graph child matching `u2`?
    fn has_full_support(&self, graph: &DataGraph, u: PatternNodeId, v: NodeId) -> bool {
        self.pattern.children(u).iter().all(|&(u2, _)| {
            graph
                .children(v)
                .iter()
                .any(|w| self.match_sets[u2.index()].contains(w))
        })
    }

    /// Deletion propagation: seeds are deleted ss edges; every invalidated
    /// match is demoted to a candidate and its graph parents are re-checked.
    fn process_deletions(&mut self, graph: &DataGraph, deleted: &[(NodeId, NodeId)], stats: &mut AffStats) {
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(a, b) in deleted {
            for edge in self.pattern.edges() {
                if self.match_sets[edge.from.index()].contains(&a)
                    && self.match_sets[edge.to.index()].contains(&b)
                {
                    worklist.push((edge.from, a));
                }
            }
        }
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if !self.match_sets[u.index()].contains(&v) {
                continue;
            }
            if self.has_full_support(graph, u, v) {
                continue;
            }
            // v no longer matches u: demote it to a candidate.
            self.match_sets[u.index()].remove(&v);
            self.candt_sets[u.index()].insert(v);
            stats.matches_removed += 1;
            stats.aux_changes += 1;
            // Parents of v that matched a pattern parent of u must be re-checked.
            for &(u_parent, _) in self.pattern.parents(u) {
                for &p in graph.parents(v) {
                    if self.match_sets[u_parent.index()].contains(&p) {
                        worklist.push((u_parent, p));
                    }
                }
            }
        }
    }

    /// Insertion propagation: the `propCS` / `propCC` loop of `IncMatch+`.
    fn process_insertions(&mut self, graph: &DataGraph, inserted: &[(NodeId, NodeId)], stats: &mut AffStats) {
        // propCS seeds: sources of the inserted cs/cc edges.
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(a, b) in inserted {
            for edge in self.pattern.edges() {
                let source_is_cand = self.candt_sets[edge.from.index()].contains(&a);
                let target_known = self.match_sets[edge.to.index()].contains(&b)
                    || self.candt_sets[edge.to.index()].contains(&b);
                if source_is_cand && target_known {
                    worklist.push((edge.from, a));
                }
            }
        }
        // Does some inserted edge fall inside a nontrivial pattern SCC
        // (Proposition 5.2(3))? If so propCC must run at least once even if
        // propCS promotes nothing.
        let mut run_cc = self.has_cycle && self.inserted_touches_scc(inserted);

        loop {
            let promoted_cs = self.prop_cs(graph, &mut worklist, stats);
            if promoted_cs {
                // New matches may wake SCC candidates that depend on them.
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.prop_cc(graph, stats, &mut worklist);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                // Another round: promotions can cascade through propCS and may
                // re-enable further SCC candidates.
                run_cc = true;
            }
        }
    }

    /// True if some inserted edge is a cs/cc/ss edge for a pattern edge lying
    /// inside a nontrivial SCC of the pattern.
    fn inserted_touches_scc(&self, inserted: &[(NodeId, NodeId)]) -> bool {
        inserted.iter().any(|&(a, b)| {
            self.pattern.edges().iter().any(|e| {
                let same_comp = self.scc.component_of(e.from.index()) == self.scc.component_of(e.to.index());
                if !same_comp || !self.scc.is_nontrivial(self.scc.component_of(e.from.index())) {
                    return false;
                }
                (self.candt_sets[e.from.index()].contains(&a) || self.match_sets[e.from.index()].contains(&a))
                    && (self.candt_sets[e.to.index()].contains(&b) || self.match_sets[e.to.index()].contains(&b))
            })
        })
    }

    /// Promotes candidates from a worklist; every promotion re-enqueues the
    /// candidate parents of the promoted node. Returns true if anything was
    /// promoted.
    fn prop_cs(
        &mut self,
        graph: &DataGraph,
        worklist: &mut Vec<(PatternNodeId, NodeId)>,
        stats: &mut AffStats,
    ) -> bool {
        let mut promoted_any = false;
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if !self.candt_sets[u.index()].contains(&v) {
                continue;
            }
            if !self.has_full_support(graph, u, v) {
                continue;
            }
            self.candt_sets[u.index()].remove(&v);
            self.match_sets[u.index()].insert(v);
            stats.matches_added += 1;
            stats.aux_changes += 1;
            promoted_any = true;
            for &(u_parent, _) in self.pattern.parents(u) {
                for &p in graph.parents(v) {
                    if self.candt_sets[u_parent.index()].contains(&p) {
                        worklist.push((u_parent, p));
                    }
                }
            }
        }
        promoted_any
    }

    /// Evaluates candidates of every nontrivial pattern SCC jointly: tentatively
    /// assume all candidates of the SCC match, refine the assumption down to a
    /// fixpoint, and promote the survivors. Survivor promotions enqueue their
    /// candidate parents on `worklist` for the next `propCS` pass. Returns
    /// true if anything was promoted.
    fn prop_cc(
        &mut self,
        graph: &DataGraph,
        stats: &mut AffStats,
        worklist: &mut Vec<(PatternNodeId, NodeId)>,
    ) -> bool {
        let mut promoted_any = false;
        let components: Vec<_> = self.scc.components().collect();
        for comp in components {
            if !self.scc.is_nontrivial(comp) {
                continue;
            }
            let members: Vec<PatternNodeId> = self
                .scc
                .members(comp)
                .iter()
                .map(|&i| PatternNodeId::from_index(i))
                .collect();

            // tentative(u) = candidates of u still assumed viable (matches are
            // kept implicitly: they can never be invalidated by insertions).
            let mut tentative: Vec<FastHashSet<NodeId>> = vec![FastHashSet::default(); self.pattern.node_count()];
            for &u in &members {
                tentative[u.index()] = self.candt_sets[u.index()].clone();
            }
            let in_scc = |u: PatternNodeId| members.contains(&u);

            let mut changed = true;
            while changed {
                changed = false;
                for &u in &members {
                    let survivors: Vec<NodeId> = tentative[u.index()]
                        .iter()
                        .copied()
                        .filter(|&v| {
                            stats.nodes_visited += 1;
                            self.pattern.children(u).iter().all(|&(u2, _)| {
                                graph.children(v).iter().any(|w| {
                                    self.match_sets[u2.index()].contains(w)
                                        || (in_scc(u2) && tentative[u2.index()].contains(w))
                                })
                            })
                        })
                        .collect();
                    if survivors.len() != tentative[u.index()].len() {
                        changed = true;
                        tentative[u.index()] = survivors.into_iter().collect();
                    }
                }
            }

            for &u in &members {
                let survivors: Vec<NodeId> = tentative[u.index()].iter().copied().collect();
                for v in survivors {
                    self.candt_sets[u.index()].remove(&v);
                    self.match_sets[u.index()].insert(v);
                    stats.matches_added += 1;
                    stats.aux_changes += 1;
                    promoted_any = true;
                    // Candidate parents of the new match must be re-checked by
                    // the next propCS pass.
                    for &(u_parent, _) in self.pattern.parents(u) {
                        for &p in graph.parents(v) {
                            if self.candt_sets[u_parent.index()].contains(&p) {
                                worklist.push((u_parent, p));
                            }
                        }
                    }
                }
            }
        }
        promoted_any
    }

    /// Full refinement of `match_sets` down to the greatest fixpoint (used by
    /// the initial build).
    fn refine_all(&mut self, graph: &DataGraph) {
        let mut changed = true;
        while changed {
            changed = false;
            for u in self.pattern.nodes() {
                let to_remove: Vec<NodeId> = self.match_sets[u.index()]
                    .iter()
                    .copied()
                    .filter(|&v| !self.has_full_support(graph, u, v))
                    .collect();
                if !to_remove.is_empty() {
                    changed = true;
                    for v in to_remove {
                        self.match_sets[u.index()].remove(&v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::match_simulation;
    use igpm_generator::{
        degree_biased_deletions, degree_biased_insertions, generate_pattern, mixed_batch,
        synthetic_graph, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
    };
    use igpm_graph::{Attributes, EdgeBound, Predicate};

    /// The FriendFeed graph of Fig. 4 (base edges only) plus handles on the
    /// nodes used by Examples 4.1–5.5.
    struct FriendFeed {
        graph: DataGraph,
        ann: NodeId,
        pat: NodeId,
        dan: NodeId,
        bill: NodeId,
        mat: NodeId,
        don: NodeId,
        tom: NodeId,
        ross: NodeId,
    }

    fn friendfeed() -> FriendFeed {
        let mut g = DataGraph::new();
        let mut person = |g: &mut DataGraph, name: &str, job: &str| {
            g.add_node(Attributes::new().with("name", name).with("job", job).with("label", job))
        };
        let ann = person(&mut g, "Ann", "CTO");
        let pat = person(&mut g, "Pat", "DB");
        let dan = person(&mut g, "Dan", "DB");
        let bill = person(&mut g, "Bill", "Bio");
        let mat = person(&mut g, "Mat", "Bio");
        let don = person(&mut g, "Don", "CTO");
        let tom = person(&mut g, "Tom", "Bio");
        let ross = person(&mut g, "Ross", "Med");
        g.add_edge(ann, pat);
        g.add_edge(pat, ann);
        g.add_edge(pat, bill);
        g.add_edge(ann, bill);
        g.add_edge(ann, dan);
        g.add_edge(dan, ann);
        g.add_edge(dan, mat);
        g.add_edge(mat, dan);
        g.add_edge(ross, tom);
        FriendFeed { graph: g, ann, pat, dan, bill, mat, don, tom, ross }
    }

    /// Normal pattern P3' of Fig. 4: CTO -> DB, DB -> CTO, DB -> Bio, CTO -> Bio.
    fn pattern_p3() -> Pattern {
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_normal_edge(cto, db);
        p.add_normal_edge(db, cto);
        p.add_normal_edge(db, bio);
        p.add_normal_edge(cto, bio);
        p
    }

    fn assert_consistent(index: &SimulationIndex, pattern: &Pattern, graph: &DataGraph, context: &str) {
        let expected = match_simulation(pattern, graph);
        assert_eq!(index.matches(), expected, "{context}: incremental result diverged from batch");
    }

    #[test]
    fn example_5_2_unit_deletion() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        assert!(index.is_match());
        assert!(index.match_set(PatternNodeId(1)).contains(&ff.pat));

        // Deleting the ss edge (Pat, Bill) invalidates Pat as a DB match
        // (Example 5.2 / 5.3).
        let stats = index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        assert_eq!(stats.matches_removed, 1);
        assert!(!index.match_set(PatternNodeId(1)).contains(&ff.pat));
        assert!(index.candidate_set(PatternNodeId(1)).contains(&ff.pat));
        assert_consistent(&index, &p, &ff.graph, "after deleting (Pat, Bill)");
    }

    #[test]
    fn example_5_4_unit_insertion_restores_the_match() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        assert!(!index.match_set(PatternNodeId(1)).contains(&ff.pat));

        // Inserting the cs edge (Pat, Mat) makes Pat a DB match again
        // (Example 5.4).
        let stats = index.insert_edge(&mut ff.graph, ff.pat, ff.mat);
        assert!(stats.matches_added >= 1);
        assert!(index.match_set(PatternNodeId(1)).contains(&ff.pat));
        assert_consistent(&index, &p, &ff.graph, "after inserting (Pat, Mat)");
    }

    #[test]
    fn example_4_1_insertions_add_don_as_cto_match() {
        // Inserting e2 = (Don, Pat), e3 = (Don, Tom), e4 = (Pat, Don) turns Don
        // into a CTO match (it now has DB and Bio children and the DB child
        // reaches a CTO), cf. Example 5.5 / Fig. 7.
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        assert!(!index.match_set(PatternNodeId(0)).contains(&ff.don));

        let mut batch = BatchUpdate::new();
        batch.insert(ff.don, ff.pat);
        batch.insert(ff.don, ff.tom);
        batch.insert(ff.pat, ff.don);
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert!(stats.matches_added >= 1);
        assert!(index.match_set(PatternNodeId(0)).contains(&ff.don));
        assert_consistent(&index, &p, &ff.graph, "after the Don insertions");
    }

    #[test]
    fn irrelevant_updates_are_reduced_away() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        // (Ross, Tom) involves a Med node that matches nothing: deleting it is
        // irrelevant; inserting (Tom, Ross) likewise.
        let mut batch = BatchUpdate::new();
        batch.delete(ff.ross, ff.tom);
        batch.insert(ff.tom, ff.ross);
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert_eq!(stats.delta_g, 2);
        assert_eq!(stats.reduced_delta_g, 0, "minDelta removes both updates");
        assert_eq!(stats.delta_m(), 0);
        assert_consistent(&index, &p, &ff.graph, "after irrelevant updates");
    }

    #[test]
    fn cancelling_updates_have_no_effect() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let before = index.matches();
        let mut batch = BatchUpdate::new();
        batch.delete(ff.pat, ff.bill);
        batch.insert(ff.pat, ff.bill); // cancels the deletion
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert_eq!(stats.reduced_delta_g, 0);
        assert_eq!(index.matches(), before);
        assert_consistent(&index, &p, &ff.graph, "after cancelling updates");
    }

    #[test]
    fn unboundedness_gadget_insertions() {
        // The Theorem 5.1(1) gadget: a cyclic pattern over two chains; the
        // match stays empty until both bridging edges are present.
        let mut p = Pattern::new();
        let u1 = p.add_labeled_node("a");
        let u2 = p.add_labeled_node("a");
        p.add_normal_edge(u1, u2);
        p.add_normal_edge(u2, u1);

        let n = 8;
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..2 * n).map(|_| g.add_labeled_node("a")).collect();
        for i in 0..n - 1 {
            g.add_edge(nodes[i], nodes[i + 1]);
            g.add_edge(nodes[n + i], nodes[n + i + 1]);
        }
        let mut index = SimulationIndex::build(&p, &g);
        assert!(!index.is_match());

        let stats = index.insert_edge(&mut g, nodes[n - 1], nodes[n]);
        assert!(!index.is_match(), "one bridge is not enough");
        assert_eq!(stats.matches_added, 0);
        assert_consistent(&index, &p, &g, "after first bridge");

        let stats = index.insert_edge(&mut g, nodes[2 * n - 1], nodes[0]);
        assert!(index.is_match(), "closing the cycle matches every node");
        assert_eq!(stats.matches_added, 4 * n, "both pattern nodes match all 2n nodes");
        assert_consistent(&index, &p, &g, "after closing the cycle");
    }

    #[test]
    fn deleting_and_reinserting_everything_round_trips() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let original = index.matches();
        let edges: Vec<(NodeId, NodeId)> = ff.graph.edges().collect();
        for &(a, b) in &edges {
            index.delete_edge(&mut ff.graph, a, b);
        }
        assert!(!index.is_match());
        assert_consistent(&index, &p, &ff.graph, "after deleting every edge");
        for &(a, b) in &edges {
            index.insert_edge(&mut ff.graph, a, b);
        }
        assert_eq!(index.matches(), original);
        assert_consistent(&index, &p, &ff.graph, "after re-inserting every edge");
    }

    #[test]
    fn random_unit_updates_agree_with_batch_general_patterns() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(150, 450, 4, seed));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(4, 6, 1, seed + 10).with_shape(PatternShape::General),
            );
            let mut index = SimulationIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(30, seed + 20));
            let del = degree_biased_deletions(&graph, UpdateGenConfig::new(30, seed + 30));
            for update in ins.iter().chain(del.iter()) {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: unit updates"));
        }
    }

    #[test]
    fn random_batch_updates_agree_with_batch_recomputation() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 100));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(5, 8, 1, seed + 110).with_shape(PatternShape::General),
            );
            let mut index = SimulationIndex::build(&pattern, &graph);
            for round in 0..3 {
                let batch = mixed_batch(&graph, 40, 40, seed * 17 + round);
                index.apply_batch(&mut graph, &batch);
                assert_consistent(
                    &index,
                    &pattern,
                    &graph,
                    &format!("seed {seed}, round {round}: batch updates"),
                );
            }
        }
    }

    #[test]
    fn dag_pattern_insertions_are_handled_without_prop_cc() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(150, 500, 4, seed + 200));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(5, 7, 1, seed + 210).with_shape(PatternShape::Dag),
            );
            assert!(pattern.is_dag());
            let mut index = SimulationIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(50, seed + 220));
            for update in ins.iter() {
                let (a, b) = update.endpoints();
                index.insert_edge(&mut graph, a, b);
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: DAG insertions"));
        }
    }

    #[test]
    fn build_rejects_bounded_patterns() {
        let ff = friendfeed();
        let mut p = Pattern::new();
        let a = p.add_node(Predicate::label("CTO"));
        let b = p.add_node(Predicate::label("Bio"));
        p.add_edge(a, b, EdgeBound::Hops(2));
        let result = std::panic::catch_unwind(|| SimulationIndex::build(&p, &ff.graph));
        assert!(result.is_err());
    }

    #[test]
    fn result_graph_tracks_current_matches() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let gr_before = index.result_graph(&ff.graph);
        assert!(gr_before.has_edge(ff.pat, ff.bill));
        index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        let gr_after = index.result_graph(&ff.graph);
        assert!(!gr_after.has_edge(ff.pat, ff.bill));
        let delta = gr_before.diff(&gr_after);
        assert!(delta.removed_nodes.contains(&ff.pat));
    }
}
