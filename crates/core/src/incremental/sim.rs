//! Incremental graph simulation (Section 5): `IncMatch-`, `IncMatch+`,
//! `IncMatch+dag` and the batch `IncMatch` with `minDelta`.
//!
//! The auxiliary structures are the ones the paper identifies as *necessary
//! local information* (Section 4) — for every pattern node `u`, the set
//! `match(u)` of current matches and the set `candt(u)` of candidates — but
//! represented for `O(1)` work per touched pair instead of hash-set probes:
//!
//! * **Pattern bitmasks.** Pattern arity is bounded by 64 (asserted at
//!   [`SimulationIndex::build`]), so per data node `v` the memberships
//!   `v ∈ match(u)` / `v ∈ candt(u)` over *all* pattern nodes are two `u64`
//!   words ([`SimulationIndex`]`::match_bits` / `candt_bits`). The `ss` /
//!   `cs` / `cc` update classification of Table II — which the seed
//!   implementation answered with `|E_p|` hash probes per update — becomes a
//!   couple of word operations.
//! * **Support counters.** For every (data node `v`, pattern node `u2`),
//!   `cnt[v][u2] = |children(v) ∩ match(u2)|`, maintained incrementally in the
//!   style of Henzinger–Henzinger–Kopke counter refinement (already used by
//!   the batch [`crate::simulation::match_simulation`]). A match `(u, v)` is
//!   supported iff `cnt[v][u2] > 0` for every pattern child `u2` of `u`, so
//!   deletion propagation decrements a counter and demotes exactly when it
//!   hits zero — the `O(deg(v)·|E_p|)` `has_full_support` adjacency rescans of
//!   the seed implementation are gone, and the work per affected pair is
//!   `O(1)` plus the propagation the paper's `|AFF|` bound already charges.
//!
//! Updates are classified per pattern edge into `ss`, `cs` and `cc` edges
//! (Table II):
//!
//! * only deletions of **ss** edges can invalidate matches
//!   (Proposition 5.1) — handled by [`SimulationIndex::delete_edge`];
//! * only insertions of **cs** or **cc** edges can create matches
//!   (Proposition 5.2) — handled by [`SimulationIndex::insert_edge`]; `cc`
//!   edges matter only inside strongly connected components of the pattern,
//!   which is where the `propCC` phase runs;
//! * batch updates go through [`SimulationIndex::apply_batch`], which first
//!   reduces `ΔG` (`minDelta`): updates with no net effect on the graph and
//!   updates that are not `ss`/`cs`/`cc` edges for any pattern edge are
//!   discarded before any matching work happens.
//!
//! # Sharded batch maintenance
//!
//! Every stage of the batch pipeline is bulk-synchronous and partitions by
//! node id, so [`SimulationIndex::apply_batch`] runs the *whole* path —
//! `minDelta` reduction, graph mutation, counter absorption, demotion drain,
//! promotion drain — across the same contiguous node-range *shards*
//! ([`igpm_graph::shard`]):
//!
//! * the **`minDelta` reduction** shards by update source (all updates
//!   touching an edge share its source), nets each shard's edges and
//!   classifies pattern relevance against the frozen masks, then merges
//!   deterministically by first-touch batch position — the exact sequential
//!   output ([`SimulationIndex::apply_batch_with_shards`] docs);
//! * the **graph mutation** applies the reduced batch in two passes on the
//!   same plan — out-adjacency (and its per-node position map) sharded by
//!   source, in-adjacency by target
//!   ([`DataGraph::apply_reduced_batch_sharded`]);
//! * **absorption** touches only the counter rows of each update's source
//!   node, so shards absorb their own updates with no communication at all;
//! * the **demotion/promotion drains** become synchronous *rounds*: a shard
//!   first applies the counter deltas addressed to its nodes (enqueuing
//!   demotion/promotion seeds when a counter crosses zero), then processes
//!   its seed worklist, buffering the counter deltas each demotion/promotion
//!   sends to graph parents into per-destination outboxes. Between rounds the
//!   outboxes are merged into the destination shards' inboxes; the phase ends
//!   when every worklist and inbox is empty;
//! * **`propCC`** (the SCC-joint pass of cyclic patterns, run between
//!   rounds) splits into read-only per-SCC evaluation — speculative, on
//!   scoped threads, with the `O(|V|)` tentative gather and the derivation/
//!   seed scans chunked — and an ordered commit with a dirty fallback that
//!   reproduces the sequential cross-SCC data flow exactly (see `prop_cc`).
//!
//! Within a round every decision depends only on state frozen at the round
//! boundary, and every statistic counts a set whose contents are
//! schedule-independent, so the engine is **bit-identical — match sets,
//! counters and [`AffStats`] — for every shard count**; one shard *is* the
//! sequential engine. Threads (`std::thread::scope`) are only spawned when a
//! round has enough pending work to amortise them; below the threshold the
//! same shard code runs inline on the calling thread.
//!
//! The cold-start [`SimulationIndex::build`] reuses the same plan: the
//! label-index pass and candidate enumeration run per node-range slice with
//! ordered merges ([`crate::simulation::candidates_with_shards`]), candidate
//! mask seeding and support-counter derivation run on disjoint node-range
//! slices, and the initial refinement is the round-based demotion drain — so
//! builds are bit-identical for every shard count too (see
//! [`SimulationIndex::build_with_shards`]).

use crate::incremental::{
    finalize_delta, panic_message, strip_out_of_range, unwrap_apply, ApplyOutcome, BuildError,
    CacheOp, DeltaTracker, IncrementalEngine, LenientApply, PipelineStage, SharedBatch,
    SharedMutation,
};
use crate::simulation::{candidates_with_shards, simulation_result_graph};
use crate::stats::AffStats;
use igpm_graph::fail;
use igpm_graph::hash::FastHashMap;
use igpm_graph::shard::{configured_shards, ShardPlan, PARALLEL_WORK_THRESHOLD};
use igpm_graph::update::{net_effective_updates, reduce_batch, validate_batch, StagePanic};
use igpm_graph::{
    ApplyError, BatchUpdate, DataGraph, MatchDelta, MatchRelation, NodeId, Pattern, PatternNodeId,
    ResultGraph, StronglyConnectedComponents, Update,
};
use std::cell::{Ref, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Maximum pattern arity representable in the membership bitmasks.
pub const MAX_PATTERN_NODES: usize = 64;

/// Membership bitmasks of one data node: bit `u` of `matched` ⇔
/// `v ∈ match(u)`, bit `u` of `candt` ⇔ `v ∈ candt(u)` (satisfies the
/// predicate of `u` but does not currently match it). The two words live side
/// by side so classification reads one cache line per node.
#[derive(Debug, Clone, Copy, Default)]
struct NodeMasks {
    matched: u64,
    candt: u64,
}

/// Auxiliary state for incremental simulation over one pattern.
#[derive(Debug, Clone)]
pub struct SimulationIndex {
    pattern: Pattern,
    /// Number of pattern nodes (`≤ 64`).
    np: usize,
    /// Number of data nodes covered by the per-node arrays.
    nv: usize,
    /// Per-data-node membership masks, interleaved so that reading a node's
    /// match *and* candidate bits costs a single cache line.
    masks: Vec<NodeMasks>,
    /// `cnt[v * np + u2] = |children(v) ∩ match(u2)|` — the support counters.
    cnt: Vec<u32>,
    /// `|match(u)|` per pattern node (emptiness checks in O(1)).
    match_count: Vec<usize>,
    /// `child_mask[u]`: bitmask of the pattern children of `u`.
    child_mask: Vec<u64>,
    /// `parent_masks[u]`: bitmask of the pattern parents of `u`.
    parent_masks: Vec<u64>,
    /// `scc_child_mask[u]`: pattern children of `u` lying in the same
    /// *nontrivial* SCC as `u` (the edges `propCC` cares about).
    scc_child_mask: Vec<u64>,
    /// Bitmask of the pattern nodes lying in some nontrivial SCC.
    scc_member_mask: u64,
    /// Pattern SCC information, used to decide when `propCC` must run.
    scc: StronglyConnectedComponents,
    /// True if the pattern contains a nontrivial SCC (a cycle).
    has_cycle: bool,
    /// Statistics of the cold-start refinement drain (identical for every
    /// shard count, see [`SimulationIndex::build_with_shards`]).
    build_stats: AffStats,
    /// Lazily rebuilt sorted view of the current match. Kept exact across
    /// batches by the emitted [`MatchDelta`]s: an empty delta leaves it
    /// untouched, a non-empty one patches it in place (see
    /// [`SimulationIndex::finish_apply`]); only a contained panic still
    /// invalidates it.
    cache: RefCell<Option<MatchRelation>>,
    /// Per-batch recorder of raw match transitions, armed by every apply
    /// path and drained into the emitted [`MatchDelta`].
    tracker: DeltaTracker,
    /// Set by the panic containment when a mid-batch panic may have torn the
    /// auxiliary state. A poisoned index refuses reads and writes until
    /// [`SimulationIndex::recover`] rebuilds it from the graph.
    poisoned: bool,
}

/// Byte-for-byte view of a [`SimulationIndex`]'s per-node auxiliary state,
/// used by the build/batch equivalence suites to assert that every shard
/// count lands on *identical* internals, not merely the same match relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAuxSnapshot {
    /// `matched` membership mask per data node.
    pub matched: Vec<u64>,
    /// `candt` membership mask per data node.
    pub candt: Vec<u64>,
    /// The support counters, row-major (`nv × np`).
    pub counters: Vec<u32>,
    /// `|match(u)|` per pattern node.
    pub match_count: Vec<usize>,
}

impl SimulationIndex {
    /// Builds the index by computing the maximum simulation from scratch (the
    /// batch `Matchs` step that seeds every incremental session), using the
    /// label-indexed candidate pipeline and counter refinement, sharded across
    /// [`configured_shards`] node ranges (see
    /// [`SimulationIndex::build_with_shards`]).
    ///
    /// # Panics
    /// Panics if `pattern` is not a normal pattern or has more than
    /// [`MAX_PATTERN_NODES`] nodes. Use [`SimulationIndex::try_build`] for a
    /// typed [`BuildError`] instead.
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        Self::build_with_shards(pattern, graph, configured_shards())
    }

    /// Fallible [`SimulationIndex::build`]: rejects non-normal patterns and
    /// patterns wider than [`MAX_PATTERN_NODES`] with a typed [`BuildError`]
    /// instead of panicking.
    pub fn try_build(pattern: &Pattern, graph: &DataGraph) -> Result<Self, BuildError> {
        Self::try_build_with_shards(pattern, graph, configured_shards())
    }

    /// [`SimulationIndex::build`] with an explicit shard count (`IGPM_SHARDS`
    /// and machine parallelism are ignored).
    ///
    /// The cold-start path is embarrassingly parallel over nodes and reuses
    /// the batch shard plan ([`ShardPlan`]): bitmask seeding from the
    /// label-indexed candidate lists and the support-counter derivation both
    /// run on disjoint `split_at_mut` node-range slices (counters are derived
    /// from each owned node's *children*, so a shard only writes its own
    /// rows), and the initial demotion drain runs through the same
    /// bulk-synchronous round machinery as the batch engine. `shards = 1` is
    /// the sequential engine; every count produces bit-identical masks,
    /// counters, cached matches and build [`AffStats`]
    /// ([`SimulationIndex::build_stats`]).
    /// # Panics
    /// Panics (with the [`BuildError`] display text) if `pattern` is not a
    /// normal pattern or has more than [`MAX_PATTERN_NODES`] nodes.
    pub fn build_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        Self::try_build_with_shards(pattern, graph, shards)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// [`SimulationIndex::try_build`] with an explicit shard count.
    pub fn try_build_with_shards(
        pattern: &Pattern,
        graph: &DataGraph,
        shards: usize,
    ) -> Result<Self, BuildError> {
        if !pattern.is_normal() {
            return Err(BuildError::NotNormal);
        }
        if pattern.node_count() > MAX_PATTERN_NODES {
            return Err(BuildError::ArityTooLarge { arity: pattern.node_count() });
        }
        let cand_lists = candidates_with_shards(pattern, graph, shards);
        let list_refs: Vec<&[NodeId]> = cand_lists.iter().map(Vec::as_slice).collect();
        Ok(Self::build_from_candidates(pattern, graph, &list_refs, shards))
    }

    /// Build core shared by the standalone constructors and the service path
    /// ([`IncrementalEngine::build_in_service`]): seeds masks and counters
    /// from precomputed per-pattern-node candidate lists and runs the
    /// initial refinement drain. Preconditions (checked by the callers):
    /// `pattern` is normal with arity ≤ [`MAX_PATTERN_NODES`], and
    /// `cand_lists[u]` is the ascending candidate list of pattern node `u`
    /// exactly as [`candidates_with_shards`] computes it.
    fn build_from_candidates(
        pattern: &Pattern,
        graph: &DataGraph,
        cand_lists: &[&[NodeId]],
        shards: usize,
    ) -> Self {
        debug_assert!(pattern.is_normal() && pattern.node_count() <= MAX_PATTERN_NODES);
        let np = pattern.node_count();
        let nv = graph.node_count();
        let scc = StronglyConnectedComponents::of_pattern(pattern);
        let has_cycle = scc.components().any(|c| scc.is_nontrivial(c));

        let mut child_mask = vec![0u64; np];
        let mut parent_masks = vec![0u64; np];
        let mut scc_child_mask = vec![0u64; np];
        for edge in pattern.edges() {
            child_mask[edge.from.index()] |= 1 << edge.to.index();
            parent_masks[edge.to.index()] |= 1 << edge.from.index();
            let comp = scc.component_of(edge.from.index());
            if comp == scc.component_of(edge.to.index()) && scc.is_nontrivial(comp) {
                scc_child_mask[edge.from.index()] |= 1 << edge.to.index();
            }
        }
        let mut scc_member_mask = 0u64;
        for u in 0..np {
            if scc.is_nontrivial(scc.component_of(u)) {
                scc_member_mask |= 1 << u;
            }
        }

        let mut index = SimulationIndex {
            pattern: pattern.clone(),
            np,
            nv,
            masks: vec![NodeMasks::default(); nv],
            cnt: vec![0u32; nv * np],
            match_count: vec![0usize; np],
            child_mask,
            parent_masks,
            scc_child_mask,
            scc_member_mask,
            scc,
            has_cycle,
            build_stats: AffStats::default(),
            cache: RefCell::new(None),
            tracker: DeltaTracker::default(),
            poisoned: false,
        };

        // Start with match(u) = all candidates of u. The candidate lists come
        // from the sharded label-index pass + predicate scans (per node-range
        // slice, merged in node order — see `candidates_with_shards`), or
        // interned by the service; seeding them into the per-node masks is
        // sharded too — each shard binary-searches its node range in the
        // sorted lists and writes only its own mask slice.
        for (u, list) in cand_lists.iter().enumerate() {
            index.match_count[u] = list.len();
        }
        let plan = ShardPlan::new(nv, shards);
        let fan_out = plan.count > 1 && nv >= PARALLEL_WORK_THRESHOLD;
        if fan_out {
            std::thread::scope(|scope| {
                let mut rest = index.masks.as_mut_slice();
                for shard in 0..plan.count {
                    let range = plan.range(shard);
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    scope.spawn(move || seed_masks_shard(chunk, range.start, cand_lists));
                }
            });
        } else {
            seed_masks_shard(&mut index.masks, 0, cand_lists);
        }

        // Derive the counters and scan for unsupported pairs. Each shard owns
        // the counter rows of its node range and derives them from its nodes'
        // *children* (`cnt[p][u2] = |children(p) ∩ match(u2)|` — the same
        // numbers as the reverse-adjacency pass, but writing only owned rows),
        // reading the masks frozen by the phase boundary above.
        let seeds: Vec<Seed> = if fan_out {
            let masks = &index.masks;
            let child_mask = &index.child_mask;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(plan.count);
                let mut rest = index.cnt.as_mut_slice();
                for shard in 0..plan.count {
                    let range = plan.range(shard);
                    let (chunk, tail) = rest.split_at_mut(range.len() * np);
                    rest = tail;
                    handles.push(scope.spawn(move || {
                        derive_counters_shard(masks, child_mask, np, range, chunk, graph)
                    }));
                }
                // Shard order concatenation = ascending node order, exactly
                // the order the sequential scan produces.
                handles.into_iter().flat_map(|h| h.join().expect("build shard panicked")).collect()
            })
        } else {
            derive_counters_shard(&index.masks, &index.child_mask, np, 0..nv, &mut index.cnt, graph)
        };

        // Refine to the greatest fixpoint: every unsupported pair is demoted
        // to a candidate (`candt = candidates \ match`), through the same
        // bulk-synchronous round machinery as the batch demotion phase.
        let mut build_stats = AffStats::default();
        if !seeds.is_empty() {
            index.drain_demotions_sharded(graph, seeds, plan, &mut build_stats);
        }
        index.build_stats = build_stats;
        index
    }

    /// Statistics of the build's initial refinement drain — the demotions
    /// that carve the maximum simulation out of the candidate sets. Identical
    /// for every shard count.
    pub fn build_stats(&self) -> AffStats {
        self.build_stats
    }

    /// Snapshot of the raw per-node auxiliary state (membership masks,
    /// support counters, match counts), for bit-identity assertions in the
    /// equivalence suites.
    pub fn aux_snapshot(&self) -> SimAuxSnapshot {
        SimAuxSnapshot {
            matched: self.masks.iter().map(|m| m.matched).collect(),
            candt: self.masks.iter().map(|m| m.candt).collect(),
            counters: self.cnt.clone(),
            match_count: self.match_count.clone(),
        }
    }

    /// The pattern the index maintains matches for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The current maximum match `M_sim(P, G)`. Empty if some pattern node has
    /// no match (i.e. `P ⋬_sim G`).
    ///
    /// The relation is materialised lazily and cached: repeated calls between
    /// mutations cost one clone of the cached vectors, not a rebuild. Use
    /// [`SimulationIndex::matches_view`] for a zero-copy borrow.
    ///
    /// # Panics
    /// Panics if the index is [poisoned](SimulationIndex::poisoned); use
    /// [`SimulationIndex::try_matches`] for a typed error.
    pub fn matches(&self) -> MatchRelation {
        self.matches_view().clone()
    }

    /// Fallible [`SimulationIndex::matches`]: returns
    /// [`ApplyError::Poisoned`] instead of panicking when a contained
    /// mid-batch panic left the auxiliary state unusable. Routed through
    /// [`SimulationIndex::try_matches_view`], so the fallible surface has a
    /// single poison check.
    pub fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        Ok(self.try_matches_view()?.clone())
    }

    /// True if a contained mid-batch panic left the auxiliary state
    /// potentially torn. A poisoned index refuses matches and further updates
    /// until [`SimulationIndex::recover`] rebuilds it; the *graph* was rolled
    /// back to its pre-batch edge set by the containment, so recovery never
    /// needs the failed batch.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Rebuilds the index from the graph via the ordinary sharded cold-start
    /// build, clearing the [poisoned](SimulationIndex::poisoned) flag. By the
    /// build-equivalence invariant the result is bit-identical to
    /// `SimulationIndex::build(&pattern, graph)`.
    pub fn recover(&mut self, graph: &DataGraph) {
        self.recover_with_shards(graph, configured_shards());
    }

    /// [`SimulationIndex::recover`] with an explicit shard count. Delegates
    /// to the one shared rebuild-and-clear-poison step,
    /// [`IncrementalEngine::recover_with_shards`].
    pub fn recover_with_shards(&mut self, graph: &DataGraph, shards: usize) {
        IncrementalEngine::recover_with_shards(self, graph, shards);
    }

    /// Borrowed view of the current maximum match, rebuilt at most once per
    /// mutation. The output is deterministic: match lists are produced in
    /// ascending node order.
    ///
    /// # Panics
    /// Panics if the index is [poisoned](SimulationIndex::poisoned); use
    /// [`SimulationIndex::try_matches_view`] for a typed error.
    pub fn matches_view(&self) -> Ref<'_, MatchRelation> {
        assert!(!self.poisoned, "simulation index is poisoned; call recover() before reading");
        self.try_matches_view().expect("poison checked above")
    }

    /// Fallible [`SimulationIndex::matches_view`]: returns
    /// [`ApplyError::Poisoned`] instead of panicking, completing the
    /// fallible read surface (`try_matches` clones, `try_matches_view`
    /// borrows).
    pub fn try_matches_view(&self) -> Result<Ref<'_, MatchRelation>, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        {
            let mut cache = self.cache.borrow_mut();
            if cache.is_none() {
                *cache = Some(self.rebuild_relation());
            }
        }
        Ok(Ref::map(self.cache.borrow(), |cache| cache.as_ref().expect("cache filled above")))
    }

    /// True while the lazily materialised view behind
    /// [`SimulationIndex::matches_view`] is cached. Batches whose emitted
    /// [`MatchDelta`] is empty keep a warm cache warm (no re-materialisation);
    /// non-empty deltas patch it in place — the delta suite pins both.
    pub fn view_cache_is_warm(&self) -> bool {
        self.cache.borrow().is_some()
    }

    fn rebuild_relation(&self) -> MatchRelation {
        rebuild_relation_from(&self.masks, &self.match_count, self.np, self.nv)
    }

    fn invalidate_cache(&mut self) {
        *self.cache.get_mut() = None;
    }

    /// True if every pattern node currently has at least one match.
    pub fn is_match(&self) -> bool {
        !self.match_count.is_empty() && self.match_count.iter().all(|&c| c > 0)
    }

    /// The current matches of one pattern node, sorted (may be nonempty even
    /// when the overall pattern does not match — this is the partial
    /// information that makes the problem semi-bounded rather than bounded,
    /// cf. Example 4.3).
    pub fn match_set(&self, u: PatternNodeId) -> Vec<NodeId> {
        self.collect_bit(u, |m| m.matched)
    }

    /// The current candidates of one pattern node, sorted.
    pub fn candidate_set(&self, u: PatternNodeId) -> Vec<NodeId> {
        self.collect_bit(u, |m| m.candt)
    }

    /// True if `v` currently matches `u` (one word op). Nodes the index has
    /// not yet observed (added after the last index operation) match nothing.
    #[inline]
    pub fn contains(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.masks.get(v.index()).is_some_and(|m| m.matched & (1 << u.index()) != 0)
    }

    fn collect_bit(&self, u: PatternNodeId, select: impl Fn(NodeMasks) -> u64) -> Vec<NodeId> {
        let mask = 1u64 << u.index();
        (0..self.nv)
            .filter(|&v| select(self.masks[v]) & mask != 0)
            .map(NodeId::from_index)
            .collect()
    }

    /// Builds the result graph `G_r` for the current match.
    pub fn result_graph(&self, graph: &DataGraph) -> ResultGraph {
        simulation_result_graph(&self.pattern, graph, &self.matches_view())
    }

    // ------------------------------------------------------------------
    // Unit updates
    // ------------------------------------------------------------------

    /// `IncMatch-`: deletes the edge `(from, to)` from `graph` and maintains
    /// the match (optimal, `O(|AFF|)`, Theorem 5.1(2a)). Returns the batch
    /// statistics plus the emitted [`MatchDelta`].
    ///
    /// # Panics
    /// Panics if the index is [poisoned](SimulationIndex::poisoned).
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> ApplyOutcome {
        assert!(!self.poisoned, "simulation index is poisoned; call recover() before updating");
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        let was_match = self.is_match();
        self.tracker.arm(false);
        // Grow the per-node arrays first: nodes added since the last index
        // operation must be classified with live masks, not skipped.
        self.ensure_node_capacity(graph);
        // Classified on the pre-update state, as in Table II.
        let relevant = self.is_ss_edge(from, to);
        if !graph.remove_edge(from, to) {
            return self.finish_apply(stats, was_match);
        }
        // The counters must reflect the deletion even when it is not an ss
        // edge (`to` may match pattern nodes that `from` only *candidates*
        // for); Proposition 5.1 only says the match itself cannot change.
        let mut worklist: Vec<(u32, u32)> = Vec::new();
        self.counters_on_removed_edge(from, to, &mut worklist, &mut stats);
        if relevant {
            stats.reduced_delta_g = 1;
        }
        if !worklist.is_empty() {
            self.drain_demotions(graph, &mut worklist, &mut stats);
        }
        self.finish_apply(stats, was_match)
    }

    /// `IncMatch+` (general patterns) / `IncMatch+dag` (DAG patterns — the
    /// `propCC` phase simply never fires): inserts the edge `(from, to)` into
    /// `graph` and maintains the match. Returns the batch statistics plus
    /// the emitted [`MatchDelta`]; as an insertion, the delta rides the
    /// monotone fast path (no removal tracking).
    ///
    /// # Panics
    /// Panics if the index is [poisoned](SimulationIndex::poisoned).
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> ApplyOutcome {
        assert!(!self.poisoned, "simulation index is poisoned; call recover() before updating");
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        let was_match = self.is_match();
        self.tracker.arm(true);
        // Grow the per-node arrays first: the first edge out of a node added
        // after the last index operation must see that node as a candidate.
        self.ensure_node_capacity(graph);
        let relevant = self.is_cs_or_cc_edge(from, to);
        if !graph.add_edge(from, to) {
            return self.finish_apply(stats, was_match);
        }
        let mut worklist: Vec<(u32, u32)> = Vec::new();
        self.counters_on_inserted_edge(from, to, &mut worklist, &mut stats);
        if !relevant {
            // Proposition 5.2: only cs/cc insertions can add matches. The
            // counters above still had to absorb the new edge.
            return self.finish_apply(stats, was_match);
        }
        stats.reduced_delta_g = 1;
        let run_cc = self.has_cycle && self.inserted_touches_scc(&[(from, to)]);
        self.propagate_insertions(graph, worklist, run_cc, &mut stats);
        self.finish_apply(stats, was_match)
    }

    // ------------------------------------------------------------------
    // Batch updates: IncMatch with minDelta
    // ------------------------------------------------------------------

    /// `IncMatch`: applies a batch of updates after reducing it with
    /// `minDelta`, processing all deletions simultaneously and then all
    /// insertions simultaneously (Fig. 10), with the phases sharded across
    /// [`configured_shards`] node ranges (see the module docs). Results are
    /// bit-identical for every shard count.
    ///
    /// Delegates to [`SimulationIndex::apply_batch_lenient`]: structurally
    /// invalid updates (out-of-range node ids) are skipped, redundant ones
    /// are neutralised by `minDelta` — identical behaviour to the historical
    /// infallible path for well-formed batches.
    ///
    /// # Panics
    /// Panics if the index is [poisoned](SimulationIndex::poisoned), or —
    /// re-raising a contained mid-batch panic — after a rollback/poison (see
    /// the [module docs](crate::incremental)). Use
    /// [`SimulationIndex::try_apply_batch`] for typed errors.
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> ApplyOutcome {
        self.apply_batch_with_shards(graph, batch, configured_shards())
    }

    /// [`SimulationIndex::apply_batch`] with an explicit shard count
    /// (`IGPM_SHARDS` and machine parallelism are ignored). `shards = 1` is
    /// the sequential engine; any other count produces the same match sets,
    /// counters, [`AffStats`] and emitted [`MatchDelta`].
    pub fn apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> ApplyOutcome {
        let lenient = unwrap_apply(self.apply_batch_lenient_with_shards(graph, batch, shards));
        ApplyOutcome { stats: lenient.stats, delta: lenient.delta }
    }

    /// The canonical fallible batch application: validates `batch` against
    /// the current graph ([`igpm_graph::update::validate_batch`]) and rejects
    /// it **whole** — [`ApplyError::InvalidBatch`], nothing touched — if any
    /// update is out of range, a duplicate insert or a removal of an absent
    /// edge. A mid-batch panic (an armed [`igpm_graph::fail`] failpoint or an
    /// engine bug) is contained: the graph is rolled back to its pre-batch
    /// edge set and the call returns [`ApplyError::StagePanicked`] telling
    /// whether the index [poisoned](SimulationIndex::poisoned) itself or
    /// stayed usable.
    pub fn try_apply_batch(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
    ) -> Result<ApplyOutcome, ApplyError> {
        self.try_apply_batch_with_shards(graph, batch, configured_shards())
    }

    /// [`SimulationIndex::try_apply_batch`] with an explicit shard count.
    pub fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        let rejections = validate_batch(graph, batch);
        if !rejections.is_empty() {
            return Err(ApplyError::InvalidBatch(rejections));
        }
        self.apply_batch_contained(graph, batch, shards)
    }

    /// The explicit *lossy* batch application: out-of-range updates are
    /// stripped before the engine sees the batch, duplicate inserts and
    /// absent deletes are neutralised by the `minDelta` net-effect reduction,
    /// and every skipped update is reported in [`LenientApply::rejected`].
    /// For a batch with no invalid updates this is byte-identical to
    /// [`SimulationIndex::apply_batch`] (same masks, counters, `AffStats`).
    pub fn apply_batch_lenient(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
    ) -> Result<LenientApply, ApplyError> {
        self.apply_batch_lenient_with_shards(graph, batch, configured_shards())
    }

    /// [`SimulationIndex::apply_batch_lenient`] with an explicit shard count.
    pub fn apply_batch_lenient_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<LenientApply, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        // Rejections are positioned against the ORIGINAL batch; the strip
        // below changes the layout the engine sees but not the report.
        let rejections = validate_batch(graph, batch);
        let outcome = match strip_out_of_range(batch, &rejections) {
            Some(stripped) => self.apply_batch_contained(graph, &stripped, shards)?,
            None => self.apply_batch_contained(graph, batch, shards)?,
        };
        Ok(LenientApply { stats: outcome.stats, delta: outcome.delta, rejected: rejections })
    }

    /// Runs the batch pipeline under `catch_unwind`, tracking how far it got
    /// and which graph mutations were issued, and converts an unwind into
    /// rollback-or-poison (see [`SimulationIndex::contain_batch_panic`]). The
    /// scoped worker threads of every sharded stage funnel their panics
    /// through their join handles, so one containment point covers the
    /// sequential and the fanned-out engines alike.
    fn apply_batch_contained(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        let mut stage = PipelineStage::Prepare;
        let mut applied: Vec<Update> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.apply_batch_stages(graph, batch, shards, &mut stage, &mut applied)
        }));
        match outcome {
            Ok(outcome) => Ok(outcome),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                Err(ApplyError::StagePanicked(
                    self.contain_batch_panic(graph, stage, &applied, message),
                ))
            }
        }
    }

    /// The batch pipeline proper — [`SimulationIndex::apply_batch`]'s
    /// historical body, annotated with the stage transitions and failpoints
    /// the containment relies on. `stage` is advanced *before* each stage's
    /// work; `applied` records the graph mutations issued so far (the full
    /// effective list, recorded before the mutation starts, since a panic can
    /// land anywhere inside the sharded mutation —
    /// [`DataGraph::rollback_updates`] tolerates not-yet-applied suffixes).
    fn apply_batch_stages(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
        stage: &mut PipelineStage,
        applied: &mut Vec<Update>,
    ) -> ApplyOutcome {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };
        // Delta tracking starts before any match-bit mutation — including the
        // childless-pattern matches `ensure_node_capacity` grants brand-new
        // nodes. Insert-only batches take the monotone fast path: simulation
        // is monotone in the edge set, so insertions can only promote and the
        // removal side of the tracker provably stays empty (CALM).
        let was_match = self.is_match();
        self.tracker.arm(batch.iter().all(Update::is_insert));
        // Grow the per-node arrays first (batches carry edge updates only, so
        // any node growth happened before this call): classification below
        // must see nodes added since the last index operation as candidates.
        self.ensure_node_capacity(graph);

        // One plan drives every stage of the batch: reduction, graph
        // mutation, absorption and the drains all partition by the same
        // contiguous node ranges.
        let plan = ShardPlan::new(self.nv, shards);

        // minDelta steps 1 + 2, sharded by update source: drop updates whose
        // net effect on the graph is nil, and count/collect the updates
        // relevant to the pattern (ss deletions, cs/cc insertions). The
        // irrelevant survivors are still applied to the graph and absorbed
        // into the counters below.
        *stage = PipelineStage::Reduce;
        fail::fire(fail::SIM_REDUCE);
        let reduction = self.min_delta_sharded(graph, batch, plan);
        stats.reduced_delta_g = reduction.relevant;
        if reduction.effective.is_empty() {
            return self.finish_apply(stats, was_match);
        }

        // Apply the whole (net) batch to the graph before any matching work
        // so that every support decision sees the final graph. The mutation
        // runs on the same plan: out-sides sharded by source, in-sides by
        // target (see [`DataGraph::apply_reduced_batch_sharded`]).
        *stage = PipelineStage::Mutate;
        applied.extend_from_slice(&reduction.effective);
        fail::fire(fail::SIM_MUTATE);
        graph.apply_reduced_batch_sharded(&reduction.effective, plan);

        // Phase 1 — absorption: absorb every effective edge change into the
        // counters, sharded by each update's *source* node (the only node
        // whose counter row an update touches). The match state is untouched
        // in this phase, so afterwards
        // `cnt[v][u2] = |children_new(v) ∩ match_old(u2)|` exactly.
        *stage = PipelineStage::Absorb;
        fail::fire(fail::SIM_ABSORB);
        let (demotion_seeds, promotion_seeds) =
            self.absorb_batch(&reduction.effective, plan, &mut stats);

        // Phase 2 — deletions first (they can only shrink)...
        if !demotion_seeds.is_empty() {
            *stage = PipelineStage::Demote;
            fail::fire(fail::SIM_DEMOTE);
            self.drain_demotions_sharded(graph, demotion_seeds, plan, &mut stats);
        }
        // ...phase 3 — then insertions.
        let run_cc = self.has_cycle && self.inserted_touches_scc(&reduction.relevant_insertions);
        if !promotion_seeds.is_empty() || run_cc {
            *stage = PipelineStage::Promote;
            fail::fire(fail::SIM_PROMOTE);
            self.propagate_insertions_sharded(graph, promotion_seeds, run_cc, plan, &mut stats);
        }
        self.finish_apply(stats, was_match)
    }

    /// Finalises a batch: converts the tracker's raw match-bit flips into the
    /// observable [`MatchDelta`] (collapsing to/from the empty view when
    /// totality flips, see [`finalize_delta`]) and maintains the cached view
    /// incrementally — kept untouched on an empty delta, patched in place
    /// from the delta otherwise — instead of the old unconditional
    /// invalidation.
    fn finish_apply(&mut self, stats: AffStats, was_match: bool) -> ApplyOutcome {
        let now_match = self.is_match();
        let (masks, match_count, np, nv) = (&self.masks, &self.match_count, self.np, self.nv);
        let (delta, cache_op): (MatchDelta, CacheOp) = finalize_delta(
            &mut self.tracker,
            was_match,
            now_match,
            np,
            || raw_mask_pairs(masks, nv),
            || rebuild_relation_from(masks, match_count, np, nv),
        );
        match cache_op {
            CacheOp::Keep => {}
            CacheOp::Patch => {
                if let Some(cache) = self.cache.get_mut().as_mut() {
                    delta.apply_to(cache);
                }
            }
            CacheOp::Install(view) => *self.cache.get_mut() = Some(view),
        }
        ApplyOutcome { stats, delta }
    }

    /// Converts a mid-batch unwind into the transactional contract. The
    /// graph is *always* rolled back to its pre-batch edge set (rollback of
    /// an empty `applied` list is the no-op this needs for the pre-mutation
    /// stages). The index poisons itself unless the panic landed in a stage
    /// that provably never touches auxiliary state: `Reduce` is pure reads
    /// and `Mutate` only mutates the graph — for those the pre-batch masks,
    /// counters and cached view are still exact after the rollback and the
    /// index stays usable.
    #[cold]
    fn contain_batch_panic(
        &mut self,
        graph: &mut DataGraph,
        stage: PipelineStage,
        applied: &[Update],
        message: String,
    ) -> StagePanic {
        graph.rollback_updates(applied);
        self.invalidate_cache();
        self.tracker.reset();
        let poisoned = !matches!(stage, PipelineStage::Reduce | PipelineStage::Mutate);
        self.poisoned = poisoned;
        StagePanic { stage: stage.label(), message, rolled_back: true, poisoned }
    }

    /// The pattern-dependent pipeline of one service batch (see
    /// [`IncrementalEngine::try_apply_shared`]): classify the shared
    /// net-effective list against the frozen membership masks, then run
    /// absorption and the drains against the already-mutated graph.
    ///
    /// Classification ([`is_ss_edge`]/[`is_cs_or_cc_edge`]) reads only the
    /// masks — never graph adjacency — and the masks are still pre-batch at
    /// this point, so running it *after* the shared graph mutation yields
    /// exactly the relevance verdicts the single-engine `minDelta` computes
    /// before mutating; everything downstream is the single-engine pipeline
    /// verbatim, which already runs post-mutation.
    fn apply_shared_stages(
        &mut self,
        graph: &DataGraph,
        batch: &SharedBatch<'_>,
        shards: usize,
        stage: &mut PipelineStage,
    ) -> ApplyOutcome {
        let mut stats = AffStats { delta_g: batch.batch_len, ..AffStats::default() };
        let was_match = self.is_match();
        self.tracker.arm(batch.monotone);
        self.ensure_node_capacity(graph);
        let plan = ShardPlan::new(self.nv, shards);

        // The per-pattern half of minDelta: the net-effect half already ran
        // once service-wide; what remains is the relevance classification.
        *stage = PipelineStage::Reduce;
        fail::fire(fail::SIM_REDUCE);
        let mut reduction = MinDeltaReduction::default();
        for update in batch.effective {
            let (a, b) = update.endpoints();
            let relevant = match update {
                Update::DeleteEdge { .. } => is_ss_edge(&self.masks, &self.child_mask, a, b),
                Update::InsertEdge { .. } => is_cs_or_cc_edge(&self.masks, &self.child_mask, a, b),
            };
            reduction.push(*update, relevant);
        }
        stats.reduced_delta_g = reduction.relevant;
        if reduction.effective.is_empty() {
            return self.finish_apply(stats, was_match);
        }

        *stage = PipelineStage::Absorb;
        fail::fire(fail::SIM_ABSORB);
        let (demotion_seeds, promotion_seeds) =
            self.absorb_batch(&reduction.effective, plan, &mut stats);
        if !demotion_seeds.is_empty() {
            *stage = PipelineStage::Demote;
            fail::fire(fail::SIM_DEMOTE);
            self.drain_demotions_sharded(graph, demotion_seeds, plan, &mut stats);
        }
        let run_cc = self.has_cycle && self.inserted_touches_scc(&reduction.relevant_insertions);
        if !promotion_seeds.is_empty() || run_cc {
            *stage = PipelineStage::Promote;
            fail::fire(fail::SIM_PROMOTE);
            self.propagate_insertions_sharded(graph, promotion_seeds, run_cc, plan, &mut stats);
        }
        self.finish_apply(stats, was_match)
    }

    /// Converts a contained panic of the service-mode pipeline into the
    /// always-poison contract of [`IncrementalEngine::try_apply_shared`].
    /// The shared graph mutation is already committed service-wide, so there
    /// is nothing to roll back — and even a panic in the read-only
    /// classification stage leaves this engine *behind* the graph (its
    /// auxiliary state never absorbed the committed batch), which is exactly
    /// what poisoning expresses. Recovery rebuilds from the current graph.
    #[cold]
    fn contain_shared_panic(&mut self, stage: PipelineStage, message: String) -> StagePanic {
        self.invalidate_cache();
        self.tracker.reset();
        self.poisoned = true;
        StagePanic { stage: stage.label(), message, rolled_back: false, poisoned: true }
    }

    /// `minDelta` (Fig. 10 lines 1-2) as a sharded two-pass reduction.
    ///
    /// Pass 1 partitions the batch by each update's **source** node — all
    /// updates touching an edge share its source, so each shard can net its
    /// own edges' effects against the pre-batch graph independently
    /// ([`net_effective_updates`]) and classify the survivors against the
    /// (frozen) membership masks in the same sweep. Pass 2 is a
    /// deterministic merge: survivors are ordered by the position at which
    /// the batch *first touched* their edge, which is exactly the order the
    /// sequential reduction emits — so the effective list, the relevance
    /// count ([`AffStats::reduced_delta_g`]) and the relevant-insertion list
    /// are bit-identical for every shard count, and one shard is the literal
    /// sequential reduction.
    fn min_delta_sharded(
        &self,
        graph: &DataGraph,
        batch: &BatchUpdate,
        plan: ShardPlan,
    ) -> MinDeltaReduction {
        let child_mask = &self.child_mask;
        let classify = move |masks: &[NodeMasks], update: &Update| {
            let (a, b) = update.endpoints();
            match update {
                Update::DeleteEdge { .. } => is_ss_edge(masks, child_mask, a, b),
                Update::InsertEdge { .. } => is_cs_or_cc_edge(masks, child_mask, a, b),
            }
        };
        // Inline fast path: one shard, or too little work to pay for spawns.
        if plan.count == 1 || batch.len() < PARALLEL_WORK_THRESHOLD {
            let (effective, _) = reduce_batch(graph, batch);
            let mut reduction = MinDeltaReduction::default();
            for update in effective {
                let relevant = classify(&self.masks, &update);
                reduction.push(update, relevant);
            }
            return reduction;
        }

        let mut per_shard: Vec<Vec<(u32, Update)>> = vec![Vec::new(); plan.count];
        for (pos, &update) in batch.iter().enumerate() {
            per_shard[plan.owner(update.endpoints().0.index())].push((pos as u32, update));
        }
        let masks = &self.masks;
        let mut merged: Vec<(u32, Update, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|slice| {
                    scope.spawn(move || {
                        net_effective_updates(graph, &slice)
                            .into_iter()
                            .map(|(pos, update)| (pos, update, classify(masks, &update)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("minDelta shard panicked")).collect()
        });
        // Deterministic merge: ascending first-touch position reproduces the
        // sequential reduction's output order exactly.
        merged.sort_unstable_by_key(|&(pos, _, _)| pos);
        let mut reduction = MinDeltaReduction::default();
        for (_, update, relevant) in merged {
            reduction.push(update, relevant);
        }
        reduction
    }

    // ------------------------------------------------------------------
    // Edge classification (Table II) — word ops over the membership masks
    // ------------------------------------------------------------------

    /// True if `(from, to)` is an ss edge for some pattern edge: both
    /// endpoints currently match the edge's endpoints.
    fn is_ss_edge(&self, from: NodeId, to: NodeId) -> bool {
        is_ss_edge(&self.masks, &self.child_mask, from, to)
    }

    /// True if `(from, to)` is a cs or cc edge for some pattern edge: the
    /// source is a candidate and the target is a candidate or a match.
    fn is_cs_or_cc_edge(&self, from: NodeId, to: NodeId) -> bool {
        is_cs_or_cc_edge(&self.masks, &self.child_mask, from, to)
    }

    /// True if some inserted edge can affect the joint SCC evaluation, so
    /// `propCC` must run (Proposition 5.2(3), broadened): either the edge is
    /// a cc edge *inside* a nontrivial SCC (it adds tentative support), or it
    /// is a cs/cc edge for any pattern edge *out of* an SCC member — the
    /// support-counter rise on the member's candidate may unblock the joint
    /// fixpoint even when the pattern edge itself leaves the SCC (the
    /// candidate's last missing witness need not be the cyclic one).
    fn inserted_touches_scc(&self, inserted: &[(NodeId, NodeId)]) -> bool {
        inserted.iter().any(|&(a, b)| {
            let am = self.masks[a.index()];
            let bm = self.masks[b.index()];
            let known_b = bm.matched | bm.candt;
            let mut bits = (am.matched | am.candt) & self.scc_member_mask;
            while bits != 0 {
                let u = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.child_mask[u] & known_b != 0 {
                    return true;
                }
            }
            false
        })
    }

    // ------------------------------------------------------------------
    // Counter maintenance
    // ------------------------------------------------------------------

    /// Does `v` (as a match or candidate of `u`) have, for every pattern edge
    /// `(u, u2)`, a supporting counter? One counter read per pattern child —
    /// no adjacency scan.
    #[inline]
    fn has_counter_support(&self, u: usize, v: usize) -> bool {
        row_has_support(&self.cnt[v * self.np..(v + 1) * self.np], self.child_mask[u])
    }

    /// Absorbs the removal of graph edge `(a, b)`: for every pattern node `u2`
    /// matched by `b`, the counter `cnt[a][u2]` drops; when it reaches zero,
    /// every match `(u, a)` with pattern edge `(u, u2)` loses its support and
    /// is seeded for demotion.
    fn counters_on_removed_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        absorb_removed_edge(
            &self.masks,
            &self.parent_masks,
            self.np,
            0,
            &mut self.cnt,
            a,
            b,
            worklist,
            stats,
        );
    }

    /// Absorbs the insertion of graph edge `(a, b)`: counters rise for every
    /// pattern node matched by `b`; a `0 → 1` transition may enable the
    /// *candidate* `a` for pattern parents of `u2`, which is exactly the
    /// `propCS` seeding of `IncMatch+`.
    fn counters_on_inserted_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        absorb_inserted_edge(
            &self.masks,
            &self.parent_masks,
            self.np,
            0,
            &mut self.cnt,
            a,
            b,
            worklist,
            stats,
        );
    }

    /// Bitmask of the pattern parents of `u2` (precomputed at build).
    #[inline]
    fn parent_mask(&self, u2: usize) -> u64 {
        self.parent_masks[u2]
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Deletion propagation: pops `(u, v)` pairs whose support may be gone;
    /// a demotion decrements the counters of `v`'s graph parents and seeds
    /// them in turn when a counter reaches zero. Each pop costs `O(1)` checks
    /// plus `O(in-degree)` only when an actual demotion happens.
    fn drain_demotions(
        &mut self,
        graph: &DataGraph,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        while let Some((u, v)) = worklist.pop() {
            let (u, v) = (u as usize, v as usize);
            stats.nodes_visited += 1;
            let bit = 1u64 << u;
            if self.masks[v].matched & bit == 0 {
                continue;
            }
            if self.has_counter_support(u, v) {
                continue;
            }
            // v no longer matches u: demote it to a candidate.
            self.masks[v].matched &= !bit;
            self.masks[v].candt |= bit;
            self.match_count[u] -= 1;
            self.tracker.record_removed(u, v as u32);
            stats.matches_removed += 1;
            stats.aux_changes += 1;
            let pmask = self.parent_mask(u);
            for &p in graph.parents(NodeId::from_index(v)) {
                let counter = &mut self.cnt[p.index() * self.np + u];
                debug_assert!(*counter > 0, "counter underflow demoting (u{u}, n{v})");
                *counter -= 1;
                stats.counter_updates += 1;
                if *counter == 0 {
                    let mut bits = self.masks[p.index()].matched & pmask;
                    while bits != 0 {
                        let u_parent = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        worklist.push((u_parent as u32, p.0));
                    }
                }
            }
        }
    }

    /// Insertion propagation: the `propCS` / `propCC` loop of `IncMatch+`.
    /// The unit path keeps everything on the calling thread (one update does
    /// not amortise a fan-out), so `propCC` runs on a one-shard plan.
    fn propagate_insertions(
        &mut self,
        graph: &DataGraph,
        mut worklist: Vec<(u32, u32)>,
        mut run_cc: bool,
        stats: &mut AffStats,
    ) {
        let plan = ShardPlan::new(self.nv, 1);
        loop {
            let promoted_cs = self.prop_cs(graph, &mut worklist, stats);
            if promoted_cs {
                // New matches may wake SCC candidates that depend on them.
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.prop_cc(graph, stats, &mut worklist, plan);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                // Another round: promotions can cascade through propCS and may
                // re-enable further SCC candidates.
                run_cc = true;
            }
        }
    }

    /// Promotes a candidate pair `(u, v)`, updating the counters of `v`'s
    /// graph parents; `0 → 1` transitions re-enqueue candidate parents.
    fn promote(
        &mut self,
        graph: &DataGraph,
        u: usize,
        v: usize,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) {
        let bit = 1u64 << u;
        self.masks[v].candt &= !bit;
        self.masks[v].matched |= bit;
        self.match_count[u] += 1;
        self.tracker.record_inserted(u, v as u32);
        stats.matches_added += 1;
        stats.aux_changes += 1;
        let pmask = self.parent_mask(u);
        for &p in graph.parents(NodeId::from_index(v)) {
            let counter = &mut self.cnt[p.index() * self.np + u];
            *counter += 1;
            stats.counter_updates += 1;
            if *counter == 1 {
                let mut bits = self.masks[p.index()].candt & pmask;
                while bits != 0 {
                    let u_parent = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    worklist.push((u_parent as u32, p.0));
                }
            }
        }
    }

    /// Promotes candidates from a worklist. Returns true if anything was
    /// promoted.
    fn prop_cs(
        &mut self,
        graph: &DataGraph,
        worklist: &mut Vec<(u32, u32)>,
        stats: &mut AffStats,
    ) -> bool {
        let mut promoted_any = false;
        while let Some((u, v)) = worklist.pop() {
            let (u, v) = (u as usize, v as usize);
            stats.nodes_visited += 1;
            if self.masks[v].candt & (1 << u) == 0 {
                continue;
            }
            if !self.has_counter_support(u, v) {
                continue;
            }
            self.promote(graph, u, v, worklist, stats);
            promoted_any = true;
        }
        promoted_any
    }

    /// Evaluates candidates of every nontrivial pattern SCC jointly:
    /// tentatively assume all candidates of the SCC match, refine the
    /// assumption down to the greatest fixpoint, and promote the survivors.
    ///
    /// The refinement is counter-backed, mirroring the main engine: per
    /// (candidate, SCC pattern node) a *tentative support* counter
    /// `tsup[(v, u2)] = |children(v) ∩ tentative(u2)|` is derived once, and a
    /// worklist eliminates non-viable pairs, decrementing the counters of
    /// their tentative parents — instead of the seed's repeated
    /// full-candidate-set fixpoint sweeps with adjacency rescans.
    ///
    /// The phase is **sharded on the batch plan**. Each SCC's joint
    /// evaluation is a pure read of the index state ([`evaluate_scc_joint`]),
    /// so the SCCs are evaluated speculatively on scoped threads — each SCC
    /// owned by one worker (ownership striped over the SCC enumeration, an
    /// SCC's identity being its lowest pattern member) — and their verdicts
    /// are *committed* in enumeration order. A committed promotion dirties
    /// the frozen state later speculative verdicts were computed against;
    /// from the first dirtying commit on, every remaining SCC re-evaluates
    /// against the live state, which reproduces the sequential engine's
    /// cross-SCC data flow exactly (Tarjan numbering sends pattern edges from
    /// later-enumerated SCCs to earlier ones, so this is the only direction
    /// influence can travel). Within one SCC, the `O(|V|)` tentative gather,
    /// the `tsup` derivation and the viability seed scan are chunked over
    /// node ranges / candidate chunks — see [`evaluate_scc_joint`]. Matches,
    /// counters and [`AffStats`] are bit-identical for every shard count;
    /// `plan.count = 1` is the sequential engine.
    ///
    /// Survivor promotions enqueue their candidate parents on `worklist` for
    /// the next `propCS` pass. Returns true if anything was promoted.
    fn prop_cc(
        &mut self,
        graph: &DataGraph,
        stats: &mut AffStats,
        worklist: &mut Vec<(u32, u32)>,
        plan: ShardPlan,
    ) -> bool {
        let comp_masks: Vec<u64> = self
            .scc
            .components()
            .filter(|&comp| self.scc.is_nontrivial(comp))
            .map(|comp| self.scc.members(comp).iter().fold(0u64, |mask, &u| mask | (1 << u)))
            .collect();
        if comp_masks.is_empty() {
            return false;
        }
        let fan_out = plan.count > 1 && self.nv >= PARALLEL_WORK_THRESHOLD;

        // Phase A — speculative evaluation: every SCC's verdict against the
        // frozen pre-phase state, one SCC per worker
        // ([`crate::incremental::speculate_scc_verdicts`]). Only worth
        // spawning for multi-SCC patterns; a single SCC parallelises *inside*
        // its evaluation instead (phase B, `fan_out` inner chunking).
        let mut verdicts: Vec<Option<SccVerdict>> = if fan_out && comp_masks.len() > 1 {
            let ctx = self.scc_eval_ctx();
            crate::incremental::speculate_scc_verdicts(&comp_masks, plan.count, |mask| {
                evaluate_scc_joint(ctx, graph, mask, plan, false)
            })
        } else {
            (0..comp_masks.len()).map(|_| None).collect()
        };

        // Phase B — ordered commit with dirty fallback: speculative verdicts
        // are valid until the first commit that promoted something; from then
        // on each SCC re-evaluates against the live state (exactly what the
        // sequential engine reads).
        let mut dirty = false;
        let mut promoted_any = false;
        for (i, &comp_mask) in comp_masks.iter().enumerate() {
            let verdict = match (dirty, verdicts[i].take()) {
                (false, Some(verdict)) => verdict,
                _ => evaluate_scc_joint(self.scc_eval_ctx(), graph, comp_mask, plan, fan_out),
            };
            stats.merge(verdict.stats);
            if verdict.survivors.is_empty() {
                continue;
            }
            for (v, mut bits) in verdict.survivors {
                while bits != 0 {
                    let u = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.promote(graph, u, v as usize, worklist, stats);
                }
            }
            promoted_any = true;
            dirty = true;
        }
        promoted_any
    }

    /// The read-only view of the index state that [`evaluate_scc_joint`]
    /// needs — plain slices, so worker threads can hold it without capturing
    /// the index (whose lazy match cache is not `Sync`).
    fn scc_eval_ctx(&self) -> SccEvalContext<'_> {
        SccEvalContext {
            np: self.np,
            nv: self.nv,
            masks: &self.masks,
            cnt: &self.cnt,
            child_mask: &self.child_mask,
            parent_masks: &self.parent_masks,
            scc_child_mask: &self.scc_child_mask,
        }
    }

    // ------------------------------------------------------------------
    // Sharded batch phases
    // ------------------------------------------------------------------

    /// Phase 1 of the batch engine: absorbs the effective updates into the
    /// counters, sharded by each update's *source* node. Returns the demotion
    /// and promotion seed lists.
    fn absorb_batch(
        &mut self,
        effective: &[Update],
        plan: ShardPlan,
        stats: &mut AffStats,
    ) -> (Vec<Seed>, Vec<Seed>) {
        // Inline fast path: one shard, or too little work to pay for spawns.
        // Processing all updates in batch order on the full slices is
        // identical to the partitioned run — an update only touches its
        // source's counter row, and updates sharing a source keep their
        // relative order either way.
        if plan.count == 1 || effective.len() < PARALLEL_WORK_THRESHOLD {
            let mut demotion_seeds = Vec::new();
            let mut promotion_seeds = Vec::new();
            for update in effective {
                let (a, b) = update.endpoints();
                match update {
                    Update::DeleteEdge { .. } => {
                        self.counters_on_removed_edge(a, b, &mut demotion_seeds, stats)
                    }
                    Update::InsertEdge { .. } => {
                        self.counters_on_inserted_edge(a, b, &mut promotion_seeds, stats)
                    }
                }
            }
            return (demotion_seeds, promotion_seeds);
        }

        let mut per_shard: Vec<Vec<Update>> = vec![Vec::new(); plan.count];
        for update in effective {
            per_shard[plan.owner(update.endpoints().0.index())].push(*update);
        }
        let np = self.np;
        let masks = &self.masks;
        let parent_masks = &self.parent_masks;
        let results: Vec<(Vec<Seed>, Vec<Seed>, AffStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .cnt
                .chunks_mut((plan.chunk * np).max(1))
                .zip(per_shard)
                .enumerate()
                .map(|(shard, (cnt_chunk, updates))| {
                    scope.spawn(move || {
                        let base = shard * plan.chunk;
                        let mut demo = Vec::new();
                        let mut promo = Vec::new();
                        let mut local = AffStats::default();
                        for update in &updates {
                            let (a, b) = update.endpoints();
                            match update {
                                Update::DeleteEdge { .. } => absorb_removed_edge(
                                    masks,
                                    parent_masks,
                                    np,
                                    base,
                                    cnt_chunk,
                                    a,
                                    b,
                                    &mut demo,
                                    &mut local,
                                ),
                                Update::InsertEdge { .. } => absorb_inserted_edge(
                                    masks,
                                    parent_masks,
                                    np,
                                    base,
                                    cnt_chunk,
                                    a,
                                    b,
                                    &mut promo,
                                    &mut local,
                                ),
                            }
                        }
                        (demo, promo, local)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("absorption shard panicked")).collect()
        });
        let mut demotion_seeds = Vec::new();
        let mut promotion_seeds = Vec::new();
        for (demo, promo, local) in results {
            demotion_seeds.extend(demo);
            promotion_seeds.extend(promo);
            stats.merge(local);
        }
        (demotion_seeds, promotion_seeds)
    }

    /// Phase 2 of the batch engine: the demotion drain as synchronous sharded
    /// rounds (the bulk-synchronous counterpart of
    /// [`SimulationIndex::drain_demotions`]).
    fn drain_demotions_sharded(
        &mut self,
        graph: &DataGraph,
        seeds: Vec<Seed>,
        plan: ShardPlan,
        stats: &mut AffStats,
    ) {
        let np = self.np;
        let parent_masks = &self.parent_masks;
        let child_mask = &self.child_mask;
        let mut states = shard_states(&mut self.masks, &mut self.cnt, np, plan);
        for seed in seeds {
            states[plan.owner(seed.1 as usize)].worklist.push(seed);
        }
        drive_rounds(&mut states, RoundKind::Demote, graph, np, parent_masks, child_mask, plan);
        for st in states {
            merge_shard(st, &mut self.match_count, stats, &mut self.tracker);
        }
    }

    /// Runs the sharded `propCS` rounds of the promotion phase until
    /// quiescent, consuming `seeds`. Returns true if anything was promoted.
    fn promote_sharded(
        &mut self,
        graph: &DataGraph,
        seeds: &mut Vec<Seed>,
        plan: ShardPlan,
        stats: &mut AffStats,
    ) -> bool {
        let np = self.np;
        let parent_masks = &self.parent_masks;
        let child_mask = &self.child_mask;
        let mut states = shard_states(&mut self.masks, &mut self.cnt, np, plan);
        for seed in seeds.drain(..) {
            states[plan.owner(seed.1 as usize)].worklist.push(seed);
        }
        drive_rounds(&mut states, RoundKind::Promote, graph, np, parent_masks, child_mask, plan);
        let mut promoted = false;
        for st in states {
            promoted |= merge_shard(st, &mut self.match_count, stats, &mut self.tracker);
        }
        promoted
    }

    /// Phase 3 of the batch engine: the `propCS`/`propCC` alternation of
    /// [`SimulationIndex::propagate_insertions`], with the `propCS` cascade
    /// sharded as synchronous rounds and `propCC` sharded on the same plan —
    /// speculative read-only SCC-joint evaluation on scoped threads, verdicts
    /// committed in enumeration order (see [`SimulationIndex::prop_cc`]).
    /// Both run identically for every shard count.
    fn propagate_insertions_sharded(
        &mut self,
        graph: &DataGraph,
        seeds: Vec<Seed>,
        mut run_cc: bool,
        plan: ShardPlan,
        stats: &mut AffStats,
    ) {
        let mut worklist = seeds;
        loop {
            let promoted_cs = self.promote_sharded(graph, &mut worklist, plan, stats);
            if promoted_cs {
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.prop_cc(graph, stats, &mut worklist, plan);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                run_cc = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Node growth
    // ------------------------------------------------------------------

    /// Extends the per-node arrays when the graph gained nodes since the index
    /// was built. New nodes are isolated at this point (edges to them arrive
    /// through [`SimulationIndex::insert_edge`] / batches), so a new node
    /// matches a pattern node iff it satisfies the predicate of a *childless*
    /// pattern node; otherwise it starts as a candidate.
    fn ensure_node_capacity(&mut self, graph: &DataGraph) {
        let new_nv = graph.node_count();
        if new_nv <= self.nv {
            return;
        }
        self.masks.resize(new_nv, NodeMasks::default());
        self.cnt.resize(new_nv * self.np, 0);
        for v in self.nv..new_nv {
            let node = NodeId::from_index(v);
            for u in self.pattern.nodes() {
                if !self.pattern.predicate(u).satisfied_by(graph.attrs(node)) {
                    continue;
                }
                if self.child_mask[u.index()] == 0 {
                    // A childless-pattern match is a view-level insertion the
                    // tracker must see (it is vacuously supported, so no later
                    // stage of this batch can demote it again).
                    self.masks[v].matched |= 1 << u.index();
                    self.match_count[u.index()] += 1;
                    self.tracker.record_inserted(u.index(), v as u32);
                } else {
                    self.masks[v].candt |= 1 << u.index();
                }
            }
        }
        self.nv = new_nv;
    }

    // ------------------------------------------------------------------
    // Debug invariants
    // ------------------------------------------------------------------

    /// Recomputes every support counter from scratch and compares (test-only
    /// consistency oracle for the incremental maintenance).
    #[cfg(test)]
    fn assert_counters_consistent(&self, graph: &DataGraph) {
        for v in 0..self.nv {
            for u2 in 0..self.np {
                let expected = graph
                    .children(NodeId::from_index(v))
                    .iter()
                    .filter(|w| self.masks[w.index()].matched & (1 << u2) != 0)
                    .count() as u32;
                assert_eq!(self.cnt[v * self.np + u2], expected, "counter drift at (n{v}, u{u2})");
            }
        }
        for u in 0..self.np {
            let count = (0..self.nv).filter(|&v| self.masks[v].matched & (1 << u) != 0).count();
            assert_eq!(self.match_count[u], count, "match_count drift at u{u}");
        }
    }
}

// ----------------------------------------------------------------------
// Sharded batch machinery
// ----------------------------------------------------------------------
//
// The batch phases operate on per-shard views of the per-node arrays:
// contiguous node ranges (see `igpm_graph::shard` for why contiguous
// beats `v % shards`) obtained with `split_at_mut`, so worker threads hold
// disjoint `&mut` slices and the whole engine stays free of `unsafe`,
// atomics and locks. Counter deltas addressed to another shard's nodes
// travel through per-destination outboxes merged between rounds; every
// in-round decision depends only on state frozen at the round boundary, so
// match sets, counters and stats are independent of the shard count and of
// thread scheduling.

/// Demotion/promotion seed: `(pattern node, data node)`.
type Seed = (u32, u32);

/// Output of the `minDelta` reduction: the net-effective updates in
/// first-touch order, how many of them are pattern-relevant (ss deletions or
/// cs/cc insertions — [`AffStats::reduced_delta_g`]), and the relevant
/// insertions themselves (the `propCC` trigger inputs).
#[derive(Default)]
struct MinDeltaReduction {
    effective: Vec<Update>,
    relevant: usize,
    relevant_insertions: Vec<(NodeId, NodeId)>,
}

impl MinDeltaReduction {
    fn push(&mut self, update: Update, relevant: bool) {
        if relevant {
            self.relevant += 1;
            if update.is_insert() {
                let (a, b) = update.endpoints();
                self.relevant_insertions.push((a, b));
            }
        }
        self.effective.push(update);
    }
}

/// True if `(from, to)` is an ss edge for some pattern edge: both endpoints
/// currently match the edge's endpoints (Table II). Free function so the
/// sharded `minDelta` pass can classify on worker threads without capturing
/// the index (whose lazy match cache is not `Sync`).
fn is_ss_edge(masks: &[NodeMasks], child_mask: &[u64], from: NodeId, to: NodeId) -> bool {
    let (Some(fm), Some(tm)) = (masks.get(from.index()), masks.get(to.index())) else {
        return false;
    };
    let tbits = tm.matched;
    let mut bits = fm.matched;
    while bits != 0 {
        let u = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if child_mask[u] & tbits != 0 {
            return true;
        }
    }
    false
}

/// True if `(from, to)` is a cs or cc edge for some pattern edge: the source
/// is a candidate and the target is a candidate or a match (Table II).
fn is_cs_or_cc_edge(masks: &[NodeMasks], child_mask: &[u64], from: NodeId, to: NodeId) -> bool {
    let (Some(fm), Some(target)) = (masks.get(from.index()), masks.get(to.index())) else {
        return false;
    };
    let target_bits = target.matched | target.candt;
    let mut bits = fm.candt;
    while bits != 0 {
        let u = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if child_mask[u] & target_bits != 0 {
            return true;
        }
    }
    false
}

/// A pending counter delta: `(data node, pattern node)`. Whether it is a
/// decrement or an increment is fixed by the phase ([`RoundKind`]).
type CounterMsg = (u32, u32);

/// Absorbs the removal of graph edge `(a, b)` into the counter rows `cnt`
/// (which start at node id `row_base`): for every pattern node `u2` matched
/// by `b`, `cnt[a][u2]` drops; on reaching zero, every match `(u, a)` with
/// pattern edge `(u, u2)` loses its support and is seeded for demotion.
#[allow(clippy::too_many_arguments)]
fn absorb_removed_edge(
    masks: &[NodeMasks],
    parent_masks: &[u64],
    np: usize,
    row_base: usize,
    cnt: &mut [u32],
    a: NodeId,
    b: NodeId,
    worklist: &mut Vec<Seed>,
    stats: &mut AffStats,
) {
    let base = (a.index() - row_base) * np;
    let mut bits = masks[b.index()].matched;
    while bits != 0 {
        let u2 = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let counter = &mut cnt[base + u2];
        debug_assert!(*counter > 0, "counter underflow for ({a}, u{u2})");
        *counter -= 1;
        stats.counter_updates += 1;
        if *counter == 0 {
            let mut pbits = masks[a.index()].matched & parent_masks[u2];
            while pbits != 0 {
                let u = pbits.trailing_zeros() as usize;
                pbits &= pbits - 1;
                worklist.push((u as u32, a.0));
            }
        }
    }
}

/// Absorbs the insertion of graph edge `(a, b)` into the counter rows `cnt`:
/// counters rise for every pattern node matched by `b`; a `0 → 1` transition
/// may enable the *candidate* `a` for pattern parents of `u2` — the `propCS`
/// seeding of `IncMatch+`.
#[allow(clippy::too_many_arguments)]
fn absorb_inserted_edge(
    masks: &[NodeMasks],
    parent_masks: &[u64],
    np: usize,
    row_base: usize,
    cnt: &mut [u32],
    a: NodeId,
    b: NodeId,
    worklist: &mut Vec<Seed>,
    stats: &mut AffStats,
) {
    let base = (a.index() - row_base) * np;
    let mut bits = masks[b.index()].matched;
    while bits != 0 {
        let u2 = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let counter = &mut cnt[base + u2];
        *counter += 1;
        stats.counter_updates += 1;
        if *counter == 1 {
            let mut pbits = masks[a.index()].candt & parent_masks[u2];
            while pbits != 0 {
                let u = pbits.trailing_zeros() as usize;
                pbits &= pbits - 1;
                worklist.push((u as u32, a.0));
            }
        }
    }
}

/// Build phase 1 on one shard: seed the `matched` bits of the owned node
/// range (`masks` starts at node id `base`) from the sorted candidate lists.
/// Each shard binary-searches its range in every list, so the work is
/// `O(|candidates in range| + np · log |candidates|)`.
fn seed_masks_shard(masks: &mut [NodeMasks], base: usize, cand_lists: &[&[NodeId]]) {
    let end = base + masks.len();
    for (u, list) in cand_lists.iter().enumerate() {
        // The range search (and the bit-identity of fanned-out builds with
        // sequential ones) relies on candidate lists being in ascending node
        // order, which the label-index buckets and predicate scans of
        // `candidates()` produce.
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "candidate list not id-sorted");
        let bit = 1u64 << u;
        let start = list.partition_point(|v| v.index() < base);
        for &v in &list[start..] {
            if v.index() >= end {
                break;
            }
            masks[v.index() - base].matched |= bit;
        }
    }
}

/// Build phase 2 on one shard: derive the support counters of the owned node
/// `range` (whose rows are `cnt`) from each owned node's children —
/// `cnt[v][u2] = |children(v) ∩ match(u2)|`, the same numbers as a
/// reverse-adjacency pass but touching only owned rows — then scan the owned
/// matches for pairs without full counter support. Returns those demotion
/// seeds in ascending node order.
fn derive_counters_shard(
    masks: &[NodeMasks],
    child_mask: &[u64],
    np: usize,
    range: std::ops::Range<usize>,
    cnt: &mut [u32],
    graph: &DataGraph,
) -> Vec<Seed> {
    for (local, v) in range.clone().enumerate() {
        let row = &mut cnt[local * np..local * np + np];
        for &w in graph.children(NodeId::from_index(v)) {
            let mut bits = masks[w.index()].matched;
            while bits != 0 {
                let u2 = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                row[u2] += 1;
            }
        }
    }
    let mut seeds = Vec::new();
    for (local, v) in range.enumerate() {
        let row = &cnt[local * np..local * np + np];
        let mut bits = masks[v].matched;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if !row_has_support(row, child_mask[u]) {
                seeds.push((u as u32, v as u32));
            }
        }
    }
    seeds
}

/// Read-only slices of the index state consumed by [`evaluate_scc_joint`] —
/// plain `Sync` data, so SCC evaluations can run on worker threads without
/// capturing the index itself (whose lazy match cache is not `Sync`).
#[derive(Clone, Copy)]
struct SccEvalContext<'a> {
    np: usize,
    nv: usize,
    masks: &'a [NodeMasks],
    cnt: &'a [u32],
    child_mask: &'a [u64],
    parent_masks: &'a [u64],
    scc_child_mask: &'a [u64],
}

/// Outcome of one SCC's joint evaluation: the surviving tentative assumptions
/// `(data node, SCC pattern bits)` in ascending node order — the pairs the
/// commit step promotes — plus the statistics of the evaluation itself
/// (tentative-counter work and pairs visited). Both are pure functions of the
/// index state the evaluation read, independent of where or in how many
/// chunks it ran.
struct SccVerdict {
    survivors: Vec<(u32, u64)>,
    stats: AffStats,
}

/// The read-only SCC-joint evaluation behind `propCC`: tentatively assume
/// every candidate of the SCC (`comp_mask`) matches, refine the assumption to
/// its greatest fixpoint with tentative-support counters, and report the
/// survivors. Mutates nothing — promotion is the caller's ordered commit.
///
/// When `fan_out` is set, the three scan-shaped steps run chunked on scoped
/// threads, each with a deterministic ordered merge, so the verdict is
/// identical for every chunking:
///
/// * the **tentative gather** — the `O(|V|)` candidate scan the ROADMAP names
///   as the phase's sequential bottleneck — partitions the node range on
///   `plan` and concatenates in range order;
/// * the **`tsup` derivation** chunks the gathered candidates; a source `v`'s
///   counters are written only by `v`'s chunk, so the merged map is a
///   disjoint union;
/// * the **viability seed scan** chunks the gathered candidates and
///   concatenates the non-viable seeds in chunk order.
///
/// The elimination cascade itself stays on the calling thread: it is
/// `O(eliminated pairs)`, confluent (the greatest fixpoint is unique and
/// every counter it touches is decremented exactly once per eliminated pair,
/// in any order), and bounded by work already counted.
fn evaluate_scc_joint(
    ctx: SccEvalContext<'_>,
    graph: &DataGraph,
    comp_mask: u64,
    plan: ShardPlan,
    fan_out: bool,
) -> SccVerdict {
    let mut stats = AffStats::default();

    // tentative[v] = pattern nodes of this SCC that v is still assumed to
    // match (matches are kept implicitly: they can never be invalidated by
    // insertions). Sparse: only candidate nodes appear, in ascending order.
    let masks = ctx.masks;
    let gathered: Vec<(u32, u64)> = if fan_out
        && plan.count > 1
        && ctx.nv >= PARALLEL_WORK_THRESHOLD
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.count)
                .map(|shard| {
                    let range = plan.range(shard);
                    scope.spawn(move || gather_tentative(masks, comp_mask, range))
                })
                .collect();
            // Range order concatenation = ascending node order.
            handles.into_iter().flat_map(|h| h.join().expect("propCC gather panicked")).collect()
        })
    } else {
        gather_tentative(masks, comp_mask, 0..ctx.nv)
    };
    if gathered.is_empty() {
        return SccVerdict { survivors: Vec::new(), stats };
    }
    let mut tentative: FastHashMap<u32, u64> = FastHashMap::default();
    for &(v, bits) in &gathered {
        tentative.insert(v, bits);
    }

    // tsup[(v, u2)] = |children(v) ∩ tentative(u2)| for u2 in the SCC, and
    // the elimination seeds: tentative pairs without full (real or
    // tentative) support. Both scans are chunked over the gathered list.
    let chunk_plan = ShardPlan::new(gathered.len(), plan.count);
    let chunked = fan_out && chunk_plan.count > 1 && gathered.len() >= PARALLEL_WORK_THRESHOLD;
    let mut tsup: FastHashMap<(u32, u32), u32> = FastHashMap::default();
    if chunked {
        let tentative = &tentative;
        let partials: Vec<TsupChunk> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunk_plan.count)
                .map(|shard| {
                    let chunk = &gathered[chunk_plan.range(shard)];
                    scope.spawn(move || derive_tsup_chunk(graph, tentative, chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("propCC tsup panicked")).collect()
        });
        for (partial, updates) in partials {
            // Sources are owned by exactly one chunk: disjoint-key union.
            tsup.extend(partial);
            stats.counter_updates += updates;
        }
    } else {
        let (partial, updates) = derive_tsup_chunk(graph, &tentative, &gathered);
        tsup = partial;
        stats.counter_updates += updates;
    }

    let mut eliminate: Vec<(u32, u32)> = if chunked {
        let tsup = &tsup;
        let chunks: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunk_plan.count)
                .map(|shard| {
                    let chunk = &gathered[chunk_plan.range(shard)];
                    scope.spawn(move || seed_eliminations_chunk(ctx, tsup, chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("propCC seed panicked")).collect()
        });
        chunks.concat()
    } else {
        seed_eliminations_chunk(ctx, &tsup, &gathered)
    };
    // One visit per tentative pair scanned for viability; the scan itself is
    // embarrassingly parallel, so count it from the gathered bits.
    stats.nodes_visited +=
        gathered.iter().map(|&(_, bits)| bits.count_ones() as usize).sum::<usize>();

    // Eliminate with cascade: dropping the assumption (u, v) costs its
    // tentative parents one unit of support for u. Confluent — the stats
    // below count sets that are independent of pop order.
    while let Some((u, v)) = eliminate.pop() {
        let Some(bits) = tentative.get_mut(&v) else { continue };
        let bit = 1u64 << u;
        if *bits & bit == 0 {
            continue;
        }
        stats.nodes_visited += 1;
        *bits &= !bit;
        if *bits == 0 {
            tentative.remove(&v);
        }
        let pmask = ctx.parent_masks[u as usize] & comp_mask;
        for &p in graph.parents(NodeId(v)) {
            let Some(counter) = tsup.get_mut(&(p.0, u)) else { continue };
            debug_assert!(*counter > 0, "tentative support underflow");
            *counter -= 1;
            stats.counter_updates += 1;
            if *counter == 0 && ctx.cnt[p.index() * ctx.np + u as usize] == 0 {
                // Every tentative assumption on p that relied on the pattern
                // edge (u_par, u) may now be dead.
                if let Some(&pbits) = tentative.get(&p.0) {
                    let mut b = pbits & pmask;
                    while b != 0 {
                        let u_par = b.trailing_zeros();
                        b &= b - 1;
                        eliminate.push((u_par, p.0));
                    }
                }
            }
        }
    }

    let mut survivors: Vec<(u32, u64)> = tentative.into_iter().collect();
    survivors.sort_unstable_by_key(|&(v, _)| v);
    SccVerdict { survivors, stats }
}

/// Collects the tentative candidates of one node range: `(v, candt ∩ SCC)`
/// for every node whose candidate bits intersect the component, ascending.
fn gather_tentative(
    masks: &[NodeMasks],
    comp_mask: u64,
    range: std::ops::Range<usize>,
) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for v in range {
        let bits = masks[v].candt & comp_mask;
        if bits != 0 {
            out.push((v as u32, bits));
        }
    }
    out
}

/// One chunk's tentative-support counters plus the number of increments
/// performed deriving them (the counter-update work of the derivation).
type TsupChunk = (FastHashMap<(u32, u32), u32>, usize);

/// Derives the tentative-support counters of one chunk of candidate sources:
/// `tsup[(v, u2)] = |children(v) ∩ tentative(u2)|`.
fn derive_tsup_chunk(
    graph: &DataGraph,
    tentative: &FastHashMap<u32, u64>,
    chunk: &[(u32, u64)],
) -> TsupChunk {
    let mut tsup: FastHashMap<(u32, u32), u32> = FastHashMap::default();
    let mut updates = 0usize;
    for &(v, _) in chunk {
        for &w in graph.children(NodeId(v)) {
            let Some(&wbits) = tentative.get(&w.0) else { continue };
            let mut bits = wbits;
            while bits != 0 {
                let u2 = bits.trailing_zeros();
                bits &= bits - 1;
                *tsup.entry((v, u2)).or_insert(0) += 1;
                updates += 1;
            }
        }
    }
    (tsup, updates)
}

/// Scans one chunk of tentative pairs for viability, returning the
/// non-viable ones in chunk order. A pair `(u, v)` is viable when every
/// pattern edge out of `u` has either real counter support at `v` or — for
/// SCC-internal edges — tentative support.
fn seed_eliminations_chunk(
    ctx: SccEvalContext<'_>,
    tsup: &FastHashMap<(u32, u32), u32>,
    chunk: &[(u32, u64)],
) -> Vec<(u32, u32)> {
    let viable = |u: usize, v: u32| {
        let base = v as usize * ctx.np;
        let mut bits = ctx.child_mask[u];
        while bits != 0 {
            let u2 = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if ctx.cnt[base + u2] > 0 {
                continue;
            }
            let in_scc = ctx.scc_child_mask[u] & (1 << u2) != 0;
            if !in_scc || tsup.get(&(v, u2 as u32)).copied().unwrap_or(0) == 0 {
                return false;
            }
        }
        true
    };
    let mut eliminate = Vec::new();
    for &(v, bits) in chunk {
        let mut b = bits;
        while b != 0 {
            let u = b.trailing_zeros() as usize;
            b &= b - 1;
            if !viable(u, v) {
                eliminate.push((u as u32, v));
            }
        }
    }
    eliminate
}

/// Which kind of drain a round executes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RoundKind {
    /// Counter deltas are decrements; `1 → 0` crossings seed matched pairs,
    /// seeds demote when they lost their last support.
    Demote,
    /// Counter deltas are increments; `0 → 1` crossings seed candidate pairs,
    /// seeds promote when they gained full support.
    Promote,
}

/// Per-shard state of one bulk-synchronous drain phase.
struct ShardState<'a> {
    /// First node id owned by this shard.
    base: usize,
    /// Membership masks of the owned nodes.
    masks: &'a mut [NodeMasks],
    /// Counter rows of the owned nodes.
    cnt: &'a mut [u32],
    /// Seeds `(u, v)` with `v` owned by this shard, pending evaluation.
    worklist: Vec<Seed>,
    /// Counter deltas addressed to this shard, applied next round.
    inbox: Vec<CounterMsg>,
    /// Counter deltas produced this round, keyed by destination shard.
    outboxes: Vec<Vec<CounterMsg>>,
    /// Signed per-pattern-node match-count changes, merged at phase end.
    match_delta: Vec<i64>,
    /// Match pairs this shard promoted, replayed into the [`DeltaTracker`]
    /// at phase end (the tracker sorts, so per-shard order is irrelevant).
    delta_inserted: Vec<(u32, u32)>,
    /// Match pairs this shard demoted, replayed like `delta_inserted`.
    delta_removed: Vec<(u32, u32)>,
    /// Stats accumulated by this shard, merged at phase end.
    stats: AffStats,
    /// True if this shard promoted at least one pair during the phase.
    promoted: bool,
}

/// Splits the per-node arrays into disjoint per-shard views.
fn shard_states<'a>(
    masks: &'a mut [NodeMasks],
    cnt: &'a mut [u32],
    np: usize,
    plan: ShardPlan,
) -> Vec<ShardState<'a>> {
    let mut states = Vec::with_capacity(plan.count);
    let mut masks_rest = masks;
    let mut cnt_rest = cnt;
    for shard in 0..plan.count {
        let range = plan.range(shard);
        let (shard_masks, masks_tail) = masks_rest.split_at_mut(range.len());
        let (shard_cnt, cnt_tail) = cnt_rest.split_at_mut(range.len() * np);
        masks_rest = masks_tail;
        cnt_rest = cnt_tail;
        states.push(ShardState {
            base: range.start,
            masks: shard_masks,
            cnt: shard_cnt,
            worklist: Vec::new(),
            inbox: Vec::new(),
            outboxes: vec![Vec::new(); plan.count],
            match_delta: vec![0; np],
            delta_inserted: Vec::new(),
            delta_removed: Vec::new(),
            stats: AffStats::default(),
            promoted: false,
        });
    }
    states
}

/// Folds one shard's accumulated deltas back into the global state,
/// replaying its match flips into the batch's [`DeltaTracker`] (no-ops when
/// the tracker is off, e.g. during a cold-start build). Returns whether the
/// shard promoted anything.
fn merge_shard(
    st: ShardState<'_>,
    match_count: &mut [usize],
    stats: &mut AffStats,
    tracker: &mut DeltaTracker,
) -> bool {
    for (u, &delta) in st.match_delta.iter().enumerate() {
        match_count[u] = (match_count[u] as i64 + delta) as usize;
    }
    for (u, v) in st.delta_inserted {
        tracker.record_inserted(u as usize, v);
    }
    for (u, v) in st.delta_removed {
        tracker.record_removed(u as usize, v);
    }
    stats.merge(st.stats);
    st.promoted
}

/// One round of a drain phase on one shard: apply the inbox (step A), then
/// evaluate the worklist (step B). Step B reads counters exactly as step A
/// left them — the deltas it produces are deferred to the next round's step A
/// — so both steps are order-independent within the round.
fn drain_round(
    st: &mut ShardState<'_>,
    kind: RoundKind,
    graph: &DataGraph,
    np: usize,
    parent_masks: &[u64],
    child_mask: &[u64],
    plan: ShardPlan,
) {
    // Step A: apply the counter deltas addressed to this shard. A zero
    // crossing (1→0 demoting, 0→1 promoting) seeds the owned pairs whose
    // support status may have flipped — exactly when the sequential drains
    // enqueue them.
    let inbox = std::mem::take(&mut st.inbox);
    for (node, u2) in inbox {
        let (node, u2) = (node as usize, u2 as usize);
        let local = node - st.base;
        let counter = &mut st.cnt[local * np + u2];
        st.stats.counter_updates += 1;
        let crossed = match kind {
            RoundKind::Demote => {
                debug_assert!(*counter > 0, "counter underflow at (n{node}, u{u2})");
                *counter -= 1;
                *counter == 0
            }
            RoundKind::Promote => {
                *counter += 1;
                *counter == 1
            }
        };
        if crossed {
            let members = match kind {
                RoundKind::Demote => st.masks[local].matched,
                RoundKind::Promote => st.masks[local].candt,
            };
            let mut bits = members & parent_masks[u2];
            while bits != 0 {
                let u = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                st.worklist.push((u as u32, node as u32));
            }
        }
    }

    // Step B: evaluate this round's seeds; demotions/promotions send one
    // counter delta per graph parent through the outboxes.
    let worklist = std::mem::take(&mut st.worklist);
    for (u, v) in worklist {
        let (u, v) = (u as usize, v as usize);
        st.stats.nodes_visited += 1;
        let local = v - st.base;
        let bit = 1u64 << u;
        let row = &st.cnt[local * np..(local + 1) * np];
        match kind {
            RoundKind::Demote => {
                if st.masks[local].matched & bit == 0 || row_has_support(row, child_mask[u]) {
                    continue;
                }
                st.masks[local].matched &= !bit;
                st.masks[local].candt |= bit;
                st.match_delta[u] -= 1;
                st.delta_removed.push((u as u32, v as u32));
                st.stats.matches_removed += 1;
            }
            RoundKind::Promote => {
                if st.masks[local].candt & bit == 0 || !row_has_support(row, child_mask[u]) {
                    continue;
                }
                st.masks[local].candt &= !bit;
                st.masks[local].matched |= bit;
                st.match_delta[u] += 1;
                st.delta_inserted.push((u as u32, v as u32));
                st.stats.matches_added += 1;
                st.promoted = true;
            }
        }
        st.stats.aux_changes += 1;
        for &p in graph.parents(NodeId::from_index(v)) {
            st.outboxes[plan.owner(p.index())].push((p.0, u as u32));
        }
    }
}

/// Materialises the observable view from the membership masks: the empty
/// relation when any pattern node is unmatched (`P ⋬ G`), otherwise one
/// sorted list per pattern node. A free function over the individual fields
/// so [`SimulationIndex::finish_apply`] can call it while the delta tracker
/// is mutably borrowed.
fn rebuild_relation_from(
    masks: &[NodeMasks],
    match_count: &[usize],
    np: usize,
    nv: usize,
) -> MatchRelation {
    if match_count.contains(&0) {
        return MatchRelation::empty(np);
    }
    let mut lists: Vec<Vec<NodeId>> = match_count.iter().map(|&c| Vec::with_capacity(c)).collect();
    // Ascending v ⇒ every per-pattern-node list is already sorted.
    for (v, m) in masks.iter().take(nv).enumerate() {
        let mut bits = m.matched;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            lists[u].push(NodeId::from_index(v));
        }
    }
    MatchRelation::from_lists(lists)
}

/// Enumerates the raw mask-level match pairs `(u, v)` regardless of totality
/// — the collapse case of [`finalize_delta`] reconstructs the pre-batch view
/// from these by undoing the batch's recorded churn.
fn raw_mask_pairs(masks: &[NodeMasks], nv: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (v, m) in masks.iter().take(nv).enumerate() {
        let mut bits = m.matched;
        while bits != 0 {
            let u = bits.trailing_zeros();
            bits &= bits - 1;
            pairs.push((u, v as u32));
        }
    }
    pairs
}

/// One counter read per pattern child of `u` over a single node's counter row.
#[inline]
fn row_has_support(row: &[u32], mut children: u64) -> bool {
    while children != 0 {
        let u2 = children.trailing_zeros() as usize;
        children &= children - 1;
        if row[u2] == 0 {
            return false;
        }
    }
    true
}

/// Runs rounds until every worklist and inbox is empty, fanning a round out
/// to scoped threads only when the pending work amortises the spawns (the
/// execution strategy never changes the computation, only where it runs).
fn drive_rounds(
    states: &mut [ShardState<'_>],
    kind: RoundKind,
    graph: &DataGraph,
    np: usize,
    parent_masks: &[u64],
    child_mask: &[u64],
    plan: ShardPlan,
) {
    loop {
        let pending: usize = states.iter().map(|st| st.worklist.len() + st.inbox.len()).sum();
        if pending == 0 {
            break;
        }
        if states.len() > 1 && pending >= PARALLEL_WORK_THRESHOLD {
            std::thread::scope(|scope| {
                // Idle shards (no seeds, no inbox) are no-ops by construction
                // — don't pay a spawn for them.
                for st in states.iter_mut() {
                    if st.worklist.is_empty() && st.inbox.is_empty() {
                        continue;
                    }
                    scope.spawn(move || {
                        drain_round(st, kind, graph, np, parent_masks, child_mask, plan)
                    });
                }
            });
        } else {
            for st in states.iter_mut() {
                drain_round(st, kind, graph, np, parent_masks, child_mask, plan);
            }
        }
        // Merge step: move every outbox into its destination inbox, producers
        // in ascending shard order. (The order is irrelevant to the outcome —
        // step A is commutative — but keeping it fixed makes replays
        // byte-for-byte reproducible.)
        for i in 0..states.len() {
            for j in 0..states.len() {
                let msgs = std::mem::take(&mut states[i].outboxes[j]);
                if !msgs.is_empty() {
                    states[j].inbox.extend(msgs);
                }
            }
        }
    }
}

/// The recovery-orchestration view of the engine; every method delegates to
/// the inherent API of the same name (`rebuild_with_shards` to
/// [`SimulationIndex::build_with_shards`]).
impl IncrementalEngine for SimulationIndex {
    fn rebuild_with_shards(pattern: &Pattern, graph: &DataGraph, shards: usize) -> Self {
        Self::build_with_shards(pattern, graph, shards)
    }

    fn pattern(&self) -> &Pattern {
        self.pattern()
    }

    fn try_apply_batch_with_shards(
        &mut self,
        graph: &mut DataGraph,
        batch: &BatchUpdate,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        SimulationIndex::try_apply_batch_with_shards(self, graph, batch, shards)
    }

    fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        SimulationIndex::try_matches(self)
    }

    fn poisoned(&self) -> bool {
        SimulationIndex::poisoned(self)
    }

    /// Plain simulation needs no graph-wide auxiliary structure: candidate
    /// membership is re-derived per pattern and the masks carry everything
    /// else, so the shared state is the unit type.
    type Shared = ();

    fn shared_build(_graph: &DataGraph, _shards: usize) -> Self::Shared {}

    fn shared_stage() -> &'static str {
        PipelineStage::Mutate.label()
    }

    fn shared_mutate(
        _shared: &mut (),
        graph: &mut DataGraph,
        effective: &[Update],
        shards: usize,
    ) -> SharedMutation {
        fail::fire(fail::SIM_MUTATE);
        let plan = ShardPlan::new(graph.node_count(), shards);
        graph.apply_reduced_batch_sharded(effective, plan);
        SharedMutation { affected: None, updates_processed: effective.len(), affected_entries: 0 }
    }

    fn build_in_service(
        pattern: &Pattern,
        graph: &DataGraph,
        _shared: &mut (),
        cand_lists: &[Arc<Vec<NodeId>>],
        shards: usize,
    ) -> Result<Self, BuildError> {
        if !pattern.is_normal() {
            return Err(BuildError::NotNormal);
        }
        if pattern.node_count() > MAX_PATTERN_NODES {
            return Err(BuildError::ArityTooLarge { arity: pattern.node_count() });
        }
        let list_refs: Vec<&[NodeId]> = cand_lists.iter().map(|l| l.as_slice()).collect();
        Ok(Self::build_from_candidates(pattern, graph, &list_refs, shards))
    }

    fn try_apply_shared(
        &mut self,
        graph: &DataGraph,
        _shared: &mut (),
        batch: &SharedBatch<'_>,
        _mutation: &SharedMutation,
        shards: usize,
    ) -> Result<ApplyOutcome, ApplyError> {
        if self.poisoned {
            return Err(ApplyError::Poisoned);
        }
        let mut stage = PipelineStage::Prepare;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.apply_shared_stages(graph, batch, shards, &mut stage)
        }));
        match outcome {
            Ok(outcome) => Ok(outcome),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                Err(ApplyError::StagePanicked(self.contain_shared_panic(stage, message)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::match_simulation;
    use igpm_generator::{
        degree_biased_deletions, degree_biased_insertions, generate_pattern, mixed_batch,
        synthetic_graph, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
    };
    use igpm_graph::{Attributes, EdgeBound, Predicate};

    /// The FriendFeed graph of Fig. 4 (base edges only) plus handles on the
    /// nodes used by Examples 4.1–5.5.
    struct FriendFeed {
        graph: DataGraph,
        ann: NodeId,
        pat: NodeId,
        #[allow(dead_code)]
        dan: NodeId,
        bill: NodeId,
        mat: NodeId,
        don: NodeId,
        tom: NodeId,
        ross: NodeId,
    }

    fn friendfeed() -> FriendFeed {
        let mut g = DataGraph::new();
        let person = |g: &mut DataGraph, name: &str, job: &str| {
            g.add_node(Attributes::new().with("name", name).with("job", job).with("label", job))
        };
        let ann = person(&mut g, "Ann", "CTO");
        let pat = person(&mut g, "Pat", "DB");
        let dan = person(&mut g, "Dan", "DB");
        let bill = person(&mut g, "Bill", "Bio");
        let mat = person(&mut g, "Mat", "Bio");
        let don = person(&mut g, "Don", "CTO");
        let tom = person(&mut g, "Tom", "Bio");
        let ross = person(&mut g, "Ross", "Med");
        g.add_edge(ann, pat);
        g.add_edge(pat, ann);
        g.add_edge(pat, bill);
        g.add_edge(ann, bill);
        g.add_edge(ann, dan);
        g.add_edge(dan, ann);
        g.add_edge(dan, mat);
        g.add_edge(mat, dan);
        g.add_edge(ross, tom);
        FriendFeed { graph: g, ann, pat, dan, bill, mat, don, tom, ross }
    }

    /// Normal pattern P3' of Fig. 4: CTO -> DB, DB -> CTO, DB -> Bio, CTO -> Bio.
    fn pattern_p3() -> Pattern {
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_normal_edge(cto, db);
        p.add_normal_edge(db, cto);
        p.add_normal_edge(db, bio);
        p.add_normal_edge(cto, bio);
        p
    }

    fn assert_consistent(
        index: &SimulationIndex,
        pattern: &Pattern,
        graph: &DataGraph,
        context: &str,
    ) {
        let expected = match_simulation(pattern, graph);
        assert_eq!(index.matches(), expected, "{context}: incremental result diverged from batch");
        index.assert_counters_consistent(graph);
    }

    #[test]
    fn example_5_2_unit_deletion() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        assert!(index.is_match());
        assert!(index.match_set(PatternNodeId(1)).contains(&ff.pat));

        // Deleting the ss edge (Pat, Bill) invalidates Pat as a DB match
        // (Example 5.2 / 5.3).
        let stats = index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        assert_eq!(stats.stats.matches_removed, 1);
        assert!(stats.stats.counter_updates >= 1, "deletions maintain the support counters");
        assert!(!index.match_set(PatternNodeId(1)).contains(&ff.pat));
        assert!(index.candidate_set(PatternNodeId(1)).contains(&ff.pat));
        assert!(!index.contains(PatternNodeId(1), ff.pat));
        assert_consistent(&index, &p, &ff.graph, "after deleting (Pat, Bill)");
    }

    #[test]
    fn example_5_4_unit_insertion_restores_the_match() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        assert!(!index.match_set(PatternNodeId(1)).contains(&ff.pat));

        // Inserting the cs edge (Pat, Mat) makes Pat a DB match again
        // (Example 5.4).
        let stats = index.insert_edge(&mut ff.graph, ff.pat, ff.mat);
        assert!(stats.stats.matches_added >= 1);
        assert!(index.match_set(PatternNodeId(1)).contains(&ff.pat));
        assert_consistent(&index, &p, &ff.graph, "after inserting (Pat, Mat)");
    }

    #[test]
    fn example_4_1_insertions_add_don_as_cto_match() {
        // Inserting e2 = (Don, Pat), e3 = (Don, Tom), e4 = (Pat, Don) turns Don
        // into a CTO match (it now has DB and Bio children and the DB child
        // reaches a CTO), cf. Example 5.5 / Fig. 7.
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        assert!(!index.match_set(PatternNodeId(0)).contains(&ff.don));

        let mut batch = BatchUpdate::new();
        batch.insert(ff.don, ff.pat);
        batch.insert(ff.don, ff.tom);
        batch.insert(ff.pat, ff.don);
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert!(stats.stats.matches_added >= 1);
        assert!(index.match_set(PatternNodeId(0)).contains(&ff.don));
        assert_consistent(&index, &p, &ff.graph, "after the Don insertions");
    }

    #[test]
    fn irrelevant_updates_are_reduced_away() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        // (Ross, Tom) involves a Med node that matches nothing: deleting it is
        // irrelevant; inserting (Tom, Ross) likewise.
        let mut batch = BatchUpdate::new();
        batch.delete(ff.ross, ff.tom);
        batch.insert(ff.tom, ff.ross);
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert_eq!(stats.stats.delta_g, 2);
        assert_eq!(stats.stats.reduced_delta_g, 0, "minDelta removes both updates");
        assert_eq!(stats.stats.delta_m(), 0);
        assert_consistent(&index, &p, &ff.graph, "after irrelevant updates");
    }

    #[test]
    fn cancelling_updates_have_no_effect() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let before = index.matches();
        let mut batch = BatchUpdate::new();
        batch.delete(ff.pat, ff.bill);
        batch.insert(ff.pat, ff.bill); // cancels the deletion
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert_eq!(stats.stats.reduced_delta_g, 0);
        assert_eq!(index.matches(), before);
        assert_consistent(&index, &p, &ff.graph, "after cancelling updates");
    }

    #[test]
    fn unboundedness_gadget_insertions() {
        // The Theorem 5.1(1) gadget: a cyclic pattern over two chains; the
        // match stays empty until both bridging edges are present.
        let mut p = Pattern::new();
        let u1 = p.add_labeled_node("a");
        let u2 = p.add_labeled_node("a");
        p.add_normal_edge(u1, u2);
        p.add_normal_edge(u2, u1);

        let n = 8;
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..2 * n).map(|_| g.add_labeled_node("a")).collect();
        for i in 0..n - 1 {
            g.add_edge(nodes[i], nodes[i + 1]);
            g.add_edge(nodes[n + i], nodes[n + i + 1]);
        }
        let mut index = SimulationIndex::build(&p, &g);
        assert!(!index.is_match());

        let stats = index.insert_edge(&mut g, nodes[n - 1], nodes[n]);
        assert!(!index.is_match(), "one bridge is not enough");
        assert_eq!(stats.stats.matches_added, 0);
        assert_consistent(&index, &p, &g, "after first bridge");

        let stats = index.insert_edge(&mut g, nodes[2 * n - 1], nodes[0]);
        assert!(index.is_match(), "closing the cycle matches every node");
        assert_eq!(stats.stats.matches_added, 4 * n, "both pattern nodes match all 2n nodes");
        assert_consistent(&index, &p, &g, "after closing the cycle");
    }

    #[test]
    fn deleting_and_reinserting_everything_round_trips() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let original = index.matches();
        let edges: Vec<(NodeId, NodeId)> = ff.graph.edges().collect();
        for &(a, b) in &edges {
            index.delete_edge(&mut ff.graph, a, b);
        }
        assert!(!index.is_match());
        assert_consistent(&index, &p, &ff.graph, "after deleting every edge");
        for &(a, b) in &edges {
            index.insert_edge(&mut ff.graph, a, b);
        }
        assert_eq!(index.matches(), original);
        assert_consistent(&index, &p, &ff.graph, "after re-inserting every edge");
    }

    #[test]
    fn random_unit_updates_agree_with_batch_general_patterns() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(150, 450, 4, seed));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(4, 6, 1, seed + 10).with_shape(PatternShape::General),
            );
            let mut index = SimulationIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(30, seed + 20));
            let del = degree_biased_deletions(&graph, UpdateGenConfig::new(30, seed + 30));
            for update in ins.iter().chain(del.iter()) {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    index.insert_edge(&mut graph, a, b);
                } else {
                    index.delete_edge(&mut graph, a, b);
                }
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: unit updates"));
        }
    }

    #[test]
    fn random_batch_updates_agree_with_batch_recomputation() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(200, 700, 4, seed + 100));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(5, 8, 1, seed + 110).with_shape(PatternShape::General),
            );
            let mut index = SimulationIndex::build(&pattern, &graph);
            for round in 0..3 {
                let batch = mixed_batch(&graph, 40, 40, seed * 17 + round);
                index.apply_batch(&mut graph, &batch);
                assert_consistent(
                    &index,
                    &pattern,
                    &graph,
                    &format!("seed {seed}, round {round}: batch updates"),
                );
            }
        }
    }

    #[test]
    fn dag_pattern_insertions_are_handled_without_prop_cc() {
        for seed in 0..3u64 {
            let mut graph = synthetic_graph(&SyntheticConfig::new(150, 500, 4, seed + 200));
            let pattern = generate_pattern(
                &graph,
                &PatternGenConfig::normal(5, 7, 1, seed + 210).with_shape(PatternShape::Dag),
            );
            assert!(pattern.is_dag());
            let mut index = SimulationIndex::build(&pattern, &graph);
            let ins = degree_biased_insertions(&graph, UpdateGenConfig::new(50, seed + 220));
            for update in ins.iter() {
                let (a, b) = update.endpoints();
                index.insert_edge(&mut graph, a, b);
            }
            assert_consistent(&index, &pattern, &graph, &format!("seed {seed}: DAG insertions"));
        }
    }

    #[test]
    fn build_rejects_bounded_patterns() {
        let ff = friendfeed();
        let mut p = Pattern::new();
        let a = p.add_node(Predicate::label("CTO"));
        let b = p.add_node(Predicate::label("Bio"));
        p.add_edge(a, b, EdgeBound::Hops(2));
        let result = std::panic::catch_unwind(|| SimulationIndex::build(&p, &ff.graph));
        assert!(result.is_err());
    }

    #[test]
    fn build_rejects_patterns_wider_than_the_masks() {
        let mut g = DataGraph::new();
        g.add_labeled_node("a");
        let mut p = Pattern::new();
        for _ in 0..=MAX_PATTERN_NODES {
            p.add_labeled_node("a");
        }
        let result = std::panic::catch_unwind(|| SimulationIndex::build(&p, &g));
        assert!(result.is_err(), "65-node pattern must be rejected");
    }

    #[test]
    fn result_graph_tracks_current_matches() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let gr_before = index.result_graph(&ff.graph);
        assert!(gr_before.has_edge(ff.pat, ff.bill));
        index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        let gr_after = index.result_graph(&ff.graph);
        assert!(!gr_after.has_edge(ff.pat, ff.bill));
        let delta = gr_before.diff(&gr_after);
        assert!(delta.removed_nodes.contains(&ff.pat));
    }

    #[test]
    fn matches_view_is_cached_and_invalidated_on_mutation() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let before = index.matches();
        // Two consecutive views observe the same cached relation.
        assert_eq!(*index.matches_view(), before);
        assert_eq!(index.matches(), before);
        // A mutation invalidates the cache; the next view sees the change.
        index.delete_edge(&mut ff.graph, ff.pat, ff.bill);
        let after = index.matches();
        assert_ne!(before, after);
        assert_eq!(*index.matches_view(), after);
        assert_eq!(after, match_simulation(&p, &ff.graph));
    }

    #[test]
    fn nodes_added_after_build_join_the_candidate_pipeline() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);

        // A new DB person arrives and links to Ann (CTO) and Bill (Bio):
        // they must become a DB match exactly like a from-scratch run says.
        let eve = ff
            .graph
            .add_node(Attributes::new().with("name", "Eve").with("job", "DB").with("label", "DB"));
        index.insert_edge(&mut ff.graph, eve, ff.ann);
        assert_consistent(&index, &p, &ff.graph, "after (Eve, Ann)");
        index.insert_edge(&mut ff.graph, eve, ff.bill);
        assert!(index.contains(PatternNodeId(1), eve), "Eve now matches DB");
        assert_consistent(&index, &p, &ff.graph, "after (Eve, Bill)");

        // A new Bio person is isolated: Bio is childless in P3', so they match
        // immediately once an (irrelevant) update lets the index observe them.
        let zed = ff.graph.add_node(
            Attributes::new().with("name", "Zed").with("job", "Bio").with("label", "Bio"),
        );
        index.insert_edge(&mut ff.graph, ff.ross, zed);
        assert!(index.contains(PatternNodeId(2), zed), "childless pattern node matches");
        assert_consistent(&index, &p, &ff.graph, "after adding Zed");
    }

    #[test]
    fn first_edge_of_a_post_build_node_is_classified_live() {
        // Regression: insert_edge must grow the membership masks *before*
        // classifying the update, or the first edge out of a node added after
        // build is silently dropped as irrelevant.
        let mut g = DataGraph::new();
        let b = g.add_labeled_node("B");
        let mut p = Pattern::new();
        let ua = p.add_labeled_node("A");
        let ub = p.add_labeled_node("B");
        p.add_normal_edge(ua, ub);
        let mut index = SimulationIndex::build(&p, &g);
        assert!(!index.is_match());

        let a = g.add_labeled_node("A");
        let stats = index.insert_edge(&mut g, a, b);
        assert_eq!(stats.stats.reduced_delta_g, 1, "first edge of a new node is a cs edge");
        assert!(index.contains(ua, a), "new node promoted through its first edge");
        assert_consistent(&index, &p, &g, "after first edge of post-build node");
    }

    #[test]
    fn batch_over_post_build_nodes_runs_prop_cc() {
        // Regression: apply_batch must classify against grown masks, or a
        // cyclic match formed entirely by post-build nodes never triggers
        // propCC.
        let mut g = DataGraph::new();
        g.add_labeled_node("C");
        let mut p = Pattern::new();
        let ua = p.add_labeled_node("A");
        let ub = p.add_labeled_node("B");
        p.add_normal_edge(ua, ub);
        p.add_normal_edge(ub, ua);
        let mut index = SimulationIndex::build(&p, &g);
        assert!(!index.is_match());

        let x = g.add_labeled_node("A");
        let y = g.add_labeled_node("B");
        let mut batch = BatchUpdate::new();
        batch.insert(x, y);
        batch.insert(y, x);
        index.apply_batch(&mut g, &batch);
        assert!(index.contains(ua, x) && index.contains(ub, y), "cycle of new nodes matches");
        assert_consistent(&index, &p, &g, "after batch over post-build nodes");
    }

    #[test]
    fn cs_insertion_outside_the_scc_unblocks_scc_candidates() {
        // Regression (found by the cross-engine conformance suite): pattern
        // A ⇄ B with a third edge A → C; graph x(a) ⇄ y(b) and an isolated
        // z(c). Before the update nothing matches — x lacks a C child, which
        // eliminates the whole cycle. Inserting (x, z) is a cs edge for the
        // *non-SCC* pattern edge (A, C); it must still wake the joint SCC
        // evaluation, because the counter rise removes x's last non-cyclic
        // blocker. The old trigger only looked at SCC-internal pattern edges
        // and silently left the match empty.
        let build = || {
            let mut p = Pattern::new();
            let a = p.add_labeled_node("a");
            let b = p.add_labeled_node("b");
            let c = p.add_labeled_node("c");
            p.add_normal_edge(a, b);
            p.add_normal_edge(b, a);
            p.add_normal_edge(a, c);
            let mut g = DataGraph::new();
            let x = g.add_labeled_node("a");
            let y = g.add_labeled_node("b");
            let z = g.add_labeled_node("c");
            g.add_edge(x, y);
            g.add_edge(y, x);
            (p, g, x, z)
        };

        // Unit path.
        let (p, mut g, x, z) = build();
        let mut index = SimulationIndex::build(&p, &g);
        assert!(!index.is_match());
        let stats = index.insert_edge(&mut g, x, z);
        assert!(index.is_match(), "cs insertion outside the SCC must trigger propCC");
        assert_eq!(stats.stats.matches_added, 2, "x and y promoted jointly");
        assert_consistent(&index, &p, &g, "unit path after (x, z)");

        // Batch path (same trigger, sharded drains).
        let (p, mut g, x, z) = build();
        let mut index = SimulationIndex::build(&p, &g);
        let mut batch = BatchUpdate::new();
        batch.insert(x, z);
        index.apply_batch(&mut g, &batch);
        assert!(index.is_match(), "batch path must agree");
        assert_consistent(&index, &p, &g, "batch path after (x, z)");
    }

    #[test]
    fn counter_updates_are_reported() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let batch = {
            let mut b = BatchUpdate::new();
            b.delete(ff.pat, ff.bill);
            b.insert(ff.pat, ff.mat);
            b
        };
        let stats = index.apply_batch(&mut ff.graph, &batch);
        assert!(stats.stats.counter_updates > 0);
        assert!(stats.to_string().contains("counters="));
        assert_consistent(&index, &p, &ff.graph, "after counter-reporting batch");
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let ff = friendfeed();
        // A bounded (non-normal) pattern is rejected.
        let mut bounded = Pattern::new();
        let a = bounded.add_labeled_node("CTO");
        let b = bounded.add_labeled_node("DB");
        bounded.add_edge(a, b, EdgeBound::Hops(2));
        assert_eq!(
            SimulationIndex::try_build(&bounded, &ff.graph).err(),
            Some(crate::incremental::BuildError::NotNormal)
        );
        // An over-wide pattern is rejected with its arity.
        let mut wide = Pattern::new();
        let mut prev = wide.add_labeled_node("CTO");
        for _ in 0..MAX_PATTERN_NODES {
            let next = wide.add_labeled_node("CTO");
            wide.add_normal_edge(prev, next);
            prev = next;
        }
        assert_eq!(
            SimulationIndex::try_build(&wide, &ff.graph).err(),
            Some(crate::incremental::BuildError::ArityTooLarge { arity: MAX_PATTERN_NODES + 1 })
        );
        // A well-formed pattern builds the same index as the panicking name.
        let p = pattern_p3();
        let built = SimulationIndex::try_build(&p, &ff.graph).expect("normal pattern");
        assert_eq!(built.aux_snapshot(), SimulationIndex::build(&p, &ff.graph).aux_snapshot());
    }

    #[test]
    fn redundant_unit_updates_are_exact_no_ops() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let aux = index.aux_snapshot();
        let matches = index.matches();
        let graph_before = ff.graph.clone();

        // Duplicate insert: (Ann, Pat) already exists.
        let stats = index.insert_edge(&mut ff.graph, ff.ann, ff.pat);
        assert_eq!(stats.stats.reduced_delta_g, 0, "a present edge is never relevant");
        assert_eq!(stats.stats.delta_m(), 0);
        assert_eq!(stats.stats.aux_changes, 0);
        assert_eq!(stats.stats.counter_updates, 0);

        // Absent delete: (Don, Tom) does not exist.
        let stats = index.delete_edge(&mut ff.graph, ff.don, ff.tom);
        assert_eq!(stats.stats.reduced_delta_g, 0);
        assert_eq!(stats.stats.delta_m(), 0);
        assert_eq!(stats.stats.aux_changes, 0);
        assert_eq!(stats.stats.counter_updates, 0);

        assert_eq!(index.aux_snapshot(), aux, "masks/counters untouched by no-ops");
        assert_eq!(index.matches(), matches, "match relation untouched by no-ops");
        assert_eq!(ff.graph, graph_before, "graph untouched by no-ops");
        assert_consistent(&index, &p, &ff.graph, "after unit no-ops");
    }

    #[test]
    fn strict_apply_rejects_invalid_batches_whole() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let aux = index.aux_snapshot();
        let graph_before = ff.graph.clone();

        // A batch mixing a valid insertion with a duplicate insert, an absent
        // delete and an out-of-range endpoint: rejected whole, nothing moves.
        let oob = NodeId::from_index(ff.graph.node_count() + 7);
        let mut batch = BatchUpdate::new();
        batch.insert(ff.don, ff.pat); // valid
        batch.insert(ff.ann, ff.pat); // duplicate
        batch.delete(ff.don, ff.tom); // absent
        batch.insert(ff.ann, oob); // out of range
        let err = index.try_apply_batch(&mut ff.graph, &batch).unwrap_err();
        let ApplyError::InvalidBatch(rejections) = &err else {
            panic!("expected InvalidBatch, got {err}");
        };
        let reasons: Vec<_> = rejections.iter().map(|r| (r.position, r.reason)).collect();
        assert_eq!(
            reasons,
            vec![
                (1, igpm_graph::RejectReason::DuplicateInsert),
                (2, igpm_graph::RejectReason::AbsentDelete),
                (3, igpm_graph::RejectReason::NodeOutOfRange),
            ]
        );
        assert_eq!(index.aux_snapshot(), aux, "rejected batch must touch nothing");
        assert_eq!(ff.graph, graph_before, "rejected batch must touch nothing");

        // The index is still fully usable: the valid part applies cleanly.
        let mut valid = BatchUpdate::new();
        valid.insert(ff.don, ff.pat);
        index.try_apply_batch(&mut ff.graph, &valid).expect("valid batch");
        assert_consistent(&index, &p, &ff.graph, "after post-rejection apply");
    }

    #[test]
    fn lenient_apply_skips_invalid_updates_and_reports_them() {
        let ff = friendfeed();
        let p = pattern_p3();
        let oob = NodeId::from_index(ff.graph.node_count() + 2);

        // Lenient instance: valid updates interleaved with one of each
        // invalid kind.
        let mut lenient_graph = ff.graph.clone();
        let mut lenient = SimulationIndex::build(&p, &lenient_graph);
        let mut batch = BatchUpdate::new();
        batch.insert(ff.don, ff.pat); // valid
        batch.insert(oob, ff.pat); // out of range
        batch.delete(ff.don, ff.tom); // absent
        batch.insert(ff.don, ff.tom); // valid
        batch.insert(ff.don, ff.tom); // duplicate (of the one just inserted)
        batch.insert(ff.pat, ff.don); // valid
        let report = lenient.apply_batch_lenient(&mut lenient_graph, &batch).expect("lenient");
        let reasons: Vec<_> = report.rejected.iter().map(|r| (r.position, r.reason)).collect();
        assert_eq!(
            reasons,
            vec![
                (1, igpm_graph::RejectReason::NodeOutOfRange),
                (2, igpm_graph::RejectReason::AbsentDelete),
                (4, igpm_graph::RejectReason::DuplicateInsert),
            ]
        );

        // Control instance: only the valid updates.
        let mut control_graph = ff.graph.clone();
        let mut control = SimulationIndex::build(&p, &control_graph);
        let mut valid = BatchUpdate::new();
        valid.insert(ff.don, ff.pat);
        valid.insert(ff.don, ff.tom);
        valid.insert(ff.pat, ff.don);
        let control_stats = control.apply_batch(&mut control_graph, &valid);

        assert_eq!(lenient_graph, control_graph, "lenient graph = valid-only graph");
        assert_eq!(lenient.aux_snapshot(), control.aux_snapshot(), "identical auxiliary state");
        assert_eq!(lenient.matches(), control.matches());
        // The stats agree on everything except the raw |ΔG| (the lenient
        // batch still counts its redundant — but in-range — updates).
        assert_eq!(report.stats.reduced_delta_g, control_stats.stats.reduced_delta_g);
        assert_eq!(report.stats.matches_added, control_stats.stats.matches_added);
        assert_eq!(report.stats.matches_removed, control_stats.stats.matches_removed);
        assert_consistent(&lenient, &p, &lenient_graph, "after lenient apply");
    }

    #[test]
    fn redundant_batches_leave_cached_views_and_stats_untouched() {
        let mut ff = friendfeed();
        let p = pattern_p3();
        let mut index = SimulationIndex::build(&p, &ff.graph);
        let before = index.matches();
        let aux = index.aux_snapshot();

        // Entirely redundant (but in-range) batch through the lenient path:
        // everything is neutralised by the net-effect reduction.
        let mut batch = BatchUpdate::new();
        batch.insert(ff.ann, ff.pat); // duplicate insert
        batch.delete(ff.don, ff.tom); // absent delete
        let report = index.apply_batch_lenient(&mut ff.graph, &batch).expect("lenient");
        assert_eq!(report.stats.reduced_delta_g, 0);
        assert_eq!(report.stats.delta_m(), 0);
        assert_eq!(report.stats.aux_changes, 0);
        assert_eq!(report.rejected.len(), 2, "both no-ops reported");
        assert_eq!(index.aux_snapshot(), aux);
        assert_eq!(index.matches(), before);
        assert_consistent(&index, &p, &ff.graph, "after redundant batch");
    }
}
