//! # igpm-core
//!
//! The primary contribution of *Incremental Graph Pattern Matching* (Fan,
//! Wang, Wu; SIGMOD 2011 / TODS 2013), implemented as a library:
//!
//! * **Graph simulation** ([`simulation::match_simulation`]) — the classic
//!   quadratic-time maximum simulation of a normal pattern in a data graph
//!   (Henzinger, Henzinger, Kopke 1995), used both as a matching notion in its
//!   own right and as the `Matchs` batch baseline.
//! * **Bounded simulation** ([`bounded::match_bounded`]) — the paper's revised
//!   matching notion (Section 2) and its cubic-time `Match` algorithm
//!   (Section 3, Fig. 3), generic over a [`igpm_distance::DistanceOracle`] so
//!   the `Matrix+Match`, `BFS+Match` and `2-hop+Match` variants of Exp-2 are
//!   all available.
//! * **Incremental simulation** ([`incremental::sim::SimulationIndex`]) —
//!   `IncMatch-`, `IncMatch+`, `IncMatch+dag` and the batch `IncMatch` with the
//!   `minDelta` reduction (Section 5).
//! * **Incremental bounded simulation**
//!   ([`incremental::bsim::BoundedIndex`]) — `IncBMatch+`, `IncBMatch-` and the
//!   batch `IncBMatch` built on landmark/distance vectors (Section 6).
//!
//! Every incremental operation reports [`AffStats`] so the semi-boundedness
//! claims of the paper (costs driven by `|ΔG|`, `|P|` and `|AFF|` rather than
//! `|G|`) can be observed empirically.
//!
//! Batch maintenance **and the cold-start builds** are sharded across node
//! ranges and run on scoped threads when the work volume warrants it
//! ([`igpm_graph::shard`]); the shard count comes from the `IGPM_SHARDS`
//! environment variable (default: available parallelism, see
//! [`configured_shards`]) or can be pinned per call with
//! [`SimulationIndex::apply_batch_with_shards`] /
//! [`BoundedIndex::apply_batch_with_shards`] /
//! [`SimulationIndex::build_with_shards`] /
//! [`BoundedIndex::build_with_shards`]. Results — match sets, support
//! counters, auxiliary state and [`AffStats`] — are bit-identical for every
//! shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod durable;
pub mod incremental;
pub mod ingest;
pub mod service;
pub mod simulation;
pub mod stats;

pub use bounded::{
    build_result_graph, match_bounded, match_bounded_with_bfs, match_bounded_with_matrix,
    match_bounded_with_two_hop,
};
pub use durable::{
    DeltaEvent, DurableError, DurableIndex, DurableMatchService, DurableOptions, InvalidOptions,
    ServiceDeltaEvent, ServiceSubscription, Subscription,
};
pub use igpm_graph::shard::configured_shards;
pub use igpm_graph::update::{ApplyError, RejectReason, StagePanic, UpdateRejection};
pub use igpm_graph::MatchDelta;
pub use incremental::bsim::{BoundedIndex, BsimAuxSnapshot};
pub use incremental::sim::{SimAuxSnapshot, SimulationIndex};
pub use incremental::{
    ApplyOutcome, BuildError, IncrementalEngine, LenientApply, SharedBatch, SharedMutation,
};
pub use ingest::{
    Ingest, IngestApply, IngestError, IngestHandle, IngestOptions, IngestSink, IngestStats,
    SubmitError, Ticket,
};
pub use service::{MatchService, PatternId, ServiceApply, ServiceError};
pub use simulation::{
    candidates, candidates_with_index, candidates_with_index_sharded, candidates_with_shards,
    match_simulation, simulation_result_graph,
};
pub use stats::AffStats;
