//! Bounded simulation matching: the `Match` algorithm (Section 3, Fig. 3).
//!
//! Given a b-pattern `P` and a data graph `G`, `Match` computes the unique
//! maximum relation `S ⊆ V_p × V` such that every pair satisfies the node
//! predicate and every pattern edge `(u, u')` maps to a nonempty path from the
//! matched node to a match of `u'` whose length respects the edge bound
//! (Section 2.2). The implementation mirrors the structure of Fig. 3:
//!
//! 1. candidate sets `mat(u)` are initialised from the node predicates (plus
//!    the out-degree check of line 6);
//! 2. for every pattern edge and every candidate pair, the distance condition
//!    is evaluated once through a [`DistanceOracle`] (this is the role of the
//!    `anc`/`desc` sets and the auxiliary matrix `X'` in the paper);
//! 3. candidates whose support for some pattern edge drops to zero are removed
//!    and the removal propagates to their ancestors, exactly like the
//!    `premv`-driven refinement loop of lines 8–17.
//!
//! The distance oracle is pluggable, giving the three `Match` variants of
//! Exp-2 (`Matrix+Match`, `BFS+Match`, `2-hop+Match`) plus the landmark-based
//! oracle used by incremental bounded simulation.

use crate::simulation::candidates;
use crate::stats::AffStats;
use igpm_distance::{satisfies_bound, BfsOracle, DistanceMatrix, DistanceOracle, TwoHopLabels};
use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::shard::{MAX_SHARDS, PARALLEL_EVAL_THRESHOLD};
use igpm_graph::{
    DataGraph, EdgeBound, MatchRelation, NodeId, Pattern, PatternNodeId, ResultGraph,
};

/// Evaluates the distance bound of every `(source, target)` pair — the
/// row-major `sources × targets` enumeration — against `oracle`. Pure reads;
/// chunked across scoped threads when `shards > 1` and there are enough
/// pairs to amortise the spawns ([`PARALLEL_EVAL_THRESHOLD`]). The verdict
/// vector is identical for every shard count: the split changes only *where*
/// each query runs, never its answer, so the sharded cold-start builds that
/// consume these verdicts in enumeration order are bit-identical to the
/// sequential ones.
///
/// Requires a `Sync` oracle (e.g. [`igpm_distance::LandmarkIndex`],
/// [`DistanceMatrix`]); the caching [`BfsOracle`] is not one, which is why
/// the generic [`match_bounded`] keeps its sequential evaluation loop.
pub(crate) fn evaluate_pair_bounds<O: DistanceOracle + ?Sized + Sync>(
    graph: &DataGraph,
    oracle: &O,
    sources: &[NodeId],
    targets: &[NodeId],
    bound: EdgeBound,
    shards: usize,
) -> Vec<bool> {
    let total = sources.len() * targets.len();
    let mut verdicts = vec![false; total];
    let eval = |base: usize, chunk: &mut [bool]| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let idx = base + i;
            let v = sources[idx / targets.len()];
            let w = targets[idx % targets.len()];
            *slot = satisfies_bound(graph, oracle, v, w, bound);
        }
    };
    let shards = shards.clamp(1, MAX_SHARDS);
    if shards == 1 || total < PARALLEL_EVAL_THRESHOLD {
        eval(0, &mut verdicts);
        return verdicts;
    }
    let chunk = total.div_ceil(shards);
    let eval = &eval;
    std::thread::scope(|scope| {
        for (c_idx, slice) in verdicts.chunks_mut(chunk).enumerate() {
            scope.spawn(move || eval(c_idx * chunk, slice));
        }
    });
    verdicts
}

/// Computes the maximum bounded simulation `M^k_sim(P, G)` using `oracle` for
/// distance queries. Returns the empty relation when `P ⋬_bsim G`.
pub fn match_bounded<O: DistanceOracle + ?Sized>(
    pattern: &Pattern,
    graph: &DataGraph,
    oracle: &O,
) -> MatchRelation {
    match_bounded_with_stats(pattern, graph, oracle).0
}

/// [`match_bounded`] variant that also reports refinement statistics.
pub fn match_bounded_with_stats<O: DistanceOracle + ?Sized>(
    pattern: &Pattern,
    graph: &DataGraph,
    oracle: &O,
) -> (MatchRelation, AffStats) {
    let np = pattern.node_count();
    let mut stats = AffStats::default();

    // Line 5-6 of Fig. 3: mat(u) = candidates with the out-degree check.
    let mut mat: Vec<FastHashSet<NodeId>> = candidates(pattern, graph)
        .into_iter()
        .enumerate()
        .map(|(u_idx, list)| {
            let u = PatternNodeId::from_index(u_idx);
            list.into_iter()
                .filter(|&v| pattern.out_degree(u) == 0 || graph.out_degree(v) > 0)
                .collect()
        })
        .collect();
    if mat.iter().any(FastHashSet::is_empty) {
        return (MatchRelation::empty(np), stats);
    }

    // For each pattern edge e = (u, u') and each v ∈ mat(u):
    //   support[e][v]     = |{v' ∈ mat(u') : bound satisfied}|   (matrix X' of Fig. 3)
    //   supporters[e][v'] = {v ∈ mat(u) whose support includes v'}
    let edge_count = pattern.edge_count();
    let mut support: Vec<FastHashMap<NodeId, u32>> = vec![FastHashMap::default(); edge_count];
    let mut supporters: Vec<FastHashMap<NodeId, Vec<NodeId>>> =
        vec![FastHashMap::default(); edge_count];
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();

    for (e_idx, edge) in pattern.edges().iter().enumerate() {
        let sources: Vec<NodeId> = mat[edge.from.index()].iter().copied().collect();
        let targets: Vec<NodeId> = mat[edge.to.index()].iter().copied().collect();
        for &v in &sources {
            let mut count = 0u32;
            for &w in &targets {
                if satisfies_bound(graph, oracle, v, w, edge.bound) {
                    count += 1;
                    supporters[e_idx].entry(w).or_default().push(v);
                }
            }
            support[e_idx].insert(v, count);
            if count == 0 {
                worklist.push((edge.from, v));
            }
        }
    }

    // Refinement loop (lines 8-17 of Fig. 3).
    while let Some((u, v)) = worklist.pop() {
        if !mat[u.index()].remove(&v) {
            continue;
        }
        stats.nodes_visited += 1;
        stats.aux_changes += 1;
        if mat[u.index()].is_empty() {
            return (MatchRelation::empty(np), stats);
        }
        // v no longer matches u: every candidate that relied on v as a witness
        // for a pattern edge (u'', u) loses one unit of support.
        for (e_idx, edge) in pattern.edges().iter().enumerate() {
            if edge.to != u {
                continue;
            }
            if let Some(list) = supporters[e_idx].get(&v) {
                for &p in list {
                    if !mat[edge.from.index()].contains(&p) {
                        continue;
                    }
                    let counter = support[e_idx].get_mut(&p).expect("support initialised");
                    *counter -= 1;
                    if *counter == 0 {
                        worklist.push((edge.from, p));
                    }
                }
            }
        }
    }

    let relation = MatchRelation::from_lists(mat.into_iter().map(|set| set.into_iter().collect()));
    (relation, stats)
}

/// `Matrix+Match`: builds an all-pairs distance matrix and runs `Match` on it
/// (the configuration of Fig. 3 line 1 / Fig. 17 "Matrix+Match").
pub fn match_bounded_with_matrix(pattern: &Pattern, graph: &DataGraph) -> MatchRelation {
    let matrix = DistanceMatrix::build(graph);
    match_bounded(pattern, graph, &matrix)
}

/// `BFS+Match`: answers distance queries with bounded breadth-first searches,
/// the variant that scales to graphs too large for a matrix (Fig. 17(c,d)).
pub fn match_bounded_with_bfs(pattern: &Pattern, graph: &DataGraph) -> MatchRelation {
    let oracle = BfsOracle::with_cache(graph, 4096);
    match_bounded(pattern, graph, &oracle)
}

/// `2-hop+Match`: answers distance queries with a 2-hop label cover
/// (Fig. 17(a,b) "2-hop+Match").
pub fn match_bounded_with_two_hop(pattern: &Pattern, graph: &DataGraph) -> MatchRelation {
    let labels = TwoHopLabels::build(graph);
    match_bounded(pattern, graph, &labels)
}

/// Builds the result graph `G_r` of a bounded-simulation match: one edge
/// `(v, v')` per pattern edge `(u, u')` whose bound is satisfied by a nonempty
/// path from `v ∈ match(u)` to `v' ∈ match(u')` (Section 4, "Result graphs").
pub fn build_result_graph<O: DistanceOracle + ?Sized>(
    pattern: &Pattern,
    graph: &DataGraph,
    oracle: &O,
    matches: &MatchRelation,
) -> ResultGraph {
    let mut result = ResultGraph::new();
    for (_, v) in matches.pairs() {
        result.add_node(v);
    }
    for (e_idx, edge) in pattern.edges().iter().enumerate() {
        for &v in matches.matches(edge.from) {
            for &w in matches.matches(edge.to) {
                if satisfies_bound(graph, oracle, v, w, edge.bound) {
                    result.add_edge(v, w, e_idx as u32);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::match_simulation;
    use igpm_distance::{LandmarkIndex, LandmarkSelection};
    use igpm_graph::{Attributes, CompareOp, EdgeBound, Predicate};

    /// The drug-trafficking pattern P0 and ring G0 of Fig. 1 / Example 2.2.
    ///
    /// Returns `(pattern, graph, ams, workers)` where `ams = [A1, A2, A3]`
    /// (A3 doubles as the secretary) and `workers` are the field workers.
    fn drug_ring() -> (Pattern, DataGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut p = Pattern::new();
        let b = p.add_node(Predicate::any().and_eq("role", "B"));
        let am = p.add_node(Predicate::any().and_eq("am", true));
        let s = p.add_node(Predicate::any().and_eq("s", true));
        let fw = p.add_node(Predicate::any().and_eq("role", "W"));
        p.add_edge(b, am, EdgeBound::ONE);
        p.add_edge(am, b, EdgeBound::ONE);
        p.add_edge(b, s, EdgeBound::ONE);
        p.add_edge(s, fw, EdgeBound::Hops(1));
        p.add_edge(am, fw, EdgeBound::Hops(3));
        p.add_edge(fw, am, EdgeBound::Hops(3));

        let mut g = DataGraph::new();
        let boss = g.add_node(Attributes::new().with("role", "B"));
        let a1 = g.add_node(Attributes::new().with("role", "AM").with("am", true));
        let a2 = g.add_node(Attributes::new().with("role", "AM").with("am", true));
        let a3 = g.add_node(Attributes::new().with("role", "AM").with("am", true).with("s", true));
        let w: Vec<NodeId> = (0..6)
            .map(|i| g.add_node(Attributes::new().with("role", "W").with("idx", i as i64)))
            .collect();
        for &a in &[a1, a2, a3] {
            g.add_edge(boss, a);
            g.add_edge(a, boss);
        }
        // A1 supervises a 3-level chain w0 -> w1 -> w2 reporting back to A1.
        g.add_edge(a1, w[0]);
        g.add_edge(w[0], w[1]);
        g.add_edge(w[1], w[2]);
        g.add_edge(w[2], a1);
        // A2 supervises a 2-level chain.
        g.add_edge(a2, w[3]);
        g.add_edge(w[3], w[4]);
        g.add_edge(w[4], a2);
        // A3 (also the secretary) supervises a single top-level worker.
        g.add_edge(a3, w[5]);
        g.add_edge(w[5], a3);
        (p, g, vec![a1, a2, a3], w)
    }

    #[test]
    fn example_1_1_drug_ring_is_found_by_bounded_simulation() {
        let (p, g, ams, workers) = drug_ring();
        let matrix = DistanceMatrix::build(&g);
        let m = match_bounded(&p, &g, &matrix);
        assert!(m.is_total());
        assert_eq!(m.matches(PatternNodeId(0)), &[NodeId(0)], "only the boss matches B");
        assert_eq!(m.matches(PatternNodeId(1)), ams.as_slice(), "all assistant managers match AM");
        assert_eq!(
            m.matches(PatternNodeId(2)),
            &[ams[2]],
            "the AM doubling as secretary matches S"
        );
        assert_eq!(
            m.matches(PatternNodeId(3)),
            workers.as_slice(),
            "every field worker matches FW"
        );
    }

    #[test]
    fn drug_ring_is_missed_by_plain_simulation() {
        // Example 1.1(3): the AM -> FW supervision spans up to 3 hops, so the
        // edge-to-edge semantics of graph simulation cannot identify the whole
        // ring: deep field workers and their managers are lost.
        let (p, g, ams, workers) = drug_ring();
        let normal = p.as_normal();
        let m = match_simulation(&normal, &g);
        assert!(!m.contains(PatternNodeId(1), ams[0]), "A1 only reaches its workers via paths");
        assert!(
            !m.contains(PatternNodeId(3), workers[0]),
            "third-level workers are invisible to simulation"
        );
        // Bounded simulation captures both (checked in the companion test);
        // plain simulation finds strictly fewer pairs.
        let bounded = match_bounded_with_matrix(&p, &g);
        assert!(m.pair_count() < bounded.pair_count());
    }

    #[test]
    fn bounds_are_enforced_hop_by_hop() {
        // a -> x1 -> x2 -> b: pattern edge (A, B) with bound 2 fails, bound 3 matches.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("A");
        let x1 = g.add_labeled_node("X");
        let x2 = g.add_labeled_node("X");
        let b = g.add_labeled_node("B");
        g.add_edge(a, x1);
        g.add_edge(x1, x2);
        g.add_edge(x2, b);

        for (bound, expect_match) in [(2u32, false), (3u32, true)] {
            let mut p = Pattern::new();
            let pa = p.add_labeled_node("A");
            let pb = p.add_labeled_node("B");
            p.add_edge(pa, pb, EdgeBound::Hops(bound));
            let m = match_bounded_with_matrix(&p, &g);
            assert_eq!(m.is_total(), expect_match, "bound {bound}");
        }
    }

    #[test]
    fn unbounded_edges_use_reachability() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("A");
        let mid: Vec<NodeId> = (0..10).map(|_| g.add_labeled_node("X")).collect();
        let b = g.add_labeled_node("B");
        let c = g.add_labeled_node("B"); // unreachable B
        g.add_edge(a, mid[0]);
        for w in mid.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(*mid.last().unwrap(), b);
        let _ = c;

        let mut p = Pattern::new();
        let pa = p.add_labeled_node("A");
        let pb = p.add_labeled_node("B");
        p.add_edge(pa, pb, EdgeBound::Unbounded);
        let m = match_bounded_with_matrix(&p, &g);
        assert!(m.is_total());
        // Both B nodes match the childless pattern node B, but only the A node
        // with an (unbounded) path to a B matches A.
        assert_eq!(m.matches(pb), &[b, c]);
        assert_eq!(m.matches(pa), &[a]);
    }

    #[test]
    fn agrees_with_simulation_on_normal_patterns() {
        let mut g = DataGraph::new();
        let labels = ["CTO", "DB", "Bio", "DB", "CTO", "Bio", "Med"];
        let nodes: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
        for (a, b) in [(0, 1), (1, 0), (1, 2), (0, 2), (3, 5), (4, 3), (3, 4), (6, 5), (4, 6)] {
            g.add_edge(nodes[a], nodes[b]);
        }
        let mut p = Pattern::new();
        let cto = p.add_labeled_node("CTO");
        let db = p.add_labeled_node("DB");
        let bio = p.add_labeled_node("Bio");
        p.add_normal_edge(cto, db);
        p.add_normal_edge(db, cto);
        p.add_normal_edge(db, bio);

        let sim = match_simulation(&p, &g);
        let bsim = match_bounded_with_matrix(&p, &g);
        assert_eq!(sim, bsim, "bounded simulation degenerates to simulation on normal patterns");
    }

    #[test]
    fn all_oracles_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..4 {
            let n = 40;
            let mut g = DataGraph::new();
            for i in 0..n {
                let label = format!("l{}", i % 5);
                g.add_node(Attributes::labeled(label).with("w", (i * 13 % 97) as i64));
            }
            for _ in 0..n * 3 {
                let a = NodeId(rng.gen_range(0..n) as u32);
                let b = NodeId(rng.gen_range(0..n) as u32);
                if a != b {
                    g.add_edge(a, b);
                }
            }
            let mut p = Pattern::new();
            let u0 = p.add_node(Predicate::label("l0"));
            let u1 = p.add_node(Predicate::label("l1"));
            let u2 = p.add_node(Predicate::any().and("w", CompareOp::Ge, 10));
            p.add_edge(u0, u1, EdgeBound::Hops(2));
            p.add_edge(u1, u2, EdgeBound::Hops(3));
            p.add_edge(u2, u0, EdgeBound::Unbounded);

            let via_matrix = match_bounded_with_matrix(&p, &g);
            let via_bfs = match_bounded_with_bfs(&p, &g);
            let via_two_hop = match_bounded_with_two_hop(&p, &g);
            let landmarks = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
            let via_landmarks = match_bounded(&p, &g, &landmarks);
            assert_eq!(via_matrix, via_bfs, "case {case}: BFS disagrees");
            assert_eq!(via_matrix, via_two_hop, "case {case}: 2-hop disagrees");
            assert_eq!(via_matrix, via_landmarks, "case {case}: landmarks disagree");
        }
    }

    #[test]
    fn empty_when_predicates_select_nothing() {
        let (_, g, _, _) = drug_ring();
        let mut p = Pattern::new();
        let a = p.add_node(Predicate::any().and_eq("role", "B"));
        let ghost = p.add_node(Predicate::any().and_eq("role", "Ghost"));
        p.add_edge(a, ghost, EdgeBound::Hops(2));
        assert!(match_bounded_with_matrix(&p, &g).is_empty());
    }

    #[test]
    fn out_degree_zero_candidates_are_pruned() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        let lonely = g.add_labeled_node("A"); // no outgoing edge
        g.add_edge(a, b);
        let _ = lonely;
        let mut p = Pattern::new();
        let pa = p.add_labeled_node("A");
        let pb = p.add_labeled_node("B");
        p.add_edge(pa, pb, EdgeBound::Hops(2));
        let m = match_bounded_with_matrix(&p, &g);
        assert_eq!(m.matches(pa), &[a]);
    }

    #[test]
    fn cyclic_pattern_over_cyclic_graph() {
        // Pattern u <->(2) w over a 4-cycle: every node participates.
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_labeled_node("a")).collect();
        for i in 0..4 {
            g.add_edge(nodes[i], nodes[(i + 1) % 4]);
        }
        let mut p = Pattern::new();
        let u = p.add_labeled_node("a");
        let w = p.add_labeled_node("a");
        p.add_edge(u, w, EdgeBound::Hops(2));
        p.add_edge(w, u, EdgeBound::Hops(2));
        let m = match_bounded_with_matrix(&p, &g);
        assert_eq!(m.matches(u).len(), 4);
        assert_eq!(m.matches(w).len(), 4);
    }

    #[test]
    fn worst_case_cycle_pattern_on_path_has_no_match() {
        // Remark after Theorem 3.1: a two-node cycle pattern against an
        // all-`a` path exercises the quadratic refinement and yields ∅.
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..12).map(|_| g.add_labeled_node("a")).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let mut p = Pattern::new();
        let u = p.add_labeled_node("a");
        let w = p.add_labeled_node("a");
        p.add_edge(u, w, EdgeBound::ONE);
        p.add_edge(w, u, EdgeBound::ONE);
        let (m, stats) = match_bounded_with_stats(&p, &g, &DistanceMatrix::build(&g));
        assert!(m.is_empty());
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn result_graph_reflects_edge_to_path_mappings() {
        let (p, g, ams, workers) = drug_ring();
        let matrix = DistanceMatrix::build(&g);
        let m = match_bounded(&p, &g, &matrix);
        let gr = build_result_graph(&p, &g, &matrix, &m);
        // A1 supervises w2 within 3 hops even though there is no direct edge.
        assert!(gr.has_edge(ams[0], workers[2]));
        // ... but not w4, which sits 4 hops away through the boss and A2.
        assert!(!gr.has_edge(ams[0], workers[4]));
        // The boss reaches its AMs in one hop.
        assert!(gr.has_edge(NodeId(0), ams[1]));
        assert_eq!(gr.node_count(), 1 + 3 + 6);
    }
}
