//! Asynchronous ingestion front-end with adaptive micro-batching.
//!
//! The engines and the [`MatchService`](crate::service::MatchService) apply
//! one batch at a time, synchronously, on the caller's thread. A live
//! deployment instead sees a *stream* of small submissions — often a single
//! edge — arriving from many producers at once, and the committed bench
//! artifact shows why feeding them to the engine one by one is wasteful: a
//! unit update pays the full per-batch fixed cost (validation, the `minDelta`
//! net-effect reduction set-up, shard planning), while a batched update
//! amortises it (`unit_update.counter_median_ns` vs
//! `batch.counter_median_ms / batch_size` in `BENCH_incsim.json`).
//!
//! [`Ingest`] closes that gap: a **bounded MPSC queue** in front of any
//! [`IngestSink`] — [`MatchService`](crate::service::MatchService),
//! [`DurableIndex`](crate::durable::DurableIndex) or
//! [`DurableMatchService`](crate::durable::DurableMatchService) — drained by
//! a dedicated loop that **micro-batches** queued submissions into one
//! coalesced engine batch per cycle.
//!
//! # Queue semantics
//!
//! * **Bounded, never silently dropping.** The queue admits at most
//!   [`IngestOptions::queue_capacity`] pending *updates* (not submissions).
//!   [`IngestHandle::try_submit`] reports a full queue as a typed
//!   [`SubmitError::Backpressure`] carrying the exact occupancy;
//!   [`IngestHandle::submit`] blocks until space frees up. A submission is
//!   either enqueued (the producer holds a [`Ticket`]) or refused — nothing
//!   in between.
//! * **FIFO.** Submissions are drained in arrival order; each producer's own
//!   submissions commit in its submission order.
//! * **Oneshot reply slots.** Every enqueued submission resolves exactly
//!   once: [`Ticket::wait`] returns the [`IngestApply`] of the coalesced
//!   batch the submission rode in, or the typed [`IngestError`] that befell
//!   it.
//! * **Shutdown flushes.** [`Ingest::shutdown`] (and `Drop`) refuses new
//!   submissions, drains everything already queued through the sink, then
//!   returns the sink. No accepted submission is abandoned.
//!
//! # Batching policy
//!
//! Each drain cycle takes whole submissions from the queue head up to an
//! adaptive cap of coalesced updates (always at least one submission, even
//! if it alone exceeds the cap). When the queue is near-empty a cycle ships
//! whatever is there immediately — small batches, lowest latency. The cap
//! reacts to backlog pressure after every cycle:
//!
//! * backlog ≥ [`IngestOptions::burst_backlog`] → the cap doubles, up to
//!   [`IngestOptions::max_batch`];
//! * backlog empty → the cap halves, down to [`IngestOptions::min_batch`].
//!
//! The defaults are seeded from the measured unit-vs-batch crossover of the
//! committed artifact ([`IngestOptions::from_artifact`] recomputes them from
//! a live `BENCH_incsim.json`): with a unit update costing `u` ns and a
//! batched update `c` ns, the per-batch fixed cost is `F ≈ u − c`, and a
//! coalesced batch of `n ≥ F / (0.05·c)` updates is within 5% of the batch
//! path's asymptotic per-update cost. The committed artifact (549 ns unit,
//! 395 ns/update at batch size 2000) puts that knee at **8 updates**, which
//! is the default [`IngestOptions::min_batch`]. This threshold controller is
//! the data-driven v1 of the reinforcement-learned adaptivity of Kanezashi
//! et al. (see `PAPERS.md`).
//!
//! # Submission semantics: strict and lenient
//!
//! The drainer validates every submission *individually*, in queue order,
//! against the sink's graph **plus every submission already accepted in the
//! same cycle** — exactly the state a synchronous caller applying the
//! submissions one by one would have validated against
//! ([`igpm_graph::update::validate_batch`] semantics, op by op).
//!
//! * A **strict** submission ([`IngestHandle::submit`] /
//!   [`IngestHandle::try_submit`]) with any invalid op is rejected whole:
//!   its ticket resolves to [`IngestError::Rejected`] with positions in the
//!   *submission's own* batch, and it contributes nothing to the coalesced
//!   batch — just as [`MatchService::apply`](crate::service::MatchService::apply)
//!   would have rejected it standalone.
//! * A **lenient** submission ([`IngestHandle::submit_lenient`] /
//!   [`IngestHandle::try_submit_lenient`]) has its invalid ops stripped and
//!   reported in [`IngestApply::rejected`] — again at original-submission
//!   positions — while the valid remainder is applied. This mirrors the
//!   engines' `apply_batch_lenient` contract, lifted through the coalescer:
//!   merging submissions never renumbers anyone's rejection positions.
//!
//! The coalesced batch is therefore valid by construction and the sink's own
//! strict validation never rejects it.
//!
//! # Equivalence contract
//!
//! For any interleaving of producers and any cap trajectory, the state after
//! draining equals the state after applying the accepted submissions
//! synchronously, one by one, in queue order — and the coalesced batches the
//! sink actually saw (recoverable from [`IngestApply::seq`] groupings) form
//! a partition of the accepted ops in order, so applying the same groupings
//! synchronously reproduces the *delta stream* of the durable tiers
//! bit-identically, for every shard count (`tests/ingest.rs`).
//!
//! # Failure model
//!
//! A sink **error** (a rejected batch cannot happen by construction, but a
//! poisoned index or a contained shared-stage panic can) fails every
//! submission of that cycle with a shared [`IngestError::Sink`]; the drainer
//! keeps running — a durable sink that turned
//! [`Poisoned`](igpm_graph::ApplyError::Poisoned) keeps failing submissions
//! with typed errors until the owner shuts the ingest down and
//! [`recover`](crate::durable::DurableMatchService::recover)s it. A sink
//! **panic** — the in-process crash model of the durability failpoints —
//! resolves the in-flight cycle's tickets with [`IngestError::SinkPanicked`],
//! fails everything still queued with [`IngestError::Closed`], and kills the
//! ingest: the sink is dropped where it stood, exactly as a `kill -9` would
//! leave it, and the durable directory reopens via the ordinary recovery
//! path (the WAL-aligned replay then re-publishes whatever the crash
//! swallowed, as always).

use crate::incremental::panic_message;
use igpm_graph::update::{RejectReason, UpdateRejection};
use igpm_graph::{BatchUpdate, DataGraph, FastHashMap, JsonValue, NodeId, Update};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Fraction of the asymptotic per-update batch cost the amortised fixed
/// cost may still contribute at the batching knee (see the module docs).
const KNEE_OVERHEAD_FRACTION: f64 = 0.05;

/// Tuning knobs of an [`Ingest`] front-end. All sizes count *updates*
/// (edge ops), not submissions. Out-of-range values are clamped at spawn
/// time: every size is at least 1 and `max_batch ≥ min_batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Maximum pending updates the queue admits before producers see
    /// [`SubmitError::Backpressure`] (default 8192). A single submission
    /// larger than the whole capacity is still admitted when the queue is
    /// empty, so oversized submissions cannot starve.
    pub queue_capacity: usize,
    /// Floor of the adaptive coalescing cap — the batch size the drainer
    /// relaxes to when the queue keeps running dry (default 8, the measured
    /// amortisation knee of the committed bench artifact; see the module
    /// docs and [`IngestOptions::from_artifact`]).
    pub min_batch: usize,
    /// Ceiling of the adaptive coalescing cap under sustained bursts
    /// (default 2048, the batch-sweep regime the committed artifact
    /// actually measured; the policy does not extrapolate beyond it).
    pub max_batch: usize,
    /// Backlog (pending updates left after a drain cycle took its fill) at
    /// which the cap doubles (default 16). An empty backlog halves it.
    pub burst_backlog: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { queue_capacity: 8192, min_batch: 8, max_batch: 2048, burst_backlog: 16 }
    }
}

impl IngestOptions {
    /// Re-derives the batching policy from a live `BENCH_incsim.json`
    /// report: `min_batch` becomes the measured amortisation knee
    /// `⌈F / (0.05·c)⌉` (where `c` is the asymptotic per-update batch cost
    /// and `F = unit − c` the per-batch fixed cost), `max_batch` the batch
    /// size the artifact actually measured, and `burst_backlog` twice the
    /// knee. Returns `None` when the report lacks the `unit_update`/`batch`
    /// sections or their numbers are degenerate.
    pub fn from_artifact(report: &JsonValue) -> Option<IngestOptions> {
        let unit_ns = report.get("unit_update")?.get("counter_median_ns")?.as_f64()?;
        let batch_ms = report.get("batch")?.get("counter_median_ms")?.as_f64()?;
        let batch_size = report.get("workload")?.get("batch_size")?.as_f64()?;
        if unit_ns <= 0.0 || batch_ms <= 0.0 || batch_size < 1.0 {
            return None;
        }
        let per_update_ns = batch_ms * 1.0e6 / batch_size;
        let max_batch = batch_size as usize;
        let min_batch = if unit_ns > per_update_ns {
            let fixed_ns = unit_ns - per_update_ns;
            let knee = (fixed_ns / (KNEE_OVERHEAD_FRACTION * per_update_ns)).ceil() as usize;
            knee.clamp(1, max_batch)
        } else {
            // No measured amortisation advantage: stay latency-optimal.
            1
        };
        Some(IngestOptions {
            min_batch,
            max_batch,
            burst_backlog: (min_batch * 2).max(2),
            ..IngestOptions::default()
        })
    }

    /// The options with every size clamped into its documented range.
    fn normalized(self) -> IngestOptions {
        let min_batch = self.min_batch.max(1);
        IngestOptions {
            queue_capacity: self.queue_capacity.max(1),
            min_batch,
            max_batch: self.max_batch.max(min_batch),
            burst_backlog: self.burst_backlog.max(1),
        }
    }
}

/// Why a submission was refused at the queue door (it was **not** enqueued
/// and no ticket exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity. Retry later, or use the blocking
    /// [`IngestHandle::submit`] which waits for space.
    Backpressure {
        /// Updates currently pending in the queue.
        pending_ops: usize,
        /// The queue's capacity ([`IngestOptions::queue_capacity`]).
        capacity: usize,
    },
    /// The ingest is shutting down (or its sink panicked); no further
    /// submissions are accepted.
    Closed,
    /// The submission carried no updates; an empty batch has no outcome to
    /// wait for and is refused up front.
    Empty,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { pending_ops, capacity } => {
                write!(f, "ingest queue full ({pending_ops}/{capacity} pending updates)")
            }
            SubmitError::Closed => write!(f, "ingest is closed"),
            SubmitError::Empty => write!(f, "empty submission"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *enqueued* submission failed, reported through its [`Ticket`].
#[derive(Debug)]
pub enum IngestError<E> {
    /// Strict submission: at least one op was invalid against the state the
    /// submission would have been applied to synchronously. Positions index
    /// the submission's own batch; nothing of it was applied.
    Rejected(Vec<UpdateRejection>),
    /// The sink failed the coalesced batch the submission rode in (e.g. a
    /// poisoned durable index, or a contained shared-stage panic). The
    /// error is shared by every submission of that cycle; the ingest keeps
    /// running.
    Sink(Arc<E>),
    /// The sink panicked mid-apply — the in-process crash model. The ingest
    /// is dead; durable sinks are reopened through their recovery path.
    SinkPanicked(String),
    /// The ingest closed (or died) before this submission reached the sink.
    Closed,
}

impl<E> Clone for IngestError<E> {
    fn clone(&self) -> Self {
        match self {
            IngestError::Rejected(rejections) => IngestError::Rejected(rejections.clone()),
            IngestError::Sink(error) => IngestError::Sink(Arc::clone(error)),
            IngestError::SinkPanicked(message) => IngestError::SinkPanicked(message.clone()),
            IngestError::Closed => IngestError::Closed,
        }
    }
}

impl<E: fmt::Display> fmt::Display for IngestError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Rejected(rejections) => {
                write!(f, "submission rejected ({} invalid updates)", rejections.len())
            }
            IngestError::Sink(error) => write!(f, "sink failed the batch: {error}"),
            IngestError::SinkPanicked(message) => write!(f, "sink panicked: {message}"),
            IngestError::Closed => write!(f, "ingest closed before the submission was applied"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for IngestError<E> {}

/// What a resolved submission learned: which coalesced batch it rode in and
/// the sink's outcome for that batch.
#[derive(Debug, Clone)]
pub struct IngestApply<O> {
    /// The sink's committed sequence number after the batch: the WAL
    /// sequence for the durable sinks, the epoch for a plain
    /// [`MatchService`](crate::service::MatchService). Submissions sharing
    /// a `seq` were coalesced into the same sink batch.
    pub seq: u64,
    /// The sink's outcome for the whole coalesced batch, shared by every
    /// submission that rode in it. `None` only in the degenerate cycle
    /// where every accepted submission was lenient and fully stripped —
    /// nothing reached the sink.
    pub outcome: Option<Arc<O>>,
    /// Offset of this submission's first applied op within the coalesced
    /// batch.
    pub offset: usize,
    /// How many of this submission's ops were applied (its length minus the
    /// stripped ops of a lenient submission).
    pub applied_ops: usize,
    /// Total size of the coalesced batch.
    pub coalesced_ops: usize,
    /// Lenient submissions: the stripped ops, at positions in the
    /// submission's own batch (never renumbered by coalescing). Always
    /// empty for strict submissions — they fail whole instead.
    pub rejected: Vec<UpdateRejection>,
}

/// A hand-rolled oneshot: the drainer puts exactly once, the producer takes
/// exactly once.
struct OneShot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> OneShot<T> {
    fn new() -> Self {
        OneShot { value: Mutex::new(None), ready: Condvar::new() }
    }

    fn put(&self, value: T) {
        let mut slot = self.value.lock().expect("ingest reply lock");
        debug_assert!(slot.is_none(), "ingest reply slot resolved twice");
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
    }

    fn take_blocking(&self) -> T {
        let mut slot = self.value.lock().expect("ingest reply lock");
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = self.ready.wait(slot).expect("ingest reply lock");
        }
    }

    fn is_ready(&self) -> bool {
        self.value.lock().expect("ingest reply lock").is_some()
    }
}

/// The reply slot of one enqueued submission. [`Ticket::wait`] blocks until
/// a drain cycle resolves the submission — in manual mode that means until
/// [`Ingest::drain_once`] (or shutdown) runs on some thread.
pub struct Ticket<O, E> {
    slot: Arc<OneShot<Result<IngestApply<O>, IngestError<E>>>>,
}

impl<O, E> Ticket<O, E> {
    /// Blocks until the submission resolved and returns its result.
    pub fn wait(self) -> Result<IngestApply<O>, IngestError<E>> {
        self.slot.take_blocking()
    }

    /// True once [`Ticket::wait`] would return without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

impl<O, E> fmt::Debug for Ticket<O, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").field("ready", &self.is_ready()).finish()
    }
}

/// One queued submission.
struct SubmissionEntry<O, E> {
    batch: BatchUpdate,
    lenient: bool,
    slot: Arc<OneShot<Result<IngestApply<O>, IngestError<E>>>>,
}

/// Queue state behind the mutex.
struct QueueState<O, E> {
    queue: VecDeque<SubmissionEntry<O, E>>,
    pending_ops: usize,
    /// Shutdown requested: no new submissions; the drainer flushes what is
    /// queued and exits.
    closing: bool,
    /// The drainer died (sink panic): submissions fail immediately.
    dead: bool,
}

/// Monotonic observability counters (all `Relaxed`; they order nothing).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    submitted_ops: AtomicU64,
    committed_batches: AtomicU64,
    committed_ops: AtomicU64,
    rejected_submissions: AtomicU64,
    backpressure_events: AtomicU64,
    max_coalesced: AtomicU64,
    current_cap: AtomicU64,
}

/// Everything producers and the drainer share.
struct Shared<O, E> {
    state: Mutex<QueueState<O, E>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    counters: Counters,
}

impl<O, E> Shared<O, E> {
    fn new(capacity: usize) -> Self {
        Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                pending_ops: 0,
                closing: false,
                dead: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            counters: Counters::default(),
        }
    }

    /// Marks the ingest dead and fails everything still queued with
    /// [`IngestError::Closed`].
    fn fail_all_queued(&self) {
        let drained = {
            let mut state = self.state.lock().expect("ingest queue lock");
            state.dead = true;
            state.pending_ops = 0;
            std::mem::take(&mut state.queue)
        };
        for entry in drained {
            entry.slot.put(Err(IngestError::Closed));
        }
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("ingest queue lock").closing = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A snapshot of the ingest counters ([`Ingest::stats`] /
/// [`IngestHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Updates accepted into the queue.
    pub submitted_ops: u64,
    /// Coalesced batches the sink committed.
    pub committed_batches: u64,
    /// Updates the sink committed (across all coalesced batches).
    pub committed_ops: u64,
    /// Strict submissions rejected by per-submission validation.
    pub rejected_submissions: u64,
    /// Times a producer hit a full queue (one per [`SubmitError::
    /// Backpressure`] returned and one per blocking [`IngestHandle::submit`]
    /// that had to wait).
    pub backpressure_events: u64,
    /// Largest coalesced batch committed so far.
    pub max_coalesced: u64,
    /// The drainer's current adaptive cap (updates per cycle).
    pub current_cap: u64,
}

/// The matching back-ends an [`Ingest`] can feed. Implemented by
/// [`MatchService`](crate::service::MatchService) (outcome
/// [`ServiceApply`](crate::service::ServiceApply), seq = epoch),
/// [`DurableIndex`](crate::durable::DurableIndex) and
/// [`DurableMatchService`](crate::durable::DurableMatchService) (seq = WAL
/// sequence; WAL append, auto-checkpointing, publication and the poison
/// discipline all run inside `apply_batch` exactly as in the synchronous
/// path).
pub trait IngestSink {
    /// What a committed batch reports.
    type Outcome: Send + Sync + 'static;
    /// How a failed batch errors.
    type Error: fmt::Debug + fmt::Display + Send + Sync + 'static;

    /// Applies one (already validated) coalesced batch.
    fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<Self::Outcome, Self::Error>;

    /// The current data graph submissions are validated against.
    fn sink_graph(&self) -> &DataGraph;

    /// The sink's committed sequence number (WAL sequence or epoch); stamps
    /// [`IngestApply::seq`].
    fn committed_seq(&self) -> u64;
}

/// The cloneable producer side of an [`Ingest`]: submit batches, observe
/// stats. Handles stay valid after the `Ingest` shuts down — submissions
/// then fail with [`SubmitError::Closed`].
pub struct IngestHandle<O, E> {
    shared: Arc<Shared<O, E>>,
}

impl<O, E> Clone for IngestHandle<O, E> {
    fn clone(&self) -> Self {
        IngestHandle { shared: Arc::clone(&self.shared) }
    }
}

impl<O, E> IngestHandle<O, E> {
    /// Enqueues a strict submission, blocking while the queue is full.
    pub fn submit(&self, batch: BatchUpdate) -> Result<Ticket<O, E>, SubmitError> {
        self.submit_inner(batch, false, true)
    }

    /// Enqueues a strict submission, or reports
    /// [`SubmitError::Backpressure`] instead of blocking.
    pub fn try_submit(&self, batch: BatchUpdate) -> Result<Ticket<O, E>, SubmitError> {
        self.submit_inner(batch, false, false)
    }

    /// Enqueues a lenient submission (invalid ops stripped and reported,
    /// the remainder applied), blocking while the queue is full.
    pub fn submit_lenient(&self, batch: BatchUpdate) -> Result<Ticket<O, E>, SubmitError> {
        self.submit_inner(batch, true, true)
    }

    /// Enqueues a lenient submission, or reports
    /// [`SubmitError::Backpressure`] instead of blocking.
    pub fn try_submit_lenient(&self, batch: BatchUpdate) -> Result<Ticket<O, E>, SubmitError> {
        self.submit_inner(batch, true, false)
    }

    fn submit_inner(
        &self,
        batch: BatchUpdate,
        lenient: bool,
        block: bool,
    ) -> Result<Ticket<O, E>, SubmitError> {
        if batch.is_empty() {
            return Err(SubmitError::Empty);
        }
        let ops = batch.len();
        let counters = &self.shared.counters;
        let mut counted_backpressure = false;
        let mut state = self.shared.state.lock().expect("ingest queue lock");
        loop {
            if state.closing || state.dead {
                return Err(SubmitError::Closed);
            }
            // An oversized submission is admitted once the queue is empty,
            // so capacity can never starve it.
            if state.queue.is_empty() || state.pending_ops + ops <= self.shared.capacity {
                break;
            }
            if !counted_backpressure {
                counters.backpressure_events.fetch_add(1, Ordering::Relaxed);
                counted_backpressure = true;
            }
            if !block {
                return Err(SubmitError::Backpressure {
                    pending_ops: state.pending_ops,
                    capacity: self.shared.capacity,
                });
            }
            state = self.shared.not_full.wait(state).expect("ingest queue lock");
        }
        let slot = Arc::new(OneShot::new());
        state.queue.push_back(SubmissionEntry { batch, lenient, slot: Arc::clone(&slot) });
        state.pending_ops += ops;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        counters.submitted_ops.fetch_add(ops as u64, Ordering::Relaxed);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Updates currently pending in the queue.
    pub fn pending_ops(&self) -> usize {
        self.shared.state.lock().expect("ingest queue lock").pending_ops
    }

    /// True once the ingest refuses new submissions (shut down or dead).
    pub fn is_closed(&self) -> bool {
        let state = self.shared.state.lock().expect("ingest queue lock");
        state.closing || state.dead
    }

    /// A snapshot of the observability counters.
    pub fn stats(&self) -> IngestStats {
        let counters = &self.shared.counters;
        IngestStats {
            submitted: counters.submitted.load(Ordering::Relaxed),
            submitted_ops: counters.submitted_ops.load(Ordering::Relaxed),
            committed_batches: counters.committed_batches.load(Ordering::Relaxed),
            committed_ops: counters.committed_ops.load(Ordering::Relaxed),
            rejected_submissions: counters.rejected_submissions.load(Ordering::Relaxed),
            backpressure_events: counters.backpressure_events.load(Ordering::Relaxed),
            max_coalesced: counters.max_coalesced.load(Ordering::Relaxed),
            current_cap: counters.current_cap.load(Ordering::Relaxed),
        }
    }
}

/// One accepted submission of a drain cycle, waiting for the sink outcome.
struct Accepted<O, E> {
    slot: Arc<OneShot<Result<IngestApply<O>, IngestError<E>>>>,
    offset: usize,
    applied_ops: usize,
    rejected: Vec<UpdateRejection>,
}

/// The consumer side: owns the sink and the adaptive cap.
struct Drainer<S: IngestSink> {
    shared: Arc<Shared<S::Outcome, S::Error>>,
    /// `None` after a sink panic — the ingest is dead.
    sink: Option<S>,
    opts: IngestOptions,
    cap: usize,
    /// Pending updates left behind by the last take — the backlog signal
    /// the cap adapts on.
    last_backlog: usize,
}

impl<S: IngestSink> Drainer<S> {
    fn new(shared: Arc<Shared<S::Outcome, S::Error>>, sink: S, opts: IngestOptions) -> Self {
        let cap = opts.min_batch;
        shared.counters.current_cap.store(cap as u64, Ordering::Relaxed);
        Drainer { shared, sink: Some(sink), opts, cap, last_backlog: 0 }
    }

    /// The dedicated drainer loop (threaded mode): drain until closed, then
    /// return the sink (`None` when it panicked away).
    fn run(mut self) -> Option<S> {
        loop {
            match self.take(true) {
                Some(taken) => {
                    if !self.process(taken) {
                        return None;
                    }
                }
                None => return self.sink.take(),
            }
        }
    }

    /// Takes whole submissions from the queue head up to the adaptive cap —
    /// always at least one. Blocks for work when `block` (returning `None`
    /// only once closing and empty); otherwise returns `None` on an empty
    /// queue.
    fn take(&mut self, block: bool) -> Option<Vec<SubmissionEntry<S::Outcome, S::Error>>> {
        let mut state = self.shared.state.lock().expect("ingest queue lock");
        if block {
            while state.queue.is_empty() && !state.closing {
                state = self.shared.not_empty.wait(state).expect("ingest queue lock");
            }
        }
        state.queue.front()?;
        let mut taken = Vec::new();
        let mut ops = 0usize;
        while let Some(front) = state.queue.front() {
            let len = front.batch.len();
            if !taken.is_empty() && ops + len > self.cap {
                break;
            }
            ops += len;
            taken.push(state.queue.pop_front().expect("front was just checked"));
        }
        state.pending_ops -= ops;
        self.last_backlog = state.pending_ops;
        drop(state);
        self.shared.not_full.notify_all();
        Some(taken)
    }

    /// One full drain cycle over `taken`: per-submission validation,
    /// coalescing, one sink apply, ticket resolution, cap adaptation.
    /// Returns `false` when the sink panicked and the ingest died.
    fn process(&mut self, taken: Vec<SubmissionEntry<S::Outcome, S::Error>>) -> bool {
        let counters = &self.shared.counters;
        let mut merged = BatchUpdate::new();
        let mut accepted: Vec<Accepted<S::Outcome, S::Error>> = Vec::new();
        {
            let sink = self.sink.as_ref().expect("process ran on a dead drainer");
            let graph = sink.sink_graph();
            let nv = graph.node_count();
            // The evolving presence of everything accepted this cycle; the
            // per-submission `local` overlay commits into it only when the
            // submission is accepted — a rejected strict submission leaves
            // no trace, exactly like its synchronous rejection.
            let mut presence: FastHashMap<(NodeId, NodeId), bool> = FastHashMap::default();
            for entry in taken {
                let mut local: FastHashMap<(NodeId, NodeId), bool> = FastHashMap::default();
                let mut rejected: Vec<UpdateRejection> = Vec::new();
                let mut kept: Vec<Update> = Vec::new();
                for (position, &update) in entry.batch.iter().enumerate() {
                    let (from, to) = update.endpoints();
                    if from.index() >= nv || to.index() >= nv {
                        let reason = RejectReason::NodeOutOfRange;
                        rejected.push(UpdateRejection { position, update, reason });
                        continue;
                    }
                    let current = local
                        .get(&(from, to))
                        .or_else(|| presence.get(&(from, to)))
                        .copied()
                        .unwrap_or_else(|| graph.has_edge(from, to));
                    if update.is_insert() && current {
                        let reason = RejectReason::DuplicateInsert;
                        rejected.push(UpdateRejection { position, update, reason });
                    } else if update.is_delete() && !current {
                        let reason = RejectReason::AbsentDelete;
                        rejected.push(UpdateRejection { position, update, reason });
                    } else {
                        local.insert((from, to), update.is_insert());
                        kept.push(update);
                    }
                }
                if !entry.lenient && !rejected.is_empty() {
                    counters.rejected_submissions.fetch_add(1, Ordering::Relaxed);
                    entry.slot.put(Err(IngestError::Rejected(rejected)));
                    continue;
                }
                presence.extend(local);
                let offset = merged.len();
                for &update in &kept {
                    merged.push(update);
                }
                let applied_ops = kept.len();
                accepted.push(Accepted { slot: entry.slot, offset, applied_ops, rejected });
            }
        }
        if accepted.is_empty() {
            self.adapt();
            return true;
        }
        let coalesced_ops = merged.len();
        if coalesced_ops == 0 {
            // Every accepted submission was lenient and fully stripped:
            // nothing reaches the sink, the state is untouched.
            let seq = self.sink.as_ref().expect("sink is alive").committed_seq();
            for acc in accepted {
                acc.slot.put(Ok(IngestApply {
                    seq,
                    outcome: None,
                    offset: 0,
                    applied_ops: 0,
                    coalesced_ops: 0,
                    rejected: acc.rejected,
                }));
            }
            self.adapt();
            return true;
        }
        let sink = self.sink.as_mut().expect("sink is alive");
        match catch_unwind(AssertUnwindSafe(|| sink.apply_batch(&merged))) {
            Ok(Ok(outcome)) => {
                let seq = sink.committed_seq();
                let outcome = Arc::new(outcome);
                counters.committed_batches.fetch_add(1, Ordering::Relaxed);
                counters.committed_ops.fetch_add(coalesced_ops as u64, Ordering::Relaxed);
                counters.max_coalesced.fetch_max(coalesced_ops as u64, Ordering::Relaxed);
                for acc in accepted {
                    acc.slot.put(Ok(IngestApply {
                        seq,
                        outcome: Some(Arc::clone(&outcome)),
                        offset: acc.offset,
                        applied_ops: acc.applied_ops,
                        coalesced_ops,
                        rejected: acc.rejected,
                    }));
                }
                self.adapt();
                true
            }
            Ok(Err(error)) => {
                let error = Arc::new(error);
                for acc in accepted {
                    acc.slot.put(Err(IngestError::Sink(Arc::clone(&error))));
                }
                self.adapt();
                true
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                // The crash model: the sink is dropped where it stood (a
                // durable sink's directory reopens through recovery), the
                // in-flight cycle learns what happened, the rest is closed.
                self.sink = None;
                for acc in accepted {
                    acc.slot.put(Err(IngestError::SinkPanicked(message.clone())));
                }
                self.shared.fail_all_queued();
                false
            }
        }
    }

    /// Adapts the coalescing cap to the backlog the last take left behind.
    fn adapt(&mut self) {
        if self.last_backlog >= self.opts.burst_backlog {
            self.cap = self.cap.saturating_mul(2).min(self.opts.max_batch);
        } else if self.last_backlog == 0 {
            self.cap = (self.cap / 2).max(self.opts.min_batch);
        }
        self.shared.counters.current_cap.store(self.cap as u64, Ordering::Relaxed);
    }
}

enum Mode<S: IngestSink> {
    Threaded(JoinHandle<Option<S>>),
    Manual(Drainer<S>),
    Done,
}

/// The ingestion front-end: a bounded MPSC queue plus the drainer that
/// micro-batches it into an [`IngestSink`]. See the [module docs](self) for
/// the semantics.
///
/// Two modes:
/// * [`Ingest::spawn`] runs the drainer on a dedicated thread — the
///   production mode;
/// * [`Ingest::new_manual`] runs it nowhere until [`Ingest::drain_once`] is
///   called — every coalescing decision becomes deterministic, which is
///   what the conformance tests and the equivalence contract build on.
pub struct Ingest<S: IngestSink> {
    shared: Arc<Shared<S::Outcome, S::Error>>,
    mode: Mode<S>,
}

impl<S: IngestSink> Ingest<S> {
    /// Starts a threaded ingest over `sink`.
    pub fn spawn(sink: S, opts: IngestOptions) -> Ingest<S>
    where
        S: Send + 'static,
    {
        let opts = opts.normalized();
        let shared = Arc::new(Shared::new(opts.queue_capacity));
        let drainer = Drainer::new(Arc::clone(&shared), sink, opts);
        let handle = std::thread::Builder::new()
            .name("igpm-ingest".into())
            .spawn(move || drainer.run())
            .expect("spawn the ingest drainer thread");
        Ingest { shared, mode: Mode::Threaded(handle) }
    }

    /// Builds a manual-drain ingest over `sink`: submissions queue up until
    /// [`Ingest::drain_once`] runs a cycle on the calling thread.
    pub fn new_manual(sink: S, opts: IngestOptions) -> Ingest<S> {
        let opts = opts.normalized();
        let shared = Arc::new(Shared::new(opts.queue_capacity));
        let drainer = Drainer::new(Arc::clone(&shared), sink, opts);
        Ingest { shared, mode: Mode::Manual(drainer) }
    }

    /// A cloneable producer handle.
    pub fn handle(&self) -> IngestHandle<S::Outcome, S::Error> {
        IngestHandle { shared: Arc::clone(&self.shared) }
    }

    /// [`IngestHandle::submit`] without cloning a handle.
    pub fn submit(&self, batch: BatchUpdate) -> Result<Ticket<S::Outcome, S::Error>, SubmitError> {
        self.handle().submit(batch)
    }

    /// [`IngestHandle::try_submit`] without cloning a handle.
    pub fn try_submit(
        &self,
        batch: BatchUpdate,
    ) -> Result<Ticket<S::Outcome, S::Error>, SubmitError> {
        self.handle().try_submit(batch)
    }

    /// [`IngestHandle::submit_lenient`] without cloning a handle.
    pub fn submit_lenient(
        &self,
        batch: BatchUpdate,
    ) -> Result<Ticket<S::Outcome, S::Error>, SubmitError> {
        self.handle().submit_lenient(batch)
    }

    /// [`IngestHandle::try_submit_lenient`] without cloning a handle.
    pub fn try_submit_lenient(
        &self,
        batch: BatchUpdate,
    ) -> Result<Ticket<S::Outcome, S::Error>, SubmitError> {
        self.handle().try_submit_lenient(batch)
    }

    /// A snapshot of the observability counters.
    pub fn stats(&self) -> IngestStats {
        self.handle().stats()
    }

    /// Manual mode only: runs one drain cycle on the calling thread and
    /// returns how many submissions it processed (0 when the queue was
    /// empty or the sink already panicked away).
    ///
    /// # Panics
    /// On a threaded ingest — the dedicated drainer owns its cycles.
    pub fn drain_once(&mut self) -> usize {
        let drainer = match &mut self.mode {
            Mode::Manual(drainer) => drainer,
            Mode::Threaded(_) => panic!("drain_once on a threaded ingest"),
            Mode::Done => return 0,
        };
        if drainer.sink.is_none() {
            return 0;
        }
        match drainer.take(false) {
            Some(taken) => {
                let count = taken.len();
                drainer.process(taken);
                count
            }
            None => 0,
        }
    }

    /// Shuts the ingest down: refuses new submissions, flushes everything
    /// queued through the sink, and returns the sink — `None` when it
    /// panicked away (reopen durable sinks through their recovery path).
    pub fn shutdown(mut self) -> Option<S> {
        self.shared.close();
        match std::mem::replace(&mut self.mode, Mode::Done) {
            Mode::Threaded(handle) => handle.join().unwrap_or(None),
            Mode::Manual(mut drainer) => {
                while drainer.sink.is_some() {
                    match drainer.take(false) {
                        Some(taken) => {
                            drainer.process(taken);
                        }
                        None => break,
                    }
                }
                self.shared.fail_all_queued();
                drainer.sink.take()
            }
            Mode::Done => None,
        }
    }
}

impl<S: IngestSink> Drop for Ingest<S> {
    /// Dropping an ingest flushes it like [`Ingest::shutdown`] (the sink is
    /// discarded). During a panic unwind the flush is skipped and queued
    /// submissions fail with [`IngestError::Closed`] instead.
    fn drop(&mut self) {
        self.shared.close();
        match std::mem::replace(&mut self.mode, Mode::Done) {
            Mode::Threaded(handle) => {
                let _ = handle.join();
            }
            Mode::Manual(mut drainer) => {
                if !std::thread::panicking() {
                    while drainer.sink.is_some() {
                        match drainer.take(false) {
                            Some(taken) => {
                                drainer.process(taken);
                            }
                            None => break,
                        }
                    }
                }
                self.shared.fail_all_queued();
            }
            Mode::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::sim::SimulationIndex;
    use crate::service::MatchService;
    use igpm_graph::{Pattern, Predicate};

    fn toggle_graph(nodes: usize) -> DataGraph {
        let mut g = DataGraph::new();
        for i in 0..nodes {
            g.add_labeled_node(if i % 2 == 0 { "A" } else { "B" });
        }
        g
    }

    fn service(graph: DataGraph) -> MatchService<SimulationIndex> {
        let mut svc = MatchService::with_shards(graph, 1);
        let mut p = Pattern::new();
        let u = p.add_node(Predicate::label("A"));
        let v = p.add_node(Predicate::label("B"));
        p.add_normal_edge(u, v);
        svc.register(&p).unwrap();
        svc
    }

    fn insert(from: u32, to: u32) -> Update {
        Update::insert(NodeId(from), NodeId(to))
    }

    fn delete(from: u32, to: u32) -> Update {
        Update::delete(NodeId(from), NodeId(to))
    }

    #[test]
    fn options_seeded_from_committed_artifact_knee() {
        let report = JsonValue::parse(
            r#"{
                "workload": {"batch_size": 2000},
                "unit_update": {"counter_median_ns": 549},
                "batch": {"counter_median_ms": 0.790288}
            }"#,
        )
        .unwrap();
        let opts = IngestOptions::from_artifact(&report).unwrap();
        // 549 ns unit, 395.144 ns/update batched: F ≈ 153.9 ns, knee =
        // ⌈153.9 / (0.05 · 395.144)⌉ = 8 — the documented default.
        assert_eq!(opts.min_batch, 8);
        assert_eq!(opts.min_batch, IngestOptions::default().min_batch);
        assert_eq!(opts.max_batch, 2000);
        assert_eq!(opts.burst_backlog, 16);
    }

    #[test]
    fn options_degenerate_artifacts_are_refused_or_floored() {
        assert!(IngestOptions::from_artifact(&JsonValue::parse("{}").unwrap()).is_none());
        let inverted = JsonValue::parse(
            r#"{
                "workload": {"batch_size": 100},
                "unit_update": {"counter_median_ns": 200},
                "batch": {"counter_median_ms": 0.05}
            }"#,
        )
        .unwrap();
        // 500 ns/update batched beats nothing: stay latency-optimal.
        assert_eq!(IngestOptions::from_artifact(&inverted).unwrap().min_batch, 1);
    }

    #[test]
    fn adaptive_cap_doubles_under_backlog_and_halves_when_idle() {
        let opts =
            IngestOptions { queue_capacity: 1024, min_batch: 2, max_batch: 8, burst_backlog: 4 };
        let mut ingest = Ingest::new_manual(service(toggle_graph(64)), opts);
        let handle = ingest.handle();
        let mut tickets = Vec::new();
        for i in 0..10u32 {
            let batch: BatchUpdate = vec![insert(i, 32 + i)].into_iter().collect();
            tickets.push(handle.try_submit(batch).unwrap());
        }
        assert_eq!(ingest.stats().current_cap, 2);
        assert_eq!(ingest.drain_once(), 2); // backlog 8 ≥ 4 → cap 4
        assert_eq!(ingest.stats().current_cap, 4);
        assert_eq!(ingest.drain_once(), 4); // backlog 4 ≥ 4 → cap 8
        assert_eq!(ingest.stats().current_cap, 8);
        assert_eq!(ingest.drain_once(), 4); // backlog 0 → cap halves to 4
        assert_eq!(ingest.stats().current_cap, 4);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(ingest.stats().committed_batches, 3);
        assert_eq!(ingest.stats().max_coalesced, 4);
    }

    #[test]
    fn strict_rejection_reports_submission_positions_and_leaves_no_trace() {
        let mut ingest = Ingest::new_manual(service(toggle_graph(8)), IngestOptions::default());
        let handle = ingest.handle();
        let ok_before = handle.try_submit(vec![insert(0, 1)].into_iter().collect()).unwrap();
        // Valid op at 0, duplicate (vs the *previous submission*) at 1.
        let bad =
            handle.try_submit(vec![insert(2, 3), insert(0, 1)].into_iter().collect()).unwrap();
        let ok_after = handle.try_submit(vec![insert(4, 5)].into_iter().collect()).unwrap();
        ingest.drain_once();
        assert!(ok_before.wait().is_ok());
        match bad.wait() {
            Err(IngestError::Rejected(rejections)) => {
                assert_eq!(rejections.len(), 1);
                assert_eq!(rejections[0].position, 1);
                assert_eq!(rejections[0].reason, RejectReason::DuplicateInsert);
            }
            other => panic!("expected a strict rejection, got {other:?}"),
        }
        // The rejected submission's valid op (2→3) must NOT have applied.
        let sink = ingest.shutdown().expect("sink is alive");
        assert!(sink.graph().has_edge(NodeId(0), NodeId(1)));
        assert!(!sink.graph().has_edge(NodeId(2), NodeId(3)));
        assert!(sink.graph().has_edge(NodeId(4), NodeId(5)));
        drop(ok_after);
    }

    #[test]
    fn lenient_fully_stripped_cycle_touches_nothing() {
        let mut ingest = Ingest::new_manual(service(toggle_graph(8)), IngestOptions::default());
        let handle = ingest.handle();
        let ticket = handle.try_submit_lenient(vec![delete(0, 1)].into_iter().collect()).unwrap();
        ingest.drain_once();
        let apply = ticket.wait().unwrap();
        assert!(apply.outcome.is_none());
        assert_eq!(apply.applied_ops, 0);
        assert_eq!(apply.rejected.len(), 1);
        assert_eq!(apply.rejected[0].reason, RejectReason::AbsentDelete);
        let sink = ingest.shutdown().expect("sink is alive");
        assert_eq!(sink.epoch(), 0, "a fully stripped cycle must not bump the epoch");
    }

    #[test]
    fn backpressure_is_typed_and_oversize_is_admitted_when_empty() {
        let opts = IngestOptions { queue_capacity: 2, ..IngestOptions::default() };
        let mut ingest = Ingest::new_manual(service(toggle_graph(64)), opts);
        let handle = ingest.handle();
        // Oversized vs capacity 2, but the queue is empty: admitted.
        let big = handle
            .try_submit(vec![insert(0, 1), insert(2, 3), insert(4, 5)].into_iter().collect())
            .unwrap();
        match handle.try_submit(vec![insert(6, 7)].into_iter().collect()) {
            Err(SubmitError::Backpressure { pending_ops: 3, capacity: 2 }) => {}
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(handle.stats().backpressure_events, 1);
        ingest.drain_once();
        assert!(big.wait().is_ok());
        assert!(handle.try_submit(vec![insert(6, 7)].into_iter().collect()).is_ok());
        ingest.drain_once();
    }

    #[test]
    fn empty_submissions_are_refused() {
        let ingest = Ingest::new_manual(service(toggle_graph(4)), IngestOptions::default());
        assert_eq!(ingest.try_submit(BatchUpdate::new()).unwrap_err(), SubmitError::Empty);
    }

    #[test]
    fn shutdown_flushes_and_closes_handles() {
        let ingest = Ingest::new_manual(service(toggle_graph(16)), IngestOptions::default());
        let handle = ingest.handle();
        let t1 = handle.try_submit(vec![insert(0, 1)].into_iter().collect()).unwrap();
        let t2 = handle.try_submit(vec![insert(2, 3)].into_iter().collect()).unwrap();
        let sink = ingest.shutdown().expect("sink is alive");
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert!(sink.graph().has_edge(NodeId(0), NodeId(1)));
        assert!(sink.graph().has_edge(NodeId(2), NodeId(3)));
        assert!(handle.is_closed());
        assert_eq!(
            handle.try_submit(vec![insert(4, 5)].into_iter().collect()).unwrap_err(),
            SubmitError::Closed
        );
    }
}
