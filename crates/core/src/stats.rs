//! Statistics reported by the incremental algorithms.
//!
//! Section 4 of the paper measures incremental algorithms in terms of
//! `|CHANGED| = |ΔG| + |ΔM|` and of `|AFF|`, the size of the affected area —
//! the changes to the match result *plus* the changes to the auxiliary
//! structures (`match()`, `candt()`, landmark/distance vectors) that any
//! incremental algorithm must maintain. Every incremental operation in this
//! crate returns an [`AffStats`] record so that semi-boundedness (cost
//! polynomial in `|ΔG|`, `|P|` and `|AFF|`, independent of `|G|`) can be
//! checked empirically, as the experiments of Section 8.2 do.

use std::fmt;

/// Accounting of one incremental matching operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AffStats {
    /// Number of unit updates handed to the algorithm (`|ΔG|`).
    pub delta_g: usize,
    /// Number of unit updates left after `minDelta`-style reduction.
    pub reduced_delta_g: usize,
    /// Pairs added to the match relation.
    pub matches_added: usize,
    /// Pairs removed from the match relation.
    pub matches_removed: usize,
    /// Changes to auxiliary structures other than the match relation
    /// (candidate-set changes, distance-vector entries, pair-set updates).
    pub aux_changes: usize,
    /// Nodes visited (touched) while propagating the change.
    pub nodes_visited: usize,
    /// Support-counter increments/decrements performed by the counter-backed
    /// incremental engines. Counters are part of the auxiliary structure the
    /// paper's `|AFF|` bound covers, but they are tracked separately from
    /// `aux_changes` so the match/candidate transition counts stay comparable
    /// with the pre-counter implementation.
    pub counter_updates: usize,
}

impl AffStats {
    /// `|ΔM|`: total change to the match result.
    ///
    /// This counts **raw** match-bit transitions inside one batch — a pair
    /// demoted and re-promoted by the same batch counts twice here, and
    /// transitions below the totality threshold (while `P ⋬ G`) count even
    /// though the observable view stays empty. The *view-level* change is the
    /// structured [`MatchDelta`](igpm_graph::MatchDelta) carried by
    /// [`ApplyOutcome`](crate::incremental::ApplyOutcome), which cancels
    /// within-batch flip-flops and collapses to/from the empty view when
    /// totality changes — so its [`len`](igpm_graph::MatchDelta::len) can be
    /// smaller (cancellation) or larger (a collapse emits the whole previous
    /// view) than `delta_m()`.
    pub fn delta_m(&self) -> usize {
        self.matches_added + self.matches_removed
    }

    /// `|CHANGED| = |ΔG| + |ΔM|` (Section 4, Table I).
    pub fn changed(&self) -> usize {
        self.delta_g + self.delta_m()
    }

    /// `|AFF|`: changes in the result and in the auxiliary structures.
    pub fn aff(&self) -> usize {
        self.delta_m() + self.aux_changes
    }

    /// Accumulates another record into this one.
    pub fn merge(&mut self, other: AffStats) {
        self.delta_g += other.delta_g;
        self.reduced_delta_g += other.reduced_delta_g;
        self.matches_added += other.matches_added;
        self.matches_removed += other.matches_removed;
        self.aux_changes += other.aux_changes;
        self.nodes_visited += other.nodes_visited;
        self.counter_updates += other.counter_updates;
    }
}

impl fmt::Display for AffStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|ΔG|={} (reduced {}), |ΔM|={} (+{}/-{}), |AFF|={}, visited={}, counters={}",
            self.delta_g,
            self.reduced_delta_g,
            self.delta_m(),
            self.matches_added,
            self.matches_removed,
            self.aff(),
            self.nodes_visited,
            self.counter_updates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let stats = AffStats {
            delta_g: 5,
            reduced_delta_g: 3,
            matches_added: 2,
            matches_removed: 1,
            aux_changes: 10,
            nodes_visited: 20,
            counter_updates: 7,
        };
        assert_eq!(stats.delta_m(), 3);
        assert_eq!(stats.changed(), 8);
        assert_eq!(stats.aff(), 13);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = AffStats {
            delta_g: 1,
            reduced_delta_g: 1,
            matches_added: 1,
            matches_removed: 1,
            aux_changes: 1,
            nodes_visited: 1,
            counter_updates: 1,
        };
        let b = AffStats {
            delta_g: 2,
            reduced_delta_g: 3,
            matches_added: 4,
            matches_removed: 5,
            aux_changes: 6,
            nodes_visited: 7,
            counter_updates: 8,
        };
        a.merge(b);
        assert_eq!(
            a,
            AffStats {
                delta_g: 3,
                reduced_delta_g: 4,
                matches_added: 5,
                matches_removed: 6,
                aux_changes: 7,
                nodes_visited: 8,
                counter_updates: 9
            }
        );
    }

    #[test]
    fn display_mentions_all_metrics() {
        let stats = AffStats {
            delta_g: 1,
            reduced_delta_g: 1,
            matches_added: 2,
            matches_removed: 0,
            aux_changes: 3,
            nodes_visited: 4,
            counter_updates: 0,
        };
        let text = stats.to_string();
        assert!(text.contains("|ΔG|=1"));
        assert!(text.contains("|ΔM|=2"));
        assert!(text.contains("|AFF|=5"));
    }
}
