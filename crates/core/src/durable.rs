//! [`DurableIndex`]: the crash-recovery orchestrator over either engine.
//!
//! The in-memory engines guarantee a *transactional* batch boundary; this
//! module adds the *durable* one. A [`DurableIndex<E>`] owns a directory of
//! on-disk state — checkpoints plus a write-ahead log, both provided by
//! [`igpm_graph::wal`] — and keeps it ahead of the in-memory state at all
//! times: every batch is validated, **logged, then applied**. Kill the
//! process at any instruction and [`DurableIndex::open`] reconstructs a
//! state bit-identical to the never-crashed run:
//!
//! 1. sweep stray `*.tmp` files (a checkpoint that crashed before its
//!    atomic rename);
//! 2. load the newest checkpoint that passes its CRC, falling back to older
//!    retained ones ([`igpm_graph::wal::load_latest_checkpoint`]);
//! 3. rebuild the engine from the checkpoint graph via the ordinary sharded
//!    cold-start build ([`IncrementalEngine::rebuild_with_shards`]);
//! 4. open the WAL — truncating it at the first torn or corrupt record —
//!    and replay every record with a sequence number above the checkpoint's
//!    through the normal `try_apply_batch` path.
//!
//! Bit-identity is inherited rather than re-proven: the cold-start build
//! equals the grown index by the build-equivalence invariant, replay uses
//! the very same batch path the live run used, and the graph snapshot
//! preserves adjacency order exactly. Recovery performs **no writes** to the
//! log or the checkpoints, so a crash *during* recovery (the double-crash
//! case) just recovers again from the same on-disk state.
//!
//! The full recovery algorithm, the WAL record format and the fsync
//! trade-off table live in the "Durability" section of `RECOVERY.md`.

use crate::incremental::{ApplyOutcome, BuildError, IncrementalEngine};
use crate::service::{MatchService, PatternId, ServiceApply, ServiceError};
use igpm_graph::io::IoError;
use igpm_graph::shard::configured_shards;
use igpm_graph::update::validate_batch;
use igpm_graph::wal::{
    configured_fsync, list_checkpoints, load_latest_checkpoint, prune_checkpoints,
    sweep_temp_files, write_checkpoint, FsyncPolicy, Wal,
};
use igpm_graph::{ApplyError, BatchUpdate, DataGraph, MatchDelta, MatchRelation, Pattern};
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Tuning knobs of a [`DurableIndex`]. `Default` reads the environment:
/// `IGPM_FSYNC` for the fsync policy, `IGPM_SHARDS` for the shard count.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// What a WAL append forces to stable storage
    /// ([`igpm_graph::wal::FsyncPolicy`]; default: `IGPM_FSYNC`, i.e.
    /// `always` unless overridden).
    pub fsync: FsyncPolicy,
    /// Take a checkpoint automatically once this many batches accumulated
    /// since the last one. `0` (the default) disables automatic
    /// checkpointing; [`DurableIndex::checkpoint`] is always available on
    /// demand.
    pub checkpoint_every: u64,
    /// How many checkpoints to retain (minimum 1; default 2). Retaining more
    /// than one is what makes the corrupt-newest-checkpoint fallback *work*:
    /// WAL segments are only pruned below the **oldest retained** checkpoint,
    /// so every retained checkpoint still has its replay tail. `0` is
    /// rejected at open with [`DurableError::InvalidOptions`] — it would
    /// silently behave as 1.
    pub keep_checkpoints: usize,
    /// Shard count for builds, replays and batch application (default:
    /// [`configured_shards`], the `IGPM_SHARDS` knob). `0` is rejected at
    /// open with [`DurableError::InvalidOptions`].
    pub shards: usize,
    /// Capacity of the per-index delta ring buffer [`Subscription`]s tail
    /// (default 1024 batches). When a subscriber falls more than this many
    /// batches behind, the ring drops the oldest deltas and the subscriber
    /// observes an explicit [`DeltaEvent::Lagged`] instead of silent loss.
    /// `0` is rejected at open with [`DurableError::InvalidOptions`] — a
    /// ring that can hold nothing would lag every subscriber on every batch.
    pub delta_buffer: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: configured_fsync(),
            checkpoint_every: 0,
            keep_checkpoints: 2,
            shards: configured_shards(),
            delta_buffer: 1024,
        }
    }
}

impl DurableOptions {
    /// Rejects degenerate configurations with a typed error instead of
    /// silently reinterpreting them. Called by [`DurableIndex::open`] and
    /// [`DurableMatchService::open`] before anything touches the directory.
    /// Note that `checkpoint_every == 0` is *not* degenerate — it is the
    /// documented "no automatic checkpoints" setting.
    pub fn validate(&self) -> Result<(), InvalidOptions> {
        if self.keep_checkpoints == 0 {
            return Err(InvalidOptions {
                field: "keep_checkpoints",
                value: 0,
                requirement: "at least one checkpoint must be retained",
            });
        }
        if self.shards == 0 {
            return Err(InvalidOptions {
                field: "shards",
                value: 0,
                requirement: "builds and batches need at least one shard",
            });
        }
        if self.delta_buffer == 0 {
            return Err(InvalidOptions {
                field: "delta_buffer",
                value: 0,
                requirement: "the delta ring must be able to buffer at least one batch",
            });
        }
        Ok(())
    }
}

/// A [`DurableOptions`] field rejected by [`DurableOptions::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidOptions {
    /// The rejected field.
    pub field: &'static str,
    /// The value it carried.
    pub value: u64,
    /// What the field requires instead.
    pub requirement: &'static str,
}

impl fmt::Display for InvalidOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {} is invalid: {}", self.field, self.value, self.requirement)
    }
}

impl std::error::Error for InvalidOptions {}

/// One event observed by a [`Subscription`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaEvent {
    /// The delta the engine emitted for the batch logged at WAL sequence
    /// number `seq` (empty deltas are published too — the stream covers
    /// *every* committed batch, which is what makes the crash/recover replay
    /// identity testable).
    Delta {
        /// The WAL sequence number of the batch.
        seq: u64,
        /// The emitted `ΔM`, shared with every other subscriber.
        delta: Arc<MatchDelta>,
    },
    /// The subscriber fell behind the bounded ring
    /// ([`DurableOptions::delta_buffer`]) and `missed` deltas were dropped;
    /// the stream resumes at `resume_seq`. Consumers that need the lost
    /// ground must re-read the full view and diff.
    Lagged {
        /// How many per-batch deltas were dropped.
        missed: u64,
        /// The sequence number the next [`DeltaEvent::Delta`] will carry.
        resume_seq: u64,
    },
}

/// Interior of a sequence-stamped publication ring: the buffered
/// `(seq, payload)` tail plus the high-water mark of everything ever
/// published, which is what makes recovery's re-publication idempotent
/// (live-published sequence numbers are skipped; only the tail the crash
/// swallowed is re-emitted). Generic over the payload so a single-index
/// ring carries one `ΔM` per batch ([`DurableIndex`]) and a service ring
/// carries the pattern-keyed bundle ([`DurableMatchService`]).
#[derive(Debug)]
struct RingInner<T> {
    buf: VecDeque<(u64, T)>,
    capacity: usize,
    newest_seq: u64,
}

/// Shared handle on a publication ring (the index publishes, subscriptions
/// poll).
type Ring<T> = Arc<Mutex<RingInner<T>>>;

fn new_ring<T>(capacity: usize) -> Ring<T> {
    Arc::new(Mutex::new(RingInner {
        buf: VecDeque::new(),
        capacity: capacity.max(1),
        newest_seq: 0,
    }))
}

impl<T> RingInner<T> {
    /// Publishes the payload of the batch at `seq`. Idempotent by sequence
    /// number: a replay re-publishing a live-published batch is a no-op, so
    /// after a crash the subscribers see exactly the events the never-crashed
    /// run would have shown them, each exactly once.
    fn publish(&mut self, seq: u64, payload: T) {
        if seq <= self.newest_seq {
            return;
        }
        if let Some(&(back, _)) = self.buf.back() {
            debug_assert_eq!(seq, back + 1, "delta ring published out of order");
        }
        self.newest_seq = seq;
        self.buf.push_back((seq, payload));
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
        }
    }
}

/// The polling half of a [`Ring`]: a detached cursor that yields each
/// published payload exactly once, surfacing ring overflow as an explicit
/// lag. The typed subscriptions ([`Subscription`], [`ServiceSubscription`])
/// wrap one cursor each and map its items into their event enums.
#[derive(Debug)]
struct RingCursor<T> {
    ring: Ring<T>,
    next_seq: u64,
}

/// One cursor step: a published payload, or the lag marker.
enum RingPoll<T> {
    Item(u64, T),
    Lagged { missed: u64, resume_seq: u64 },
}

impl<T: Clone> RingCursor<T> {
    /// Returns the next publication, or `None` when caught up.
    fn poll(&mut self) -> Option<RingPoll<T>> {
        let ring = self.ring.lock().expect("delta ring lock");
        if self.next_seq > ring.newest_seq {
            return None;
        }
        let oldest = match ring.buf.front() {
            Some(&(seq, _)) => seq,
            // Published batches exist (newest_seq ≥ next_seq) but the buffer
            // is empty — everything was dropped by overflow.
            None => {
                let missed = ring.newest_seq + 1 - self.next_seq;
                self.next_seq = ring.newest_seq + 1;
                return Some(RingPoll::Lagged { missed, resume_seq: self.next_seq });
            }
        };
        if self.next_seq < oldest {
            let missed = oldest - self.next_seq;
            self.next_seq = oldest;
            return Some(RingPoll::Lagged { missed, resume_seq: oldest });
        }
        // Ring sequences are contiguous, so the target sits at a fixed offset.
        let (seq, payload) = ring.buf[(self.next_seq - oldest) as usize].clone();
        debug_assert_eq!(seq, self.next_seq, "delta ring out of order");
        self.next_seq += 1;
        Some(RingPoll::Item(seq, payload))
    }
}

/// A tailing consumer of a [`DurableIndex`]'s per-batch [`MatchDelta`]
/// stream, detached from the index (`poll` never borrows it). Sequence
/// numbers are the WAL sequence numbers of the batches: subscribing at the
/// current [`DurableIndex::sequence`] and folding every polled delta into a
/// snapshot of `try_matches()` reproduces every subsequent view exactly
/// (`view(t) = view(t-1) ∖ removed ⊎ inserted`).
///
/// The ring behind a subscription is bounded
/// ([`DurableOptions::delta_buffer`]); a subscriber that falls behind
/// observes [`DeltaEvent::Lagged`] with an exact drop count instead of a
/// silent gap. The ring survives [`DurableIndex::recover`], and recovery's
/// WAL-tail replay re-publishes **only** the batches whose live publication
/// the crash swallowed (publication is idempotent by sequence number).
#[derive(Debug)]
pub struct Subscription {
    cursor: RingCursor<Arc<MatchDelta>>,
}

impl Subscription {
    /// Returns the next event, or `None` when the subscriber is caught up.
    pub fn poll(&mut self) -> Option<DeltaEvent> {
        Some(match self.cursor.poll()? {
            RingPoll::Item(seq, delta) => DeltaEvent::Delta { seq, delta },
            RingPoll::Lagged { missed, resume_seq } => DeltaEvent::Lagged { missed, resume_seq },
        })
    }

    /// The sequence number the next [`DeltaEvent::Delta`] will carry.
    pub fn next_seq(&self) -> u64 {
        self.cursor.next_seq
    }
}

/// Typed error of the durable-index APIs.
#[derive(Debug)]
pub enum DurableError {
    /// An I/O operation on the WAL or the durability directory failed.
    Io(std::io::Error),
    /// A checkpoint could not be written or none could be verified.
    Snapshot(IoError),
    /// The in-memory apply path rejected or aborted the batch (validation
    /// failure, poisoned index, or a contained mid-batch panic).
    Apply(ApplyError),
    /// The WAL is missing a batch: its records jump over a sequence number
    /// the checkpoint does not cover. On-disk state was tampered with or
    /// segments were deleted out-of-band; recovery refuses to guess.
    SequenceGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number the log actually continued with.
        found: u64,
    },
    /// A logged batch failed to re-apply during recovery replay — possible
    /// only if the on-disk state was modified out-of-band (a logged batch
    /// was validated against exactly this state before being logged).
    Replay {
        /// The sequence number of the failing record.
        seq: u64,
        /// The apply error it failed with.
        error: ApplyError,
    },
    /// The directory holds durable state (WAL segments) but no checkpoint,
    /// or recovery was attempted on a directory that never held one.
    NoCheckpoint,
    /// Registering a pattern with a [`DurableMatchService`] failed (the
    /// pattern itself is unbuildable, see [`BuildError`]).
    Build(BuildError),
    /// A [`PatternId`] passed to a [`DurableMatchService`] does not name a
    /// currently registered pattern.
    UnknownPattern(PatternId),
    /// The [`DurableOptions`] passed to open are degenerate (see
    /// [`DurableOptions::validate`]); nothing was opened or created.
    InvalidOptions(InvalidOptions),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(error) => write!(f, "durability i/o error: {error}"),
            DurableError::Snapshot(error) => write!(f, "checkpoint error: {error}"),
            DurableError::Apply(error) => write!(f, "apply error: {error}"),
            DurableError::SequenceGap { expected, found } => {
                write!(f, "write-ahead log gap: expected batch {expected}, found {found}")
            }
            DurableError::Replay { seq, error } => {
                write!(f, "replay of logged batch {seq} failed: {error}")
            }
            DurableError::NoCheckpoint => {
                write!(f, "durable state has no checkpoint (log present without one?)")
            }
            DurableError::Build(error) => write!(f, "pattern registration failed: {error}"),
            DurableError::UnknownPattern(id) => {
                write!(f, "{id} is not registered with this service")
            }
            DurableError::InvalidOptions(invalid) => {
                write!(f, "invalid durable options: {invalid}")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(error) => Some(error),
            DurableError::Snapshot(error) => Some(error),
            DurableError::Apply(error) | DurableError::Replay { error, .. } => Some(error),
            DurableError::Build(error) => Some(error),
            DurableError::InvalidOptions(invalid) => Some(invalid),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(error: std::io::Error) -> Self {
        DurableError::Io(error)
    }
}

impl From<IoError> for DurableError {
    fn from(error: IoError) -> Self {
        DurableError::Snapshot(error)
    }
}

/// A durably-backed incremental index: an engine `E` (either
/// [`SimulationIndex`](crate::incremental::sim::SimulationIndex) or
/// [`BoundedIndex`](crate::incremental::bsim::BoundedIndex)), its data
/// graph, and the on-disk WAL + checkpoint state that lets the pair survive
/// a kill at any instruction. See the [module docs](self) for the recovery
/// algorithm and `RECOVERY.md` for the full durability story.
#[derive(Debug)]
pub struct DurableIndex<E> {
    dir: PathBuf,
    opts: DurableOptions,
    wal: Wal,
    graph: DataGraph,
    index: E,
    seq: u64,
    last_checkpoint_seq: u64,
    /// Set when the in-memory state may lag the log (a contained engine
    /// panic after the batch was already logged): every mutation and read
    /// then errors with [`ApplyError::Poisoned`] until
    /// [`DurableIndex::recover`] reconciles from disk.
    dirty: bool,
    /// The per-index delta ring [`Subscription`]s tail. Shared (not rebuilt)
    /// across [`DurableIndex::recover`], so subscribers stay attached.
    deltas: Ring<Arc<MatchDelta>>,
}

/// True iff `dir` contains WAL segment files.
fn has_wal_segments(dir: &Path) -> std::io::Result<bool> {
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(name) = name.to_str() {
            if name.starts_with("wal-") && name.ends_with(".log") {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

impl<E: IncrementalEngine> DurableIndex<E> {
    /// Opens (creating it on first use) the durable state in `dir` for
    /// `pattern`. On first use — no checkpoint and no WAL — a bootstrap
    /// checkpoint of `initial_graph` is written at sequence number 0;
    /// afterwards `initial_graph` is ignored and the state comes entirely
    /// from disk via the recovery algorithm in the [module docs](self).
    /// A directory with WAL segments but no checkpoint is refused
    /// ([`DurableError::NoCheckpoint`]) rather than silently restarted.
    pub fn open(
        dir: impl Into<PathBuf>,
        pattern: &Pattern,
        initial_graph: &DataGraph,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        opts.validate().map_err(DurableError::InvalidOptions)?;
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        sweep_temp_files(&dir)?;
        if list_checkpoints(&dir)?.is_empty() {
            if has_wal_segments(&dir)? {
                return Err(DurableError::NoCheckpoint);
            }
            write_checkpoint(&dir, 0, initial_graph)?;
        }
        let ring = new_ring(opts.delta_buffer);
        Self::open_existing(dir, pattern, opts, ring)
    }

    /// The recovery path proper: requires a checkpoint to exist. Every
    /// WAL-tail record replayed above the checkpoint publishes its emitted
    /// delta into `ring` at its logged sequence number — publication is
    /// idempotent by sequence, so an in-place [`DurableIndex::recover`]
    /// (which passes the live ring) re-emits only the tail the crash
    /// swallowed, while a fresh [`DurableIndex::open`] (empty ring) re-emits
    /// the whole tail exactly as the never-crashed run did.
    fn open_existing(
        dir: PathBuf,
        pattern: &Pattern,
        opts: DurableOptions,
        ring: Ring<Arc<MatchDelta>>,
    ) -> Result<Self, DurableError> {
        sweep_temp_files(&dir)?;
        let load = load_latest_checkpoint(&dir)?.ok_or(DurableError::NoCheckpoint)?;
        let base_seq = load.checkpoint.seq;
        let mut graph = load.checkpoint.graph;
        let mut index = E::rebuild_with_shards(pattern, &graph, opts.shards);
        let (wal, scan) = Wal::open(&dir, opts.fsync)?;
        {
            // Batches at or below the checkpoint are covered by it and will
            // never be re-emitted: raise the ring's high-water mark so a
            // subscriber behind the checkpoint observes an explicit lag
            // instead of a silently "caught up" stream.
            let mut ring_guard = ring.lock().expect("delta ring lock");
            if ring_guard.newest_seq < base_seq {
                ring_guard.newest_seq = base_seq;
            }
        }
        let mut seq = base_seq;
        for record in scan.records {
            if record.seq <= base_seq {
                continue; // covered by the checkpoint; retained for older ones
            }
            if record.seq != seq + 1 {
                return Err(DurableError::SequenceGap { expected: seq + 1, found: record.seq });
            }
            let outcome = index
                .try_apply_batch_with_shards(&mut graph, &record.batch, opts.shards)
                .map_err(|error| DurableError::Replay { seq: record.seq, error })?;
            ring.lock().expect("delta ring lock").publish(record.seq, Arc::new(outcome.delta));
            seq = record.seq;
        }
        Ok(DurableIndex {
            dir,
            opts,
            wal,
            graph,
            index,
            seq,
            last_checkpoint_seq: base_seq,
            dirty: false,
            deltas: ring,
        })
    }

    /// Durably applies one batch: validate against the current graph, append
    /// to the WAL (syncing per the fsync policy), then run the engine's
    /// transactional `try_apply_batch`. Auto-checkpoints afterwards when
    /// [`DurableOptions::checkpoint_every`] is due.
    ///
    /// An invalid batch is rejected *before* it is logged — the WAL holds
    /// validated batches only, which is what makes replay infallible. If the
    /// engine aborts the batch with a contained panic *after* the append,
    /// the log is ahead of memory: the index turns [`ApplyError::Poisoned`]
    /// until [`DurableIndex::recover`] reconciles from disk, after which the
    /// logged batch **is** applied (logged means committed).
    ///
    /// # Panics
    /// An armed durability failpoint (`wal.append-header`, `wal.append-body`,
    /// `wal.fsync`, `ckpt.*`, `wal.prune`) panics through this method — that
    /// is the crash model, the in-process stand-in for `kill -9`. The object
    /// must then be treated as dead: drop it and [`DurableIndex::open`] anew
    /// (which is exactly what the crash-recovery suite does).
    pub fn apply(&mut self, batch: &BatchUpdate) -> Result<ApplyOutcome, DurableError> {
        if self.dirty || self.index.poisoned() {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        let rejections = validate_batch(&self.graph, batch);
        if !rejections.is_empty() {
            return Err(DurableError::Apply(ApplyError::InvalidBatch(rejections)));
        }
        let seq = self.seq + 1;
        self.wal.append(seq, batch)?;
        self.seq = seq;
        match self.index.try_apply_batch_with_shards(&mut self.graph, batch, self.opts.shards) {
            Ok(outcome) => {
                self.deltas
                    .lock()
                    .expect("delta ring lock")
                    .publish(seq, Arc::new(outcome.delta.clone()));
                if self.opts.checkpoint_every > 0
                    && seq - self.last_checkpoint_seq >= self.opts.checkpoint_every
                {
                    self.checkpoint()?;
                }
                Ok(outcome)
            }
            Err(error) => {
                // The batch is logged but not applied (and its delta not
                // published): `recover` replays it from the WAL and publishes
                // the delta then — logged means committed.
                self.dirty = true;
                Err(DurableError::Apply(error))
            }
        }
    }

    /// Takes a checkpoint of the current state on demand: write the graph +
    /// sequence number atomically, rotate the WAL onto a fresh segment,
    /// prune checkpoints beyond [`DurableOptions::keep_checkpoints`] and WAL
    /// segments below the oldest retained one. Returns the covered sequence
    /// number. A no-op when nothing was applied since the last checkpoint.
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        if self.dirty || self.index.poisoned() {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        if self.seq == self.last_checkpoint_seq {
            return Ok(self.seq);
        }
        write_checkpoint(&self.dir, self.seq, &self.graph)?;
        self.wal.rotate(self.seq + 1)?;
        self.last_checkpoint_seq = self.seq;
        if let Some(oldest_retained) = prune_checkpoints(&self.dir, self.opts.keep_checkpoints)? {
            self.wal.prune_segments_below(oldest_retained)?;
        }
        Ok(self.seq)
    }

    /// Reconciles in-memory state from disk after a contained engine panic
    /// (the [`ApplyError::Poisoned`] state): re-runs the full recovery
    /// algorithm in place — reload the newest checkpoint, rebuild, replay
    /// the WAL tail. This is the durable composition of the engines'
    /// in-memory `recover()`: instead of rebuilding from a possibly-lagging
    /// in-memory graph, the rebuild source is the log, which is never behind.
    pub fn recover(&mut self) -> Result<(), DurableError> {
        let pattern = self.index.pattern().clone();
        // The live ring is passed through, so subscriptions survive recovery
        // and the replay re-publishes exactly the unpublished tail.
        *self = Self::open_existing(
            self.dir.clone(),
            &pattern,
            self.opts.clone(),
            self.deltas.clone(),
        )?;
        Ok(())
    }

    /// Subscribes to the per-batch [`MatchDelta`] stream from the current
    /// sequence number on: the first [`DeltaEvent::Delta`] polled is the
    /// batch logged after this call. See [`Subscription`].
    pub fn subscribe(&self) -> Subscription {
        self.subscribe_from(self.seq + 1)
    }

    /// Subscribes starting at an explicit WAL sequence number (e.g. the
    /// checkpoint sequence a consumer restored a snapshot from, plus one).
    /// Sequences no longer buffered — published before the subscription and
    /// beyond the ring, or covered only by a checkpoint — surface as one
    /// [`DeltaEvent::Lagged`] before the stream resumes.
    ///
    /// Batch sequence numbers start at 1 (0 is the bootstrap checkpoint, not
    /// a batch), so `subscribe_from(0)` is `subscribe_from(1)`: the stream
    /// from the very beginning, with no event to miss for the nonexistent
    /// batch 0. A `seq` above the current high-water mark is a *future*
    /// cursor: `poll` returns `None` until that batch commits, then the
    /// stream starts exactly there — batches before it were skipped on
    /// purpose and are never reported as lag.
    pub fn subscribe_from(&self, seq: u64) -> Subscription {
        Subscription { cursor: RingCursor { ring: self.deltas.clone(), next_seq: seq.max(1) } }
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The wrapped engine (e.g. to take an `aux_snapshot()`).
    pub fn engine(&self) -> &E {
        &self.index
    }

    /// The current maximum match, or [`ApplyError::Poisoned`] when the index
    /// needs [`DurableIndex::recover`] first.
    pub fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        if self.dirty {
            return Err(ApplyError::Poisoned);
        }
        self.index.try_matches()
    }

    /// The sequence number of the last durably logged batch.
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// The sequence number the newest checkpoint covers.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// True iff the index must be [`recover`](DurableIndex::recover)ed
    /// before further use (in-memory state may lag the log, or the engine
    /// poisoned itself).
    pub fn poisoned(&self) -> bool {
        self.dirty || self.index.poisoned()
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the index was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }
}

/// A [`DurableIndex`] ingests through its durable apply path: the coalesced
/// batch is WAL-appended once, applied transactionally, its delta published,
/// and [`IngestApply::seq`](crate::ingest::IngestApply::seq) carries the WAL
/// sequence number. Poison ([`ApplyError::Poisoned`]) comes back as a typed
/// [`IngestError::Sink`](crate::ingest::IngestError::Sink); an armed
/// durability failpoint panics through and kills the ingest — the crash
/// model, after which the directory reopens via [`DurableIndex::open`].
impl<E: IncrementalEngine> crate::ingest::IngestSink for DurableIndex<E> {
    type Outcome = ApplyOutcome;
    type Error = DurableError;

    fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<ApplyOutcome, DurableError> {
        self.apply(batch)
    }

    fn sink_graph(&self) -> &DataGraph {
        self.graph()
    }

    fn committed_seq(&self) -> u64 {
        self.sequence()
    }
}

/// The pattern-keyed bundle a [`DurableMatchService`] publishes per batch:
/// one `(pattern, ΔM)` entry for every registered pattern whose pipeline
/// committed the batch (a poisoned pattern's entry is absent for the batches
/// it missed, and resumes after [`DurableMatchService::recover_pattern`]).
type ServicePayload = Arc<Vec<(PatternId, Arc<MatchDelta>)>>;

/// One event observed by a [`ServiceSubscription`] — the pattern-keyed
/// counterpart of [`DeltaEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDeltaEvent {
    /// The delta one registered pattern emitted for the batch logged at WAL
    /// sequence number `seq`. Every committed batch yields one event per
    /// registered (non-poisoned) pattern, in [`PatternId`] order — empty
    /// deltas included, so folding a pattern's events over a snapshot
    /// reproduces every subsequent view exactly.
    Delta {
        /// The pattern the delta belongs to.
        pattern_id: PatternId,
        /// The WAL sequence number of the batch.
        seq: u64,
        /// The emitted `ΔM`, shared with every other subscriber.
        delta: Arc<MatchDelta>,
    },
    /// The subscriber fell behind the bounded ring
    /// ([`DurableOptions::delta_buffer`]) and the events of `missed`
    /// *batches* (each carrying up to one delta per pattern) were dropped;
    /// the stream resumes at `resume_seq`.
    Lagged {
        /// How many per-batch event bundles were dropped.
        missed: u64,
        /// The sequence number the next [`ServiceDeltaEvent::Delta`] will
        /// carry.
        resume_seq: u64,
    },
}

/// A tailing consumer of a [`DurableMatchService`]'s pattern-keyed delta
/// stream, detached from the service (`poll` never borrows it). The
/// semantics are those of [`Subscription`] lifted to many patterns: sequence
/// numbers are WAL sequence numbers, events of one batch arrive contiguously
/// in [`PatternId`] order, lag is explicit, the ring survives recovery, and
/// replay re-emission is idempotent by sequence number.
#[derive(Debug)]
pub struct ServiceSubscription {
    cursor: RingCursor<ServicePayload>,
    /// Events of the batch currently being drained (the cursor yields whole
    /// per-batch bundles; subscribers consume them one pattern at a time).
    pending: VecDeque<(PatternId, u64, Arc<MatchDelta>)>,
}

impl ServiceSubscription {
    /// Returns the next event, or `None` when the subscriber is caught up.
    pub fn poll(&mut self) -> Option<ServiceDeltaEvent> {
        loop {
            if let Some((pattern_id, seq, delta)) = self.pending.pop_front() {
                return Some(ServiceDeltaEvent::Delta { pattern_id, seq, delta });
            }
            match self.cursor.poll()? {
                RingPoll::Item(seq, payload) => {
                    for (pattern_id, delta) in payload.iter() {
                        self.pending.push_back((*pattern_id, seq, Arc::clone(delta)));
                    }
                    // An empty bundle (no patterns registered at that batch)
                    // yields no events; keep draining.
                }
                RingPoll::Lagged { missed, resume_seq } => {
                    return Some(ServiceDeltaEvent::Lagged { missed, resume_seq });
                }
            }
        }
    }

    /// The WAL sequence number of the next batch fetched from the ring
    /// (events of an already-fetched batch may still be pending).
    pub fn next_seq(&self) -> u64 {
        self.cursor.next_seq
    }
}

/// A durably-backed [`MatchService`]: many registered patterns over one
/// shared graph, one WAL. Batches are **logged once** — the log records
/// data-graph batches only, never anything per-pattern — and fanned out to
/// every registered pattern through the service's shared-classification
/// apply; the per-pattern deltas are published as [`ServiceDeltaEvent`]s
/// through the same bounded-ring/replay machinery as [`DurableIndex`].
///
/// The pattern set itself is *not* durable state: [`DurableMatchService::open`]
/// takes the patterns to serve and registers them (in order) over the
/// recovered graph — the WAL-tail replay then brings every pattern to the
/// exact state the never-crashed run had, publishing the swallowed tail of
/// pattern-keyed deltas idempotently.
///
/// Failure containment is two-level (see `SERVICE.md`): a shared-stage panic
/// after the WAL append leaves the log ahead of memory and the whole service
/// refuses work until [`DurableMatchService::recover`]; a panic inside one
/// pattern's pipeline poisons that pattern only — its delta is simply absent
/// from the batch's published bundle, every other pattern keeps serving, and
/// [`DurableMatchService::recover_pattern`] rebuilds it from the current
/// (fully committed) graph without touching the log.
pub struct DurableMatchService<E: IncrementalEngine> {
    dir: PathBuf,
    opts: DurableOptions,
    wal: Wal,
    service: MatchService<E>,
    seq: u64,
    last_checkpoint_seq: u64,
    /// Set when the on-disk log is ahead of the in-memory service (a
    /// contained shared-stage panic after the batch was logged): every
    /// mutation and read then errors with [`ApplyError::Poisoned`] until
    /// [`DurableMatchService::recover`] reconciles from disk.
    dirty: bool,
    deltas: Ring<ServicePayload>,
}

/// Lifts a [`ServiceError`] into the durable error space.
fn service_to_durable(error: ServiceError) -> DurableError {
    match error {
        ServiceError::Apply(error) => DurableError::Apply(error),
        ServiceError::Build(error) => DurableError::Build(error),
        ServiceError::UnknownPattern(id) => DurableError::UnknownPattern(id),
    }
}

/// The pattern-keyed bundle of one committed batch: every `Ok` outcome's
/// delta, in [`PatternId`] order (the outcomes map is ordered).
fn service_payload(apply: &ServiceApply) -> ServicePayload {
    Arc::new(
        apply
            .outcomes
            .iter()
            .filter_map(|(id, outcome)| {
                outcome.as_ref().ok().map(|outcome| (*id, Arc::new(outcome.delta.clone())))
            })
            .collect(),
    )
}

impl<E: IncrementalEngine> DurableMatchService<E> {
    /// Opens (creating it on first use) the durable state in `dir` and
    /// registers `patterns` (in order) over the recovered graph. On first
    /// use a bootstrap checkpoint of `initial_graph` is written at sequence
    /// number 0; afterwards `initial_graph` is ignored and the graph comes
    /// entirely from disk. Returns the service and the [`PatternId`]s of
    /// `patterns`, position by position.
    pub fn open(
        dir: impl Into<PathBuf>,
        patterns: &[Pattern],
        initial_graph: &DataGraph,
        opts: DurableOptions,
    ) -> Result<(Self, Vec<PatternId>), DurableError> {
        opts.validate().map_err(DurableError::InvalidOptions)?;
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        sweep_temp_files(&dir)?;
        if list_checkpoints(&dir)?.is_empty() {
            if has_wal_segments(&dir)? {
                return Err(DurableError::NoCheckpoint);
            }
            write_checkpoint(&dir, 0, initial_graph)?;
        }
        let ring = new_ring(opts.delta_buffer);
        Self::open_existing(dir, patterns, opts, ring)
    }

    /// The recovery path proper: requires a checkpoint. Registers
    /// `patterns` over the checkpoint graph, then replays the WAL tail
    /// through the service apply, publishing each batch's pattern-keyed
    /// bundle at its logged sequence number (idempotent, exactly like
    /// [`DurableIndex`]).
    fn open_existing(
        dir: PathBuf,
        patterns: &[Pattern],
        opts: DurableOptions,
        ring: Ring<ServicePayload>,
    ) -> Result<(Self, Vec<PatternId>), DurableError> {
        sweep_temp_files(&dir)?;
        let load = load_latest_checkpoint(&dir)?.ok_or(DurableError::NoCheckpoint)?;
        let base_seq = load.checkpoint.seq;
        let mut service: MatchService<E> =
            MatchService::with_shards(load.checkpoint.graph, opts.shards);
        let ids = patterns
            .iter()
            .map(|pattern| service.register(pattern).map_err(service_to_durable))
            .collect::<Result<Vec<PatternId>, DurableError>>()?;
        let (wal, scan) = Wal::open(&dir, opts.fsync)?;
        {
            // Batches at or below the checkpoint are covered by it and will
            // never be re-emitted: raise the ring's high-water mark so a
            // subscriber behind the checkpoint observes an explicit lag.
            let mut ring_guard = ring.lock().expect("delta ring lock");
            if ring_guard.newest_seq < base_seq {
                ring_guard.newest_seq = base_seq;
            }
        }
        let mut seq = base_seq;
        for record in scan.records {
            if record.seq <= base_seq {
                continue; // covered by the checkpoint; retained for older ones
            }
            if record.seq != seq + 1 {
                return Err(DurableError::SequenceGap { expected: seq + 1, found: record.seq });
            }
            let apply = service.apply(&record.batch).map_err(|error| {
                let error = match error {
                    ServiceError::Apply(error) => error,
                    _ => unreachable!("service apply emitted a non-apply error"),
                };
                DurableError::Replay { seq: record.seq, error }
            })?;
            ring.lock().expect("delta ring lock").publish(record.seq, service_payload(&apply));
            seq = record.seq;
        }
        let durable = DurableMatchService {
            dir,
            opts,
            wal,
            service,
            seq,
            last_checkpoint_seq: base_seq,
            dirty: false,
            deltas: ring,
        };
        Ok((durable, ids))
    }

    /// Durably applies one batch to every registered pattern: validate once
    /// against the current graph, append to the WAL **once**, then run the
    /// service's shared-classification apply. The returned [`ServiceApply`]
    /// carries every pattern's outcome; the `Ok` deltas are published as one
    /// pattern-keyed bundle at the batch's sequence number.
    ///
    /// A per-pattern `Err` outcome (contained pipeline panic) does **not**
    /// fail the batch: the graph and every other pattern committed it, the
    /// poisoned pattern's delta is absent from the bundle, and
    /// [`DurableMatchService::recover_pattern`] restores it. Only a
    /// shared-stage panic after the append fails the batch as a whole —
    /// the log is then ahead of memory and the service turns
    /// [`ApplyError::Poisoned`] until [`DurableMatchService::recover`].
    ///
    /// # Panics
    /// Armed durability failpoints (`wal.*`, `ckpt.*`) panic through this
    /// method — the in-process crash model, exactly as on [`DurableIndex`].
    pub fn apply(&mut self, batch: &BatchUpdate) -> Result<ServiceApply, DurableError> {
        if self.dirty {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        let rejections = validate_batch(self.service.graph(), batch);
        if !rejections.is_empty() {
            return Err(DurableError::Apply(ApplyError::InvalidBatch(rejections)));
        }
        let seq = self.seq + 1;
        self.wal.append(seq, batch)?;
        self.seq = seq;
        match self.service.apply(batch) {
            Ok(apply) => {
                self.deltas.lock().expect("delta ring lock").publish(seq, service_payload(&apply));
                if self.opts.checkpoint_every > 0
                    && seq - self.last_checkpoint_seq >= self.opts.checkpoint_every
                {
                    self.checkpoint()?;
                }
                Ok(apply)
            }
            Err(error) => {
                // The batch is logged but the shared stage aborted (graph
                // rolled back): the log is ahead of memory. `recover`
                // replays it — logged means committed.
                self.dirty = true;
                let error = match error {
                    ServiceError::Apply(error) => error,
                    _ => unreachable!("service apply emitted a non-apply error"),
                };
                Err(DurableError::Apply(error))
            }
        }
    }

    /// Takes a checkpoint of the current graph on demand (see
    /// [`DurableIndex::checkpoint`]). Per-pattern poison does not block
    /// checkpointing — the graph itself is fully committed; only a pending
    /// service-level recovery does.
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        if self.dirty {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        if self.seq == self.last_checkpoint_seq {
            return Ok(self.seq);
        }
        write_checkpoint(&self.dir, self.seq, self.service.graph())?;
        self.wal.rotate(self.seq + 1)?;
        self.last_checkpoint_seq = self.seq;
        if let Some(oldest_retained) = prune_checkpoints(&self.dir, self.opts.keep_checkpoints)? {
            self.wal.prune_segments_below(oldest_retained)?;
        }
        Ok(self.seq)
    }

    /// Reconciles the whole service from disk after a contained shared-stage
    /// panic: reload the newest checkpoint, re-register every currently
    /// registered pattern (in id order) and replay the WAL tail. The live
    /// ring is passed through, so subscriptions survive and replay re-emits
    /// exactly the unpublished tail. Returns the id remapping (old → new);
    /// ids are unchanged when no pattern was ever deregistered.
    pub fn recover(
        &mut self,
    ) -> Result<std::collections::BTreeMap<PatternId, PatternId>, DurableError> {
        let old_ids = self.service.pattern_ids();
        let patterns = old_ids
            .iter()
            .map(|&id| self.service.pattern(id).expect("pattern_ids returned a stale id").clone())
            .collect::<Vec<Pattern>>();
        let (fresh, new_ids) = Self::open_existing(
            self.dir.clone(),
            &patterns,
            self.opts.clone(),
            self.deltas.clone(),
        )?;
        *self = fresh;
        Ok(old_ids.into_iter().zip(new_ids).collect())
    }

    /// Rebuilds one poisoned pattern from the current graph, leaving the
    /// log, the other patterns and every subscription untouched — the
    /// durable lift of [`MatchService::recover`]. The pattern's delta stream
    /// resumes with the next committed batch (the batches it missed are
    /// visible as its absence from their bundles).
    pub fn recover_pattern(&mut self, id: PatternId) -> Result<(), DurableError> {
        if self.dirty {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        self.service.recover(id).map_err(service_to_durable)
    }

    /// Subscribes to the pattern-keyed delta stream from the current
    /// sequence number on. See [`ServiceSubscription`].
    pub fn subscribe(&self) -> ServiceSubscription {
        self.subscribe_from(self.seq + 1)
    }

    /// Subscribes starting at an explicit WAL sequence number — the same
    /// `subscribe_from` semantics as [`DurableIndex::subscribe_from`]:
    /// sequences no longer buffered surface as one
    /// [`ServiceDeltaEvent::Lagged`] before the stream resumes,
    /// `subscribe_from(0)` is `subscribe_from(1)` (batch sequences start at
    /// 1), and a sequence above the high-water mark is a future cursor that
    /// skips — never lags over — the batches before it.
    pub fn subscribe_from(&self, seq: u64) -> ServiceSubscription {
        ServiceSubscription {
            cursor: RingCursor { ring: self.deltas.clone(), next_seq: seq.max(1) },
            pending: VecDeque::new(),
        }
    }

    /// The wrapped in-memory service (read-only: matches, pattern ids,
    /// interning statistics, the graph).
    pub fn service(&self) -> &MatchService<E> {
        &self.service
    }

    /// The current match of one pattern (see [`MatchService::matches`]), or
    /// [`ApplyError::Poisoned`] while a service-level recovery is pending.
    pub fn try_matches(&self, id: PatternId) -> Result<Arc<MatchRelation>, DurableError> {
        if self.dirty {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        self.service.matches(id).map_err(service_to_durable)
    }

    /// The sequence number of the last durably logged batch.
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// The sequence number the newest checkpoint covers.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// True iff the log may be ahead of the in-memory service and
    /// [`DurableMatchService::recover`] is required. Per-pattern poison is
    /// reported per pattern ([`MatchService::poisoned`]), not here.
    pub fn poisoned(&self) -> bool {
        self.dirty
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the service was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }
}

/// A [`DurableMatchService`] ingests through its durable apply path: one WAL
/// append per coalesced batch, the shared-classification fan-out, one
/// published pattern-keyed bundle;
/// [`IngestApply::seq`](crate::ingest::IngestApply::seq) carries the WAL
/// sequence number, so ticket groupings line up with
/// [`ServiceSubscription`] events. Service-level poison surfaces as a typed
/// sink error; an armed durability failpoint panics through and kills the
/// ingest (the crash model) — reopen the directory via
/// [`DurableMatchService::open`] and the WAL-aligned replay re-publishes
/// whatever the crash swallowed.
impl<E: IncrementalEngine> crate::ingest::IngestSink for DurableMatchService<E> {
    type Outcome = ServiceApply;
    type Error = DurableError;

    fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<ServiceApply, DurableError> {
        self.apply(batch)
    }

    fn sink_graph(&self) -> &DataGraph {
        self.service.graph()
    }

    fn committed_seq(&self) -> u64 {
        self.sequence()
    }
}
