//! [`DurableIndex`]: the crash-recovery orchestrator over either engine.
//!
//! The in-memory engines guarantee a *transactional* batch boundary; this
//! module adds the *durable* one. A [`DurableIndex<E>`] owns a directory of
//! on-disk state — checkpoints plus a write-ahead log, both provided by
//! [`igpm_graph::wal`] — and keeps it ahead of the in-memory state at all
//! times: every batch is validated, **logged, then applied**. Kill the
//! process at any instruction and [`DurableIndex::open`] reconstructs a
//! state bit-identical to the never-crashed run:
//!
//! 1. sweep stray `*.tmp` files (a checkpoint that crashed before its
//!    atomic rename);
//! 2. load the newest checkpoint that passes its CRC, falling back to older
//!    retained ones ([`igpm_graph::wal::load_latest_checkpoint`]);
//! 3. rebuild the engine from the checkpoint graph via the ordinary sharded
//!    cold-start build ([`IncrementalEngine::rebuild_with_shards`]);
//! 4. open the WAL — truncating it at the first torn or corrupt record —
//!    and replay every record with a sequence number above the checkpoint's
//!    through the normal `try_apply_batch` path.
//!
//! Bit-identity is inherited rather than re-proven: the cold-start build
//! equals the grown index by the build-equivalence invariant, replay uses
//! the very same batch path the live run used, and the graph snapshot
//! preserves adjacency order exactly. Recovery performs **no writes** to the
//! log or the checkpoints, so a crash *during* recovery (the double-crash
//! case) just recovers again from the same on-disk state.
//!
//! The full recovery algorithm, the WAL record format and the fsync
//! trade-off table live in the "Durability" section of `RECOVERY.md`.

use crate::incremental::IncrementalEngine;
use crate::stats::AffStats;
use igpm_graph::io::IoError;
use igpm_graph::shard::configured_shards;
use igpm_graph::update::validate_batch;
use igpm_graph::wal::{
    configured_fsync, list_checkpoints, load_latest_checkpoint, prune_checkpoints,
    sweep_temp_files, write_checkpoint, FsyncPolicy, Wal,
};
use igpm_graph::{ApplyError, BatchUpdate, DataGraph, MatchRelation, Pattern};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Tuning knobs of a [`DurableIndex`]. `Default` reads the environment:
/// `IGPM_FSYNC` for the fsync policy, `IGPM_SHARDS` for the shard count.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// What a WAL append forces to stable storage
    /// ([`igpm_graph::wal::FsyncPolicy`]; default: `IGPM_FSYNC`, i.e.
    /// `always` unless overridden).
    pub fsync: FsyncPolicy,
    /// Take a checkpoint automatically once this many batches accumulated
    /// since the last one. `0` (the default) disables automatic
    /// checkpointing; [`DurableIndex::checkpoint`] is always available on
    /// demand.
    pub checkpoint_every: u64,
    /// How many checkpoints to retain (minimum 1; default 2). Retaining more
    /// than one is what makes the corrupt-newest-checkpoint fallback *work*:
    /// WAL segments are only pruned below the **oldest retained** checkpoint,
    /// so every retained checkpoint still has its replay tail.
    pub keep_checkpoints: usize,
    /// Shard count for builds, replays and batch application (default:
    /// [`configured_shards`], the `IGPM_SHARDS` knob).
    pub shards: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: configured_fsync(),
            checkpoint_every: 0,
            keep_checkpoints: 2,
            shards: configured_shards(),
        }
    }
}

/// Typed error of the durable-index APIs.
#[derive(Debug)]
pub enum DurableError {
    /// An I/O operation on the WAL or the durability directory failed.
    Io(std::io::Error),
    /// A checkpoint could not be written or none could be verified.
    Snapshot(IoError),
    /// The in-memory apply path rejected or aborted the batch (validation
    /// failure, poisoned index, or a contained mid-batch panic).
    Apply(ApplyError),
    /// The WAL is missing a batch: its records jump over a sequence number
    /// the checkpoint does not cover. On-disk state was tampered with or
    /// segments were deleted out-of-band; recovery refuses to guess.
    SequenceGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number the log actually continued with.
        found: u64,
    },
    /// A logged batch failed to re-apply during recovery replay — possible
    /// only if the on-disk state was modified out-of-band (a logged batch
    /// was validated against exactly this state before being logged).
    Replay {
        /// The sequence number of the failing record.
        seq: u64,
        /// The apply error it failed with.
        error: ApplyError,
    },
    /// The directory holds durable state (WAL segments) but no checkpoint,
    /// or recovery was attempted on a directory that never held one.
    NoCheckpoint,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(error) => write!(f, "durability i/o error: {error}"),
            DurableError::Snapshot(error) => write!(f, "checkpoint error: {error}"),
            DurableError::Apply(error) => write!(f, "apply error: {error}"),
            DurableError::SequenceGap { expected, found } => {
                write!(f, "write-ahead log gap: expected batch {expected}, found {found}")
            }
            DurableError::Replay { seq, error } => {
                write!(f, "replay of logged batch {seq} failed: {error}")
            }
            DurableError::NoCheckpoint => {
                write!(f, "durable state has no checkpoint (log present without one?)")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(error) => Some(error),
            DurableError::Snapshot(error) => Some(error),
            DurableError::Apply(error) | DurableError::Replay { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(error: std::io::Error) -> Self {
        DurableError::Io(error)
    }
}

impl From<IoError> for DurableError {
    fn from(error: IoError) -> Self {
        DurableError::Snapshot(error)
    }
}

/// A durably-backed incremental index: an engine `E` (either
/// [`SimulationIndex`](crate::incremental::sim::SimulationIndex) or
/// [`BoundedIndex`](crate::incremental::bsim::BoundedIndex)), its data
/// graph, and the on-disk WAL + checkpoint state that lets the pair survive
/// a kill at any instruction. See the [module docs](self) for the recovery
/// algorithm and `RECOVERY.md` for the full durability story.
#[derive(Debug)]
pub struct DurableIndex<E> {
    dir: PathBuf,
    opts: DurableOptions,
    wal: Wal,
    graph: DataGraph,
    index: E,
    seq: u64,
    last_checkpoint_seq: u64,
    /// Set when the in-memory state may lag the log (a contained engine
    /// panic after the batch was already logged): every mutation and read
    /// then errors with [`ApplyError::Poisoned`] until
    /// [`DurableIndex::recover`] reconciles from disk.
    dirty: bool,
}

/// True iff `dir` contains WAL segment files.
fn has_wal_segments(dir: &Path) -> std::io::Result<bool> {
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(name) = name.to_str() {
            if name.starts_with("wal-") && name.ends_with(".log") {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

impl<E: IncrementalEngine> DurableIndex<E> {
    /// Opens (creating it on first use) the durable state in `dir` for
    /// `pattern`. On first use — no checkpoint and no WAL — a bootstrap
    /// checkpoint of `initial_graph` is written at sequence number 0;
    /// afterwards `initial_graph` is ignored and the state comes entirely
    /// from disk via the recovery algorithm in the [module docs](self).
    /// A directory with WAL segments but no checkpoint is refused
    /// ([`DurableError::NoCheckpoint`]) rather than silently restarted.
    pub fn open(
        dir: impl Into<PathBuf>,
        pattern: &Pattern,
        initial_graph: &DataGraph,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        sweep_temp_files(&dir)?;
        if list_checkpoints(&dir)?.is_empty() {
            if has_wal_segments(&dir)? {
                return Err(DurableError::NoCheckpoint);
            }
            write_checkpoint(&dir, 0, initial_graph)?;
        }
        Self::open_existing(dir, pattern, opts)
    }

    /// The recovery path proper: requires a checkpoint to exist.
    fn open_existing(
        dir: PathBuf,
        pattern: &Pattern,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        sweep_temp_files(&dir)?;
        let load = load_latest_checkpoint(&dir)?.ok_or(DurableError::NoCheckpoint)?;
        let base_seq = load.checkpoint.seq;
        let mut graph = load.checkpoint.graph;
        let mut index = E::rebuild_with_shards(pattern, &graph, opts.shards);
        let (wal, scan) = Wal::open(&dir, opts.fsync)?;
        let mut seq = base_seq;
        for record in scan.records {
            if record.seq <= base_seq {
                continue; // covered by the checkpoint; retained for older ones
            }
            if record.seq != seq + 1 {
                return Err(DurableError::SequenceGap { expected: seq + 1, found: record.seq });
            }
            index
                .try_apply_batch_with_shards(&mut graph, &record.batch, opts.shards)
                .map_err(|error| DurableError::Replay { seq: record.seq, error })?;
            seq = record.seq;
        }
        Ok(DurableIndex {
            dir,
            opts,
            wal,
            graph,
            index,
            seq,
            last_checkpoint_seq: base_seq,
            dirty: false,
        })
    }

    /// Durably applies one batch: validate against the current graph, append
    /// to the WAL (syncing per the fsync policy), then run the engine's
    /// transactional `try_apply_batch`. Auto-checkpoints afterwards when
    /// [`DurableOptions::checkpoint_every`] is due.
    ///
    /// An invalid batch is rejected *before* it is logged — the WAL holds
    /// validated batches only, which is what makes replay infallible. If the
    /// engine aborts the batch with a contained panic *after* the append,
    /// the log is ahead of memory: the index turns [`ApplyError::Poisoned`]
    /// until [`DurableIndex::recover`] reconciles from disk, after which the
    /// logged batch **is** applied (logged means committed).
    ///
    /// # Panics
    /// An armed durability failpoint (`wal.append-header`, `wal.append-body`,
    /// `wal.fsync`, `ckpt.*`, `wal.prune`) panics through this method — that
    /// is the crash model, the in-process stand-in for `kill -9`. The object
    /// must then be treated as dead: drop it and [`DurableIndex::open`] anew
    /// (which is exactly what the crash-recovery suite does).
    pub fn apply(&mut self, batch: &BatchUpdate) -> Result<AffStats, DurableError> {
        if self.dirty || self.index.poisoned() {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        let rejections = validate_batch(&self.graph, batch);
        if !rejections.is_empty() {
            return Err(DurableError::Apply(ApplyError::InvalidBatch(rejections)));
        }
        let seq = self.seq + 1;
        self.wal.append(seq, batch)?;
        self.seq = seq;
        match self.index.try_apply_batch_with_shards(&mut self.graph, batch, self.opts.shards) {
            Ok(stats) => {
                if self.opts.checkpoint_every > 0
                    && seq - self.last_checkpoint_seq >= self.opts.checkpoint_every
                {
                    self.checkpoint()?;
                }
                Ok(stats)
            }
            Err(error) => {
                self.dirty = true;
                Err(DurableError::Apply(error))
            }
        }
    }

    /// Takes a checkpoint of the current state on demand: write the graph +
    /// sequence number atomically, rotate the WAL onto a fresh segment,
    /// prune checkpoints beyond [`DurableOptions::keep_checkpoints`] and WAL
    /// segments below the oldest retained one. Returns the covered sequence
    /// number. A no-op when nothing was applied since the last checkpoint.
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        if self.dirty || self.index.poisoned() {
            return Err(DurableError::Apply(ApplyError::Poisoned));
        }
        if self.seq == self.last_checkpoint_seq {
            return Ok(self.seq);
        }
        write_checkpoint(&self.dir, self.seq, &self.graph)?;
        self.wal.rotate(self.seq + 1)?;
        self.last_checkpoint_seq = self.seq;
        if let Some(oldest_retained) = prune_checkpoints(&self.dir, self.opts.keep_checkpoints)? {
            self.wal.prune_segments_below(oldest_retained)?;
        }
        Ok(self.seq)
    }

    /// Reconciles in-memory state from disk after a contained engine panic
    /// (the [`ApplyError::Poisoned`] state): re-runs the full recovery
    /// algorithm in place — reload the newest checkpoint, rebuild, replay
    /// the WAL tail. This is the durable composition of the engines'
    /// in-memory `recover()`: instead of rebuilding from a possibly-lagging
    /// in-memory graph, the rebuild source is the log, which is never behind.
    pub fn recover(&mut self) -> Result<(), DurableError> {
        let pattern = self.index.pattern().clone();
        *self = Self::open_existing(self.dir.clone(), &pattern, self.opts.clone())?;
        Ok(())
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The wrapped engine (e.g. to take an `aux_snapshot()`).
    pub fn engine(&self) -> &E {
        &self.index
    }

    /// The current maximum match, or [`ApplyError::Poisoned`] when the index
    /// needs [`DurableIndex::recover`] first.
    pub fn try_matches(&self) -> Result<MatchRelation, ApplyError> {
        if self.dirty {
            return Err(ApplyError::Poisoned);
        }
        self.index.try_matches()
    }

    /// The sequence number of the last durably logged batch.
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// The sequence number the newest checkpoint covers.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// True iff the index must be [`recover`](DurableIndex::recover)ed
    /// before further use (in-memory state may lag the log, or the engine
    /// poisoned itself).
    pub fn poisoned(&self) -> bool {
        self.dirty || self.index.poisoned()
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the index was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }
}
