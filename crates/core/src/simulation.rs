//! Batch graph simulation (`Matchs`).
//!
//! Graph simulation finds the maximum relation `S ⊆ V_p × V` such that every
//! pair `(u, v) ∈ S` satisfies the node predicate and, for every pattern edge
//! `(u, u')`, `v` has a child `v'` with `(u', v') ∈ S` (Section 1). The
//! implementation follows the counter-based refinement of Henzinger,
//! Henzinger and Kopke (1995): each candidate keeps, per pattern child, the
//! number of its graph children still matching that child; when a counter
//! drops to zero the candidate is discarded and the removal propagates to its
//! parents. The total cost is `O((|V| + |V_p|)(|E| + |E_p|))`.

use crate::stats::AffStats;
use igpm_graph::hash::FastHashSet;
use igpm_graph::shard::{configured_shards, ShardPlan, PARALLEL_WORK_THRESHOLD};
use igpm_graph::{
    CandidateDomain, DataGraph, LabelIndex, MatchRelation, NodeId, Pattern, PatternNodeId,
    ResultGraph,
};

/// The candidate sets: for each pattern node, the data nodes satisfying its
/// predicate (`candt(u) ∪ match(u)` before any structural refinement).
///
/// Builds a [`LabelIndex`] internally (one `O(|V|)` pass) and routes every
/// pattern node through [`candidates_with_index`], so label-bearing predicates
/// — the overwhelmingly common case — enumerate their candidates in
/// `O(|candidates|)` instead of scanning all of `V` once per pattern node.
/// Both the index pass and the predicate scans run sharded across
/// [`configured_shards`] node ranges (see [`candidates_with_shards`]).
pub fn candidates(pattern: &Pattern, graph: &DataGraph) -> Vec<Vec<NodeId>> {
    candidates_with_shards(pattern, graph, configured_shards())
}

/// [`candidates`] with an explicit shard count (`IGPM_SHARDS` and machine
/// parallelism are ignored): the label-index pass buckets per node-range
/// slice and merges in node order ([`LabelIndex::build_with_shards`]), and
/// the per-pattern-node predicate scans evaluate their domain in contiguous
/// chunks on scoped threads, concatenated in chunk (= ascending node) order.
/// The lists are identical for every shard count; `shards = 1` is the
/// sequential scan.
pub fn candidates_with_shards(
    pattern: &Pattern,
    graph: &DataGraph,
    shards: usize,
) -> Vec<Vec<NodeId>> {
    let index = LabelIndex::build_with_shards(graph, shards);
    candidates_with_index_sharded(pattern, graph, &index, shards)
}

/// [`candidates`] against a pre-built label index (reusable across patterns
/// over the same graph snapshot).
///
/// Per pattern node, in decreasing order of selectivity:
/// 1. pure label predicate → the index bucket verbatim;
/// 2. predicate containing a `label = l` atom → full predicate evaluated over
///    the bucket only;
/// 3. anything else → predicate evaluated over all nodes (the seed behaviour).
pub fn candidates_with_index(
    pattern: &Pattern,
    graph: &DataGraph,
    index: &LabelIndex,
) -> Vec<Vec<NodeId>> {
    candidates_with_index_sharded(pattern, graph, index, 1)
}

/// [`candidates_with_index`] with the predicate scans sharded: each pattern
/// node's evaluation domain (its label bucket, or all of `V` when the
/// predicate carries no label atom) is split into contiguous chunks evaluated
/// read-only on scoped threads and concatenated in chunk order — the exact
/// list the sequential scan produces. Domains below
/// [`PARALLEL_WORK_THRESHOLD`] run inline; the execution strategy never
/// changes the lists.
pub fn candidates_with_index_sharded(
    pattern: &Pattern,
    graph: &DataGraph,
    index: &LabelIndex,
    shards: usize,
) -> Vec<Vec<NodeId>> {
    pattern
        .nodes()
        .map(|u| candidates_for_predicate(pattern.predicate(u), graph, index, shards))
        .collect()
}

/// Candidate list of one predicate — the per-pattern-node body of
/// [`candidates_with_index_sharded`], routed through
/// [`LabelIndex::predicate_domain`] so the selectivity triage lives in one
/// place. Exposed crate-wide for the multi-pattern service, whose candidate
/// interner computes lists per *distinct* predicate rather than per pattern
/// node.
pub(crate) fn candidates_for_predicate(
    pred: &igpm_graph::Predicate,
    graph: &DataGraph,
    index: &LabelIndex,
    shards: usize,
) -> Vec<NodeId> {
    let satisfied = |v: &NodeId| pred.satisfied_by(graph.attrs(*v));
    match index.predicate_domain(pred) {
        CandidateDomain::Bucket(bucket) => bucket.to_vec(),
        CandidateDomain::FilteredBucket(bucket) => filter_sharded(bucket, &satisfied, shards),
        CandidateDomain::AllNodes => {
            let all: Vec<NodeId> = graph.nodes().collect();
            filter_sharded(&all, &satisfied, shards)
        }
    }
}

/// Filters an ascending node list through a pure predicate, fanning the
/// evaluation out over contiguous chunks when the domain is large enough to
/// amortise the spawns. Chunk results are concatenated in chunk order, so the
/// output equals the sequential filter for every shard count.
fn filter_sharded(
    domain: &[NodeId],
    satisfied: &(dyn Fn(&NodeId) -> bool + Sync),
    shards: usize,
) -> Vec<NodeId> {
    let plan = ShardPlan::new(domain.len(), shards.max(1));
    if plan.count == 1 || domain.len() < PARALLEL_WORK_THRESHOLD {
        return domain.iter().filter(|v| satisfied(v)).copied().collect();
    }
    let chunks: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.count)
            .map(|shard| {
                let slice = &domain[plan.range(shard)];
                scope.spawn(move || slice.iter().filter(|v| satisfied(v)).copied().collect())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("candidate scan shard panicked")).collect()
    });
    chunks.concat()
}

/// Computes the maximum graph simulation `M_sim(P, G)` of a *normal* pattern.
///
/// Returns the empty relation when `P ⋬_sim G`.
///
/// # Panics
/// Panics if the pattern is not normal (has an edge bound other than 1);
/// bounded patterns are handled by [`crate::bounded::match_bounded`].
pub fn match_simulation(pattern: &Pattern, graph: &DataGraph) -> MatchRelation {
    assert!(pattern.is_normal(), "graph simulation is defined on normal patterns only");
    let (relation, _) = match_simulation_with_stats(pattern, graph);
    relation
}

/// [`match_simulation`] variant that also reports work statistics (used by
/// tests that sanity-check the refinement volume).
pub fn match_simulation_with_stats(
    pattern: &Pattern,
    graph: &DataGraph,
) -> (MatchRelation, AffStats) {
    let np = pattern.node_count();
    let mut stats = AffStats::default();

    // sim(u): candidates of u, refined in place.
    let mut sim: Vec<FastHashSet<NodeId>> =
        candidates(pattern, graph).into_iter().map(|list| list.into_iter().collect()).collect();

    // If some pattern node has no candidate at all, the match is empty.
    if sim.iter().any(FastHashSet::is_empty) {
        return (MatchRelation::empty(np), stats);
    }

    // cnt[u'][v] = |children(v) ∩ sim(u')|.
    let mut cnt: Vec<Vec<u32>> = vec![vec![0; graph.node_count()]; np];
    for (u_idx, members) in sim.iter().enumerate() {
        for &w in members {
            for &p in graph.parents(w) {
                cnt[u_idx][p.index()] += 1;
            }
        }
    }

    // Worklist of (pattern node, data node) pairs to remove from sim.
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    for edge in pattern.edges() {
        let u = edge.from;
        let u_child = edge.to;
        for &v in &sim[u.index()] {
            if cnt[u_child.index()][v.index()] == 0 {
                worklist.push((u, v));
            }
        }
    }

    while let Some((u, v)) = worklist.pop() {
        if !sim[u.index()].remove(&v) {
            continue;
        }
        stats.nodes_visited += 1;
        stats.aux_changes += 1;
        if sim[u.index()].is_empty() {
            // The pattern node lost all matches: P does not match G.
            return (MatchRelation::empty(np), stats);
        }
        // v no longer simulates u: parents of v lose a witness for u.
        for &p in graph.parents(v) {
            let counter = &mut cnt[u.index()][p.index()];
            *counter -= 1;
            if *counter == 0 {
                for &(u_parent, _) in pattern.parents(u) {
                    if sim[u_parent.index()].contains(&p) {
                        worklist.push((u_parent, p));
                    }
                }
            }
        }
    }

    let relation = MatchRelation::from_lists(sim.into_iter().map(|set| set.into_iter().collect()));
    (relation, stats)
}

/// Builds the result graph `G_r` of a simulation match: one edge `(v, v')` per
/// pattern edge `(u, u')` with `v ∈ match(u)`, `v' ∈ match(u')` and `(v, v')`
/// an edge of the data graph.
pub fn simulation_result_graph(
    pattern: &Pattern,
    graph: &DataGraph,
    matches: &MatchRelation,
) -> ResultGraph {
    let mut result = ResultGraph::new();
    for (u, v) in matches.pairs() {
        let _ = u;
        result.add_node(v);
    }
    for (edge_idx, edge) in pattern.edges().iter().enumerate() {
        for &v in matches.matches(edge.from) {
            for &w in graph.children(v) {
                if matches.contains(edge.to, w) {
                    result.add_edge(v, w, edge_idx as u32);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::{Attributes, Predicate};

    /// The FriendFeed fragment of Fig. 4 (without the e1..e5 insertions) and
    /// the normal pattern P3': CTO -> DB -> Bio, CTO -> Bio, DB -> CTO.
    fn friendfeed() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let ann = g.add_node(
            Attributes::new().with("name", "Ann").with("job", "CTO").with("label", "CTO"),
        );
        let pat =
            g.add_node(Attributes::new().with("name", "Pat").with("job", "DB").with("label", "DB"));
        let dan =
            g.add_node(Attributes::new().with("name", "Dan").with("job", "DB").with("label", "DB"));
        let bill = g.add_node(
            Attributes::new().with("name", "Bill").with("job", "Bio").with("label", "Bio"),
        );
        let mat = g.add_node(
            Attributes::new().with("name", "Mat").with("job", "Bio").with("label", "Bio"),
        );
        let don = g.add_node(
            Attributes::new().with("name", "Don").with("job", "CTO").with("label", "CTO"),
        );
        let tom = g.add_node(
            Attributes::new().with("name", "Tom").with("job", "Bio").with("label", "Bio"),
        );
        let ross = g.add_node(
            Attributes::new().with("name", "Ross").with("job", "Med").with("label", "Med"),
        );
        // Edges of the base FriendFeed fragment.
        g.add_edge(ann, pat); // CTO -> DB
        g.add_edge(pat, ann); // DB -> CTO
        g.add_edge(pat, bill); // DB -> Bio
        g.add_edge(ann, bill); // CTO -> Bio
        g.add_edge(dan, mat); // DB -> Bio
        g.add_edge(mat, dan);
        g.add_edge(ann, dan); // CTO -> DB
        g.add_edge(dan, ann); // DB -> CTO
        g.add_edge(ross, tom); // Med -> Bio
        (g, vec![ann, pat, dan, bill, mat, don, tom, ross])
    }

    fn pattern_p3_normal() -> Pattern {
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_normal_edge(cto, db);
        p.add_normal_edge(db, cto);
        p.add_normal_edge(db, bio);
        p.add_normal_edge(cto, bio);
        p
    }

    #[test]
    fn friendfeed_example_5_2_matches() {
        let (g, nodes) = friendfeed();
        let p = pattern_p3_normal();
        let m = match_simulation(&p, &g);
        let (ann, pat, dan, bill, mat, tom) =
            (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[6]);
        // As in Example 5.2, Ann is the only CTO match (Don has no DB/Bio
        // children) and Pat/Dan are the DB matches. Every Bio node matches the
        // childless pattern node Bio.
        assert_eq!(m.matches(igpm_graph::PatternNodeId(0)), &[ann]);
        assert_eq!(m.matches(igpm_graph::PatternNodeId(1)), &[pat, dan]);
        assert_eq!(m.matches(igpm_graph::PatternNodeId(2)), &[bill, mat, tom]);
        assert!(m.is_total());
    }

    #[test]
    fn simulation_fails_when_witness_missing() {
        let (mut g, nodes) = friendfeed();
        let p = pattern_p3_normal();
        // Remove DB -> Bio witnesses: Pat -> Bill and Dan -> Mat.
        g.remove_edge(nodes[1], nodes[3]);
        g.remove_edge(nodes[2], nodes[4]);
        let m = match_simulation(&p, &g);
        assert!(m.is_empty(), "no DB node can reach a Bio node any more");
    }

    #[test]
    fn cycle_pattern_on_acyclic_graph_has_no_match() {
        // Theorem 5.1(1) gadget: a two-node cycle pattern over label `a`
        // matched against a path of `a` nodes has no simulation match.
        let mut p = Pattern::new();
        let u1 = p.add_labeled_node("a");
        let u2 = p.add_labeled_node("a");
        p.add_normal_edge(u1, u2);
        p.add_normal_edge(u2, u1);

        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| g.add_labeled_node("a")).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        assert!(match_simulation(&p, &g).is_empty());

        // Closing the cycle makes every node a match.
        g.add_edge(nodes[5], nodes[0]);
        let m = match_simulation(&p, &g);
        assert_eq!(m.matches(u1).len(), 6);
        assert_eq!(m.matches(u2).len(), 6);
    }

    #[test]
    fn empty_when_a_pattern_node_has_no_candidates() {
        let (g, _) = friendfeed();
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let ghost = p.add_node(Predicate::label("Ghost"));
        p.add_normal_edge(cto, ghost);
        assert!(match_simulation(&p, &g).is_empty());
    }

    #[test]
    fn single_node_pattern_matches_all_candidates() {
        let (g, _) = friendfeed();
        let mut p = Pattern::new();
        p.add_node(Predicate::label("Bio"));
        let m = match_simulation(&p, &g);
        assert_eq!(m.matches(igpm_graph::PatternNodeId(0)).len(), 3);
    }

    #[test]
    fn result_graph_structure() {
        let (g, nodes) = friendfeed();
        let p = pattern_p3_normal();
        let m = match_simulation(&p, &g);
        let gr = simulation_result_graph(&p, &g, &m);
        let (ann, pat, dan, bill, mat) = (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4]);
        assert_eq!(gr.node_count(), 6);
        assert!(gr.has_edge(ann, pat));
        assert!(gr.has_edge(pat, bill));
        assert!(gr.has_edge(dan, mat));
        assert!(gr.has_edge(ann, bill));
        assert!(!gr.has_edge(ann, mat), "Ann has no direct edge to Mat");
        assert!(gr.contains_node(dan));
        assert!(!gr.contains_node(nodes[7]), "Ross matches nothing");
    }

    #[test]
    fn candidates_lists_satisfying_nodes() {
        let (g, _) = friendfeed();
        let p = pattern_p3_normal();
        let cands = candidates(&p, &g);
        assert_eq!(cands[0].len(), 2, "two CTO nodes");
        assert_eq!(cands[1].len(), 2, "two DB nodes");
        assert_eq!(cands[2].len(), 3, "three Bio nodes");
    }

    #[test]
    #[should_panic(expected = "normal patterns")]
    fn bounded_patterns_are_rejected() {
        let (g, _) = friendfeed();
        let mut p = Pattern::new();
        let a = p.add_node(Predicate::label("CTO"));
        let b = p.add_node(Predicate::label("Bio"));
        p.add_edge(a, b, igpm_graph::EdgeBound::Hops(2));
        let _ = match_simulation(&p, &g);
    }

    #[test]
    fn stats_report_refinement_work() {
        let (g, _) = friendfeed();
        let p = pattern_p3_normal();
        let (_, stats) = match_simulation_with_stats(&p, &g);
        // Don (a CTO with no DB child) must have been refined away.
        assert!(stats.aux_changes >= 1);
    }
}
