//! Multi-pattern matching service: many registered patterns, one shared
//! data graph, pattern-independent work done once per batch.
//!
//! The paper maintains one auxiliary structure per pattern; a workload that
//! watches many patterns over the *same* evolving graph would redo the
//! pattern-independent work — batch validation, the `minDelta` net-effect
//! reduction, the graph mutation and (for bounded simulation) the entire
//! landmark/distance maintenance — once per pattern. [`MatchService`] hoists
//! exactly that work to the service level:
//!
//! * [`MatchService::apply`] validates the batch once, runs one net-effect
//!   reduction, mutates the graph once and maintains the shared auxiliary
//!   state once ([`IncrementalEngine::shared_mutate`]); every registered
//!   pattern then runs only its pattern-dependent pipeline
//!   ([`IncrementalEngine::try_apply_shared`]) and the outcomes come back
//!   keyed by [`PatternId`].
//! * Candidate sets are interned across registrations: two pattern nodes
//!   with the same predicate (its canonical [`std::fmt::Display`] rendering
//!   is the intern key) share one `Arc`'d candidate list, computed once.
//! * [`MatchService::matches`] serves epoch-stamped snapshot views: the
//!   sorted [`MatchRelation`] is materialised at most once per pattern per
//!   epoch and shared behind an `Arc` until the next applied batch.
//!
//! The correctness contract is the **sharing invariance** extension of the
//! shard invariance the engines already uphold: for every shard count, every
//! pattern's [`ApplyOutcome`] (statistics *and* delta) is bit-identical to
//! what an independent single-pattern index — built over the same graph with
//! the same shared auxiliary state — would produce for the same stream
//! (`tests/service_conformance.rs`).
//!
//! # Failure model
//!
//! A panic inside the shared stage (graph mutation / landmark maintenance)
//! rolls the graph back and rebuilds the shared state from the rolled-back
//! graph; no engine has been touched, so the service keeps serving every
//! pattern. A panic inside one pattern's pipeline poisons **that pattern
//! only** ([`ApplyError::StagePanicked`] in its outcome slot, subsequent
//! reads return [`ApplyError::Poisoned`]); the graph and every other pattern
//! have already committed the batch, and [`MatchService::recover`] rebuilds
//! the one poisoned index from the current graph.

use crate::incremental::{
    panic_message, ApplyOutcome, BuildError, IncrementalEngine, SharedBatch, SharedMutation,
};
use crate::simulation::candidates_for_predicate;
use igpm_graph::shard::{configured_shards, ShardPlan};
use igpm_graph::update::{reduce_batch_sharded, validate_batch, StagePanic};
use igpm_graph::{
    ApplyError, Attributes, BatchUpdate, DataGraph, FastHashMap, LabelIndex, MatchRelation, NodeId,
    Pattern, Predicate, Update,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Stable handle to a pattern registered with a [`MatchService`].
///
/// Handles are generation-checked: deregistering a pattern invalidates its
/// id immediately, and a slot reused by a later registration yields a fresh
/// id that old handles cannot alias. Ids order by registration slot, so
/// iterating a [`ServiceApply::outcomes`] map visits patterns in a stable,
/// deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId {
    slot: u32,
    gen: u32,
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern#{}.{}", self.slot, self.gen)
    }
}

/// Everything a [`MatchService::apply`] reports: the new epoch and one
/// outcome per registered pattern.
#[derive(Debug, Clone)]
pub struct ServiceApply {
    /// The epoch the batch committed as; snapshot views returned by
    /// [`MatchService::matches`] are stamped with it.
    pub epoch: u64,
    /// Per-pattern outcome, keyed by [`PatternId`] in registration-slot
    /// order. A pattern whose pipeline panicked (or that was already
    /// poisoned) carries an `Err` here while every other pattern's `Ok`
    /// outcome stands — per-pattern containment, see the module docs.
    pub outcomes: BTreeMap<PatternId, Result<ApplyOutcome, ApplyError>>,
}

/// Errors of the service surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The [`PatternId`] does not name a currently registered pattern —
    /// never registered, already deregistered, or a stale handle to a
    /// reused slot.
    UnknownPattern(PatternId),
    /// Registration rejected the pattern (see [`BuildError`]).
    Build(BuildError),
    /// A batch-level failure: validation rejected the batch whole, or the
    /// shared stage panicked and was contained (graph rolled back, shared
    /// state rebuilt, every engine untouched).
    Apply(ApplyError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownPattern(id) => {
                write!(f, "{id} is not registered with this service")
            }
            ServiceError::Build(err) => write!(f, "pattern registration failed: {err}"),
            ServiceError::Apply(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<BuildError> for ServiceError {
    fn from(err: BuildError) -> Self {
        ServiceError::Build(err)
    }
}

impl From<ApplyError> for ServiceError {
    fn from(err: ApplyError) -> Self {
        ServiceError::Apply(err)
    }
}

/// One interned candidate set: the predicate it belongs to, the shared
/// sorted node list, and how many graph nodes the list has been evaluated
/// over (candidate sets only ever *grow* under node additions — edge updates
/// never change them — so catching up is an append over the uncovered tail).
struct CandidateEntry {
    pred: Predicate,
    nodes: Arc<Vec<NodeId>>,
    covered: usize,
}

/// Candidate-set interner: one entry per distinct predicate rendering
/// ([`IncrementalEngine::candidate_keys`]), shared by every pattern node of
/// every registered pattern that carries an equal predicate.
#[derive(Default)]
struct CandidateInterner {
    by_key: FastHashMap<String, u32>,
    entries: Vec<CandidateEntry>,
}

impl CandidateInterner {
    /// Returns the shared candidate list of `pred` over `graph`, computing
    /// it on first sight and lazily extending it over nodes added since the
    /// last time this key was requested. `labels` must already cover the
    /// graph.
    fn intern(
        &mut self,
        pred: &Predicate,
        graph: &DataGraph,
        labels: &LabelIndex,
        shards: usize,
    ) -> Arc<Vec<NodeId>> {
        let key = pred.to_string();
        let nv = graph.node_count();
        if let Some(&idx) = self.by_key.get(&key) {
            let entry = &mut self.entries[idx as usize];
            if entry.covered < nv {
                let nodes = Arc::make_mut(&mut entry.nodes);
                for raw in entry.covered..nv {
                    let v = NodeId(raw as u32);
                    if entry.pred.satisfied_by(graph.attrs(v)) {
                        nodes.push(v);
                    }
                }
                entry.covered = nv;
            }
            return Arc::clone(&entry.nodes);
        }
        let nodes = Arc::new(candidates_for_predicate(pred, graph, labels, shards));
        let idx = self.entries.len() as u32;
        self.entries.push(CandidateEntry {
            pred: pred.clone(),
            nodes: Arc::clone(&nodes),
            covered: nv,
        });
        self.by_key.insert(key, idx);
        nodes
    }
}

/// One registered pattern: its engine plus the lazily materialised,
/// epoch-stamped snapshot view.
struct PatternSlot<E> {
    engine: E,
    /// `(epoch, view)` of the last materialised snapshot; reused verbatim
    /// while the epoch matches, dropped on the next read after a batch.
    view: RefCell<Option<(u64, Arc<MatchRelation>)>>,
}

/// A multi-pattern matching service over one shared [`DataGraph`]. See the
/// module docs for the architecture and the sharing-invariance contract.
pub struct MatchService<E: IncrementalEngine> {
    graph: DataGraph,
    shards: usize,
    shared: E::Shared,
    labels: LabelIndex,
    interner: CandidateInterner,
    slots: Vec<Option<PatternSlot<E>>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    epoch: u64,
}

impl<E: IncrementalEngine> MatchService<E> {
    /// Creates a service over `graph` with the ambient shard configuration
    /// ([`configured_shards`]).
    pub fn new(graph: DataGraph) -> Self {
        Self::with_shards(graph, configured_shards())
    }

    /// [`MatchService::new`] with an explicit shard count, pinned for every
    /// subsequent build and batch (the shard invariant makes the choice
    /// unobservable in results).
    pub fn with_shards(graph: DataGraph, shards: usize) -> Self {
        let shards = shards.max(1);
        let labels = LabelIndex::build_with_shards(&graph, shards);
        let shared = E::shared_build(&graph, shards);
        MatchService {
            graph,
            shards,
            shared,
            labels,
            interner: CandidateInterner::default(),
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            epoch: 0,
        }
    }

    /// The shared data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The pinned shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The current epoch: the number of successfully applied batches.
    /// Snapshot views are valid for exactly one epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of currently registered patterns.
    pub fn pattern_count(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// Number of distinct candidate sets interned so far — at most the total
    /// number of pattern nodes ever registered, and strictly less whenever
    /// registrations share predicates.
    pub fn interned_candidate_sets(&self) -> usize {
        self.interner.entries.len()
    }

    /// The currently registered pattern ids, in registration-slot order.
    pub fn pattern_ids(&self) -> Vec<PatternId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                slot.as_ref().map(|_| PatternId { slot: idx as u32, gen: self.generations[idx] })
            })
            .collect()
    }

    /// Adds a node to the shared graph. Registered engines pick the node up
    /// at their next batch (exactly like the single-engine flow, where nodes
    /// are added to the graph directly between batches); candidate interning
    /// catches up lazily at the next registration touching an affected key.
    pub fn add_node(&mut self, attrs: Attributes) -> NodeId {
        self.graph.add_node(attrs)
    }

    /// Registers `pattern`, building its index over the current graph with
    /// interned candidate sets and the shared auxiliary state. Returns a
    /// stable [`PatternId`] for all subsequent per-pattern calls.
    pub fn register(&mut self, pattern: &Pattern) -> Result<PatternId, ServiceError> {
        let engine = self.build_engine(pattern)?;
        let slot = PatternSlot { engine, view: RefCell::new(None) };
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(slot);
                idx as usize
            }
            None => {
                self.slots.push(Some(slot));
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        Ok(PatternId { slot: idx as u32, gen: self.generations[idx] })
    }

    /// Deregisters a pattern. Its id (and any clone of it) is invalid from
    /// this point on, even if the slot is later reused.
    pub fn deregister(&mut self, id: PatternId) -> Result<(), ServiceError> {
        let idx = self.slot_index(id)?;
        self.slots[idx] = None;
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        self.free.push(idx as u32);
        Ok(())
    }

    /// Applies one edge batch to the shared graph and every registered
    /// pattern: one validation, one net-effect reduction, one graph
    /// mutation and one shared-auxiliary maintenance pass, then the
    /// per-pattern pipelines. See the module docs for the failure model.
    pub fn apply(&mut self, batch: &BatchUpdate) -> Result<ServiceApply, ServiceError> {
        let rejections = validate_batch(&self.graph, batch);
        if !rejections.is_empty() {
            return Err(ServiceError::Apply(ApplyError::InvalidBatch(rejections)));
        }
        let monotone = batch.iter().all(Update::is_insert);
        let plan = ShardPlan::new(self.graph.node_count(), self.shards);
        let (effective, _) = reduce_batch_sharded(&self.graph, batch, plan);

        let mutation = if effective.is_empty() {
            SharedMutation::default()
        } else {
            let shared = &mut self.shared;
            let graph = &mut self.graph;
            let shards = self.shards;
            match catch_unwind(AssertUnwindSafe(|| {
                E::shared_mutate(shared, graph, &effective, shards)
            })) {
                Ok(mutation) => mutation,
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    // The shared stage may have partially mutated the graph
                    // and torn the shared auxiliary state — but no engine
                    // has run yet. Roll the graph back and rebuild the
                    // shared state from it: the service keeps serving every
                    // pattern at the pre-batch epoch.
                    self.graph.rollback_updates(&effective);
                    self.shared = E::shared_build(&self.graph, self.shards);
                    return Err(ServiceError::Apply(ApplyError::StagePanicked(StagePanic {
                        stage: E::shared_stage(),
                        message,
                        rolled_back: true,
                        poisoned: false,
                    })));
                }
            }
        };

        let shared_batch = SharedBatch { batch_len: batch.len(), monotone, effective: &effective };
        let mut outcomes = BTreeMap::new();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let Some(slot) = slot else { continue };
            let id = PatternId { slot: idx as u32, gen: self.generations[idx] };
            let outcome = slot.engine.try_apply_shared(
                &self.graph,
                &mut self.shared,
                &shared_batch,
                &mutation,
                self.shards,
            );
            outcomes.insert(id, outcome);
        }
        self.epoch += 1;
        Ok(ServiceApply { epoch: self.epoch, outcomes })
    }

    /// The current match of one pattern as an epoch-stamped snapshot view:
    /// materialised at most once per epoch, shared behind an `Arc` until the
    /// next applied batch. Errors with [`ApplyError::Poisoned`] (wrapped)
    /// for a pattern whose pipeline panicked, until [`MatchService::recover`].
    pub fn matches(&self, id: PatternId) -> Result<Arc<MatchRelation>, ServiceError> {
        let idx = self.slot_index(id)?;
        let slot = self.slots[idx].as_ref().expect("slot_index checked occupancy");
        let mut view = slot.view.borrow_mut();
        if let Some((epoch, relation)) = view.as_ref() {
            if *epoch == self.epoch {
                return Ok(Arc::clone(relation));
            }
        }
        let relation = Arc::new(slot.engine.try_matches().map_err(ServiceError::Apply)?);
        *view = Some((self.epoch, Arc::clone(&relation)));
        Ok(relation)
    }

    /// The pattern a [`PatternId`] was registered with.
    pub fn pattern(&self, id: PatternId) -> Result<&Pattern, ServiceError> {
        let idx = self.slot_index(id)?;
        Ok(self.slots[idx].as_ref().expect("slot_index checked occupancy").engine.pattern())
    }

    /// True iff the pattern's engine is poisoned (its pipeline panicked in
    /// an earlier batch) and must be [`MatchService::recover`]ed.
    pub fn poisoned(&self, id: PatternId) -> Result<bool, ServiceError> {
        let idx = self.slot_index(id)?;
        Ok(self.slots[idx].as_ref().expect("slot_index checked occupancy").engine.poisoned())
    }

    /// Rebuilds one pattern's index from the current graph (interned
    /// candidate sets, shared auxiliary state), clearing its poison. The
    /// result is bit-identical to a fresh registration of the same pattern;
    /// every other pattern is untouched.
    pub fn recover(&mut self, id: PatternId) -> Result<(), ServiceError> {
        let idx = self.slot_index(id)?;
        let pattern = self.slots[idx]
            .as_ref()
            .expect("slot_index checked occupancy")
            .engine
            .pattern()
            .clone();
        let engine = self.build_engine(&pattern)?;
        let slot = self.slots[idx].as_mut().expect("slot_index checked occupancy");
        slot.engine = engine;
        *slot.view.borrow_mut() = None;
        Ok(())
    }

    /// Builds an engine for `pattern` over the current graph: extends the
    /// label index over any nodes added since the last build, interns the
    /// candidate set of every pattern node, and runs the engine's in-service
    /// build against the shared auxiliary state.
    fn build_engine(&mut self, pattern: &Pattern) -> Result<E, ServiceError> {
        self.labels.ensure_node_capacity(&self.graph);
        let lists: Vec<Arc<Vec<NodeId>>> = pattern
            .nodes()
            .map(|u| {
                self.interner.intern(pattern.predicate(u), &self.graph, &self.labels, self.shards)
            })
            .collect();
        E::build_in_service(pattern, &self.graph, &mut self.shared, &lists, self.shards)
            .map_err(ServiceError::Build)
    }

    fn slot_index(&self, id: PatternId) -> Result<usize, ServiceError> {
        let idx = id.slot as usize;
        match self.slots.get(idx) {
            Some(Some(_)) if self.generations[idx] == id.gen => Ok(idx),
            _ => Err(ServiceError::UnknownPattern(id)),
        }
    }
}

/// A [`MatchService`] ingests directly: the coalesced batch runs through
/// [`MatchService::apply`] (one shared classification, per-pattern fan-out)
/// and [`IngestApply::seq`](crate::ingest::IngestApply::seq) carries the
/// epoch the batch committed as.
impl<E: IncrementalEngine> crate::ingest::IngestSink for MatchService<E> {
    type Outcome = ServiceApply;
    type Error = ServiceError;

    fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<ServiceApply, ServiceError> {
        self.apply(batch)
    }

    fn sink_graph(&self) -> &DataGraph {
        self.graph()
    }

    fn committed_seq(&self) -> u64 {
        self.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::bsim::BoundedIndex;
    use crate::incremental::sim::SimulationIndex;
    use igpm_graph::{EdgeBound, Predicate};

    fn chain_graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        let c = g.add_labeled_node("C");
        let b2 = g.add_labeled_node("B");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, b2);
        g.add_edge(b2, c);
        (g, vec![a, b, c, b2])
    }

    fn edge_pattern(from: &str, to: &str) -> Pattern {
        let mut p = Pattern::new();
        let u = p.add_node(Predicate::label(from));
        let v = p.add_node(Predicate::label(to));
        p.add_normal_edge(u, v);
        p
    }

    #[test]
    fn register_interns_shared_candidate_sets() {
        let (g, _) = chain_graph();
        let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(g, 1);
        svc.register(&edge_pattern("A", "B")).unwrap();
        svc.register(&edge_pattern("B", "C")).unwrap();
        svc.register(&edge_pattern("A", "C")).unwrap();
        // Six pattern nodes, three distinct predicates.
        assert_eq!(svc.interned_candidate_sets(), 3);
        assert_eq!(svc.pattern_count(), 3);
    }

    #[test]
    fn outcomes_match_independent_engine() {
        let (g, n) = chain_graph();
        let mut independent_graph = g.clone();
        let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(g, 1);
        let p = edge_pattern("A", "B");
        let id = svc.register(&p).unwrap();
        let mut solo = SimulationIndex::build_with_shards(&p, &independent_graph, 1);

        let batch: BatchUpdate = vec![Update::delete(n[0], n[1])].into_iter().collect();
        let service_outcome = svc.apply(&batch).unwrap().outcomes.remove(&id).unwrap().unwrap();
        let solo_outcome =
            solo.try_apply_batch_with_shards(&mut independent_graph, &batch, 1).unwrap();
        assert_eq!(service_outcome.stats, solo_outcome.stats);
        assert_eq!(service_outcome.delta, solo_outcome.delta);
        assert_eq!(*svc.matches(id).unwrap(), solo.matches());
    }

    #[test]
    fn deregistered_ids_go_stale_even_after_slot_reuse() {
        let (g, _) = chain_graph();
        let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(g, 1);
        let id = svc.register(&edge_pattern("A", "B")).unwrap();
        svc.deregister(id).unwrap();
        assert_eq!(svc.matches(id).unwrap_err(), ServiceError::UnknownPattern(id));
        let id2 = svc.register(&edge_pattern("B", "C")).unwrap();
        assert_ne!(id, id2, "reused slot must mint a fresh generation");
        assert!(svc.matches(id).is_err());
        assert!(svc.matches(id2).is_ok());
    }

    #[test]
    fn snapshot_views_are_shared_within_an_epoch() {
        let (g, n) = chain_graph();
        let mut svc: MatchService<SimulationIndex> = MatchService::with_shards(g, 1);
        let id = svc.register(&edge_pattern("A", "B")).unwrap();
        let first = svc.matches(id).unwrap();
        let second = svc.matches(id).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same epoch must reuse the view");
        let batch: BatchUpdate = vec![Update::delete(n[1], n[2])].into_iter().collect();
        svc.apply(&batch).unwrap();
        let third = svc.matches(id).unwrap();
        assert!(!Arc::ptr_eq(&first, &third), "new epoch must rematerialise");
    }

    #[test]
    fn bounded_service_shares_one_landmark_index() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("A");
        let m = g.add_labeled_node("M");
        let c = g.add_labeled_node("C");
        g.add_edge(a, m);
        g.add_edge(m, c);

        let mut independent_graph = g.clone();
        let mut svc: MatchService<BoundedIndex> = MatchService::with_shards(g, 1);
        let mut p = Pattern::new();
        let u = p.add_node(Predicate::label("A"));
        let v = p.add_node(Predicate::label("C"));
        p.add_edge(u, v, EdgeBound::Hops(2));
        let id = svc.register(&p).unwrap();
        let mut solo = BoundedIndex::build_with_shards(&p, &independent_graph, 1);

        assert_eq!(*svc.matches(id).unwrap(), solo.matches());
        let batch: BatchUpdate = vec![Update::delete(m, c)].into_iter().collect();
        let service_outcome = svc.apply(&batch).unwrap().outcomes.remove(&id).unwrap().unwrap();
        let solo_outcome =
            solo.try_apply_batch_with_shards(&mut independent_graph, &batch, 1).unwrap();
        assert_eq!(service_outcome.stats, solo_outcome.stats);
        assert_eq!(service_outcome.delta, solo_outcome.delta);
        assert_eq!(*svc.matches(id).unwrap(), solo.matches());
    }
}
