//! HORNSAT-based incremental simulation (Shukla et al. 1997).
//!
//! Shukla et al. decide simulation by reducing it to HORN-SAT: a variable
//! `fail(u, v)` states that data node `v` does *not* simulate pattern node
//! `u`, and for every pattern edge `(u, u')` and candidate `v` there is a Horn
//! clause
//!
//! ```text
//!   fail(u', w_1) ∧ ... ∧ fail(u', w_k)  ->  fail(u, v)
//! ```
//!
//! over the children `w_1..w_k` of `v` (if every child fails to simulate `u'`,
//! then `v` fails to simulate `u`). Unit propagation of the least model yields
//! exactly the complement of the maximum simulation. The incremental variant
//! keeps the clause database and the derived facts between updates:
//!
//! * **edge deletions** shrink clause bodies, which can only derive *new*
//!   failures — handled by incremental unit propagation;
//! * **edge insertions** grow clause bodies and may invalidate previously
//!   derived failures — the affected clauses are rebuilt and the least model
//!   is re-derived from the facts, which is the expensive part that the paper
//!   observes ("it requires to update reflections and to construct an instance
//!   of size O(|E|²)", Related Work / Figure 18).

use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::{BatchUpdate, DataGraph, MatchRelation, NodeId, Pattern, Update};

/// Identifier of the variable `fail(u, v)`.
type VarId = (u32, u32);

/// A Horn clause `body -> head` with a counter of body literals not yet true.
#[derive(Debug, Clone)]
struct Clause {
    head: VarId,
    body: Vec<VarId>,
    /// Number of body literals not yet derived true.
    pending: usize,
}

/// HORNSAT-based incremental simulation engine.
#[derive(Debug, Clone)]
pub struct HornSatSimulation {
    pattern: Pattern,
    /// Candidate sets (nodes satisfying each pattern node's predicate).
    candidates: Vec<FastHashSet<NodeId>>,
    /// All clauses, indexed densely.
    clauses: Vec<Clause>,
    /// For each variable, the clauses in whose body it appears.
    watch: FastHashMap<VarId, Vec<usize>>,
    /// Variables derived true (`fail(u, v)` holds).
    failed: FastHashSet<VarId>,
}

impl HornSatSimulation {
    /// Builds the Horn instance for `pattern` over `graph` and derives the
    /// least model.
    ///
    /// # Panics
    /// Panics if the pattern is not normal.
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        assert!(pattern.is_normal(), "HORNSAT simulation needs a normal pattern");
        let candidates: Vec<FastHashSet<NodeId>> = pattern
            .nodes()
            .map(|u| {
                let pred = pattern.predicate(u);
                graph.nodes().filter(|&v| pred.satisfied_by(graph.attrs(v))).collect()
            })
            .collect();
        let mut engine = HornSatSimulation {
            pattern: pattern.clone(),
            candidates,
            clauses: Vec::new(),
            watch: FastHashMap::default(),
            failed: FastHashSet::default(),
        };
        engine.rebuild(graph);
        engine
    }

    /// The pattern this engine maintains.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of Horn clauses currently in the instance (the auxiliary
    /// structure whose size the paper criticises).
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// The current maximum simulation: all candidate pairs not derived failed,
    /// or the empty relation if some pattern node has no surviving match.
    pub fn matches(&self) -> MatchRelation {
        let lists: Vec<Vec<NodeId>> = self
            .pattern
            .nodes()
            .map(|u| {
                self.candidates[u.index()]
                    .iter()
                    .copied()
                    .filter(|v| !self.failed.contains(&(u.0, v.0)))
                    .collect()
            })
            .collect();
        if lists.iter().any(Vec::is_empty) {
            return MatchRelation::empty(self.pattern.node_count());
        }
        MatchRelation::from_lists(lists)
    }

    /// Applies a single edge insertion (rebuilds the affected clauses and
    /// re-derives the least model — the non-monotone, expensive case).
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) {
        if graph.add_edge(from, to) {
            self.rebuild(graph);
        }
    }

    /// Applies a single edge deletion using incremental unit propagation.
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) {
        if !graph.remove_edge(from, to) {
            return;
        }
        // For each pattern edge (u, u') with `from` a candidate of `u` and
        // `to` a candidate of `u'`, the literal fail(u', to) leaves the body
        // of the clause whose head is fail(u, from).
        let pattern_edges: Vec<(u32, u32)> =
            self.pattern.edges().iter().map(|e| (e.from.0, e.to.0)).collect();
        let mut newly_true: Vec<VarId> = Vec::new();
        for (u, u_child) in pattern_edges {
            let lit: VarId = (u_child, to.0);
            let head: VarId = (u, from.0);
            let Some(watchers) = self.watch.get_mut(&lit) else { continue };
            let mut i = 0;
            while i < watchers.len() {
                let idx = watchers[i];
                if self.clauses[idx].head != head {
                    i += 1;
                    continue;
                }
                // Detach the literal from both the clause body and the watch list.
                if let Some(pos) = self.clauses[idx].body.iter().position(|&l| l == lit) {
                    self.clauses[idx].body.remove(pos);
                }
                watchers.swap_remove(i);
                let pending =
                    self.clauses[idx].body.iter().filter(|l| !self.failed.contains(*l)).count();
                self.clauses[idx].pending = pending;
                if pending == 0 && !self.failed.contains(&head) {
                    newly_true.push(head);
                }
            }
        }
        for var in newly_true {
            self.derive(var);
        }
    }

    /// Applies a batch of updates.
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) {
        let mut needs_rebuild = false;
        // Apply deletions incrementally; any effective insertion forces a rebuild.
        for update in batch.iter() {
            match *update {
                Update::DeleteEdge { from, to } => {
                    if !needs_rebuild {
                        self.delete_edge(graph, from, to);
                    } else {
                        graph.remove_edge(from, to);
                    }
                }
                Update::InsertEdge { from, to } => {
                    if graph.add_edge(from, to) {
                        needs_rebuild = true;
                    }
                }
            }
        }
        if needs_rebuild {
            self.rebuild(graph);
        }
    }

    /// Rebuilds the clause database from the current graph and re-derives the
    /// least model by unit propagation.
    fn rebuild(&mut self, graph: &DataGraph) {
        self.clauses.clear();
        self.watch.clear();
        self.failed.clear();

        let mut initial_facts: Vec<VarId> = Vec::new();
        for edge in self.pattern.edges() {
            let u = edge.from;
            let u_child = edge.to;
            for &v in &self.candidates[u.index()] {
                let body: Vec<VarId> = graph
                    .children(v)
                    .iter()
                    .filter(|w| self.candidates[u_child.index()].contains(w))
                    .map(|w| (u_child.0, w.0))
                    .collect();
                let head = (u.0, v.0);
                if body.is_empty() {
                    // No candidate child at all: fail(u, v) is a fact.
                    initial_facts.push(head);
                    continue;
                }
                let idx = self.clauses.len();
                for lit in &body {
                    self.watch.entry(*lit).or_default().push(idx);
                }
                let pending = body.len();
                self.clauses.push(Clause { head, body, pending });
            }
        }
        for fact in initial_facts {
            self.derive(fact);
        }
    }

    /// Unit propagation from a newly derived `fail` fact.
    fn derive(&mut self, var: VarId) {
        let mut stack = vec![var];
        while let Some(current) = stack.pop() {
            if !self.failed.insert(current) {
                continue;
            }
            if let Some(clause_indices) = self.watch.get(&current).cloned() {
                for idx in clause_indices {
                    let clause = &mut self.clauses[idx];
                    if clause.pending > 0 {
                        clause.pending -= 1;
                        if clause.pending == 0 && !self.failed.contains(&clause.head) {
                            stack.push(clause.head);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_core::{match_simulation, SimulationIndex};
    use igpm_generator::{
        generate_pattern, mixed_batch, synthetic_graph, PatternGenConfig, PatternShape,
        SyntheticConfig,
    };
    use igpm_graph::Predicate;

    fn check_against_batch(
        engine: &HornSatSimulation,
        pattern: &Pattern,
        graph: &DataGraph,
        context: &str,
    ) {
        assert_eq!(engine.matches(), match_simulation(pattern, graph), "{context}");
    }

    #[test]
    fn agrees_with_simulation_on_a_small_graph() {
        let mut g = DataGraph::new();
        let labels = ["CTO", "DB", "Bio", "DB", "Bio"];
        let nodes: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
        for (a, b) in [(0, 1), (1, 2), (0, 3), (3, 4), (1, 0)] {
            g.add_edge(nodes[a], nodes[b]);
        }
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::label("CTO"));
        let db = p.add_node(Predicate::label("DB"));
        let bio = p.add_node(Predicate::label("Bio"));
        p.add_normal_edge(cto, db);
        p.add_normal_edge(db, bio);

        let engine = HornSatSimulation::build(&p, &g);
        check_against_batch(&engine, &p, &g, "initial build");
        assert!(engine.clause_count() > 0);
    }

    #[test]
    fn incremental_deletions_agree_with_batch() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(120, 360, 4, 55));
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(4, 5, 1, 56));
        let mut engine = HornSatSimulation::build(&pattern, &graph);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().take(40).collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            engine.delete_edge(&mut graph, a, b);
            if i % 10 == 0 {
                check_against_batch(&engine, &pattern, &graph, &format!("after deletion {i}"));
            }
        }
        check_against_batch(&engine, &pattern, &graph, "after all deletions");
    }

    #[test]
    fn insertions_and_batches_agree_with_batch() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(100, 300, 4, 77));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::normal(4, 6, 1, 78).with_shape(PatternShape::General),
        );
        let mut engine = HornSatSimulation::build(&pattern, &graph);
        for round in 0..3 {
            let batch = mixed_batch(&graph, 15, 15, 100 + round);
            engine.apply_batch(&mut graph, &batch);
            check_against_batch(&engine, &pattern, &graph, &format!("round {round}"));
        }
    }

    #[test]
    fn agrees_with_inc_match_over_the_same_updates() {
        let mut g1 = synthetic_graph(&SyntheticConfig::new(80, 240, 3, 9));
        let mut g2 = g1.clone();
        let pattern = generate_pattern(&g1, &PatternGenConfig::normal(3, 4, 1, 10));
        let mut horn = HornSatSimulation::build(&pattern, &g1);
        let mut inc = SimulationIndex::build(&pattern, &g2);
        let batch = mixed_batch(&g1, 20, 20, 11);
        horn.apply_batch(&mut g1, &batch);
        inc.apply_batch(&mut g2, &batch);
        assert_eq!(g1, g2);
        assert_eq!(horn.matches(), inc.matches());
    }

    #[test]
    fn noop_updates_change_nothing() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(50, 150, 3, 12));
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(3, 3, 1, 13));
        let mut engine = HornSatSimulation::build(&pattern, &graph);
        let before = engine.matches();
        // Deleting a missing edge and re-inserting an existing edge are no-ops.
        let (a, b) = graph.edges().next().unwrap();
        engine.insert_edge(&mut graph, a, b);
        let mut missing = None;
        'outer: for x in graph.nodes() {
            for y in graph.nodes() {
                if x != y && !graph.has_edge(x, y) {
                    missing = Some((x, y));
                    break 'outer;
                }
            }
        }
        let (x, y) = missing.unwrap();
        engine.delete_edge(&mut graph, x, y);
        assert_eq!(engine.matches(), before);
    }
}
