//! `IncBMatchm`: incremental bounded simulation backed by a distance matrix
//! (the algorithm of Fan et al. 2010 that Figure 19 compares against).
//!
//! The earlier algorithm keeps an all-pairs distance matrix as its distance
//! auxiliary structure instead of landmark/distance vectors. Re-deriving the
//! distance information after a batch of updates therefore costs one BFS per
//! *candidate* source node (`O(|cand| · (|V| + |E|))`), regardless of how
//! small the change is — cheaper than the full batch `Matchbs` (which pays
//! `O(|V| · (|V| + |E|))` for the complete matrix plus the full refinement),
//! but much more expensive than `IncBMatch`, whose distance maintenance is
//! confined to the affected area. The match itself is refined over the
//! candidate pair sets exactly as in `IncBMatch`, and the structure is
//! restricted to DAG patterns as in the original paper.

use igpm_core::AffStats;
use igpm_distance::{satisfies_bound, DistanceMatrix};
use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::{BatchUpdate, DataGraph, MatchRelation, NodeId, Pattern, PatternNodeId};

/// The matrix rows a candidate-row index must carry: every candidate source,
/// plus the *current children* of every candidate. The children matter for
/// reflexive pairs `(v, v)`: bounded simulation's nonempty-path semantics
/// answer them through the shortest cycle `min_child dist(child, v) + 1`
/// (`igpm_distance::nonempty_distance`), and a candidate's children need not
/// be candidates themselves — with their rows missing, a genuine cycle would
/// be reported unreachable and real matches silently dropped (caught by the
/// cross-engine conformance suite).
fn matrix_sources(graph: &DataGraph, candidates: &[NodeId]) -> Vec<NodeId> {
    let mut sources: Vec<NodeId> = candidates.to_vec();
    for &v in candidates {
        sources.extend(graph.children(v).iter().copied());
    }
    sources.sort_unstable();
    sources.dedup();
    sources
}

/// Incremental bounded simulation with a (candidate-row) distance matrix.
#[derive(Debug, Clone)]
pub struct MatrixBoundedIndex {
    pattern: Pattern,
    cand_all: Vec<FastHashSet<NodeId>>,
    /// Sorted list of all candidate nodes (the matrix rows that are kept).
    candidate_sources: Vec<NodeId>,
    matrix: DistanceMatrix,
    /// `pairs[e][v]` = targets `v'` such that `(v, v')` satisfies pattern edge `e`.
    pairs: Vec<FastHashMap<NodeId, FastHashSet<NodeId>>>,
    match_sets: Vec<FastHashSet<NodeId>>,
}

impl MatrixBoundedIndex {
    /// Builds the index.
    ///
    /// # Panics
    /// Panics if the pattern is not a DAG (the original algorithm only handles
    /// DAG patterns, Section 8.2).
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        assert!(pattern.is_dag(), "IncBMatchm handles DAG patterns only");
        let cand_all: Vec<FastHashSet<NodeId>> = pattern
            .nodes()
            .map(|u| {
                let pred = pattern.predicate(u);
                graph.nodes().filter(|&v| pred.satisfied_by(graph.attrs(v))).collect()
            })
            .collect();
        let mut candidate_sources: Vec<NodeId> = cand_all.iter().flatten().copied().collect();
        candidate_sources.sort_unstable();
        candidate_sources.dedup();
        let matrix =
            DistanceMatrix::build_for_sources(graph, &matrix_sources(graph, &candidate_sources));
        let mut index = MatrixBoundedIndex {
            pattern: pattern.clone(),
            cand_all,
            candidate_sources,
            matrix,
            pairs: vec![FastHashMap::default(); pattern.edge_count()],
            match_sets: Vec::new(),
        };
        index.rebuild_pairs_and_matches(graph);
        index
    }

    /// The current maximum bounded-simulation match.
    pub fn matches(&self) -> MatchRelation {
        if self.match_sets.iter().any(FastHashSet::is_empty) {
            return MatchRelation::empty(self.pattern.node_count());
        }
        MatchRelation::from_lists(
            self.match_sets.iter().map(|s| s.iter().copied().collect::<Vec<_>>()),
        )
    }

    /// True if every pattern node has at least one match.
    pub fn is_match(&self) -> bool {
        !self.match_sets.is_empty() && self.match_sets.iter().all(|s| !s.is_empty())
    }

    /// Approximate memory used by the distance matrix (the structure whose
    /// `O(|V|²)` footprint the paper criticises).
    pub fn matrix_bytes(&self) -> usize {
        self.matrix.memory_bytes()
    }

    /// Applies a batch of updates: the graph is updated, the candidate rows of
    /// the distance matrix are recomputed, and the match is re-refined over
    /// the refreshed pair sets.
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> AffStats {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };
        let changed = batch.apply(graph);
        stats.reduced_delta_g = changed;
        if changed == 0 {
            return stats;
        }
        // Re-derive the distance rows for every candidate source (the
        // matrix-based structure cannot confine this to the affected area).
        let sources = matrix_sources(graph, &self.candidate_sources);
        self.matrix = DistanceMatrix::build_for_sources(graph, &sources);
        stats.aux_changes += sources.len();
        let before = self.matches();
        self.rebuild_pairs_and_matches(graph);
        let after = self.matches();
        stats.matches_added = after.difference(&before).len();
        stats.matches_removed = before.difference(&after).len();
        stats
    }

    /// Single edge insertion (`IncBMatchm+`).
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut batch = BatchUpdate::new();
        batch.insert(from, to);
        self.apply_batch(graph, &batch)
    }

    /// Single edge deletion.
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut batch = BatchUpdate::new();
        batch.delete(from, to);
        self.apply_batch(graph, &batch)
    }

    fn rebuild_pairs_and_matches(&mut self, graph: &DataGraph) {
        for (e_idx, edge) in self.pattern.edges().iter().enumerate() {
            let mut forward: FastHashMap<NodeId, FastHashSet<NodeId>> = FastHashMap::default();
            for &v in &self.cand_all[edge.from.index()] {
                for &w in &self.cand_all[edge.to.index()] {
                    if satisfies_bound(graph, &self.matrix, v, w, edge.bound) {
                        forward.entry(v).or_default().insert(w);
                    }
                }
            }
            self.pairs[e_idx] = forward;
        }
        // Greatest fixpoint over the pair sets; DAG patterns converge in one
        // reverse-topological sweep but the generic loop is kept for clarity.
        let mut sets: Vec<FastHashSet<NodeId>> = self.cand_all.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for u in self.pattern.nodes() {
                let u: PatternNodeId = u;
                let to_remove: Vec<NodeId> = sets[u.index()]
                    .iter()
                    .copied()
                    .filter(|&v| {
                        !self.pattern.edges().iter().enumerate().all(|(e_idx, edge)| {
                            if edge.from != u {
                                return true;
                            }
                            match self.pairs[e_idx].get(&v) {
                                Some(targets) => {
                                    targets.iter().any(|w| sets[edge.to.index()].contains(w))
                                }
                                None => false,
                            }
                        })
                    })
                    .collect();
                if !to_remove.is_empty() {
                    changed = true;
                    for v in to_remove {
                        sets[u.index()].remove(&v);
                    }
                }
            }
        }
        self.match_sets = sets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_core::{match_bounded_with_matrix, BoundedIndex};
    use igpm_generator::{
        generate_pattern, mixed_batch, synthetic_graph, PatternGenConfig, PatternShape,
        SyntheticConfig,
    };

    #[test]
    fn agrees_with_batch_and_with_inc_bmatch() {
        for seed in 0..2u64 {
            let base = synthetic_graph(&SyntheticConfig::new(100, 300, 4, 700 + seed));
            let pattern = generate_pattern(
                &base,
                &PatternGenConfig::new(4, 5, 1, 3, 710 + seed).with_shape(PatternShape::Dag),
            );
            let batch = mixed_batch(&base, 15, 15, 720 + seed);

            let mut g1 = base.clone();
            let mut matrix_index = MatrixBoundedIndex::build(&pattern, &g1);
            assert_eq!(matrix_index.matches(), match_bounded_with_matrix(&pattern, &g1));
            matrix_index.apply_batch(&mut g1, &batch);
            assert_eq!(matrix_index.matches(), match_bounded_with_matrix(&pattern, &g1));

            let mut g2 = base.clone();
            let mut landmark_index = BoundedIndex::build(&pattern, &g2);
            landmark_index.apply_batch(&mut g2, &batch);
            assert_eq!(matrix_index.matches(), landmark_index.matches(), "seed {seed}");
        }
    }

    #[test]
    fn unit_updates_work() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(80, 240, 4, 800));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::new(3, 3, 1, 2, 801).with_shape(PatternShape::Dag),
        );
        let mut index = MatrixBoundedIndex::build(&pattern, &graph);
        let (a, b) = graph.edges().next().unwrap();
        index.delete_edge(&mut graph, a, b);
        assert_eq!(index.matches(), match_bounded_with_matrix(&pattern, &graph));
        index.insert_edge(&mut graph, a, b);
        assert_eq!(index.matches(), match_bounded_with_matrix(&pattern, &graph));
        assert!(index.matrix_bytes() > 0);
        let _ = index.is_match();
    }

    #[test]
    #[should_panic(expected = "DAG patterns")]
    fn cyclic_patterns_are_rejected() {
        let graph = synthetic_graph(&SyntheticConfig::new(20, 40, 3, 900));
        let mut pattern = Pattern::new();
        let a = pattern.add_labeled_node("l0");
        let b = pattern.add_labeled_node("l1");
        pattern.add_normal_edge(a, b);
        pattern.add_normal_edge(b, a);
        let _ = MatrixBoundedIndex::build(&pattern, &graph);
    }

    #[test]
    fn noop_batch_is_cheap() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(50, 150, 3, 901));
        let pattern = generate_pattern(
            &graph,
            &PatternGenConfig::new(3, 3, 1, 2, 902).with_shape(PatternShape::Dag),
        );
        let mut index = MatrixBoundedIndex::build(&pattern, &graph);
        let before = index.matches();
        let (a, b) = graph.edges().next().unwrap();
        let mut batch = BatchUpdate::new();
        batch.insert(a, b); // already present
        let stats = index.apply_batch(&mut graph, &batch);
        assert_eq!(stats.reduced_delta_g, 0);
        assert_eq!(index.matches(), before);
    }
}
