//! `IncMatchn`: the naive incremental algorithm that processes a batch of
//! updates one unit update at a time.
//!
//! Figure 18 compares the batch algorithm `Matchs`, the naive `IncMatchn`
//! (which simply invokes `IncMatch+` / `IncMatch-` once per unit update) and
//! the real `IncMatch` (which reduces the batch with `minDelta` and handles
//! all deletions, then all insertions, simultaneously). The same comparison is
//! made for landmark maintenance (`InsLM + DelLM` versus `IncLM`,
//! Fig. 20(f)) and carries over to bounded simulation.

use igpm_core::{AffStats, BoundedIndex, SimulationIndex};
use igpm_graph::{BatchUpdate, DataGraph, Update};

/// Applies `batch` to a [`SimulationIndex`] one unit update at a time
/// (no `minDelta`, no simultaneous processing). Returns the merged statistics.
pub fn apply_batch_naive(
    index: &mut SimulationIndex,
    graph: &mut DataGraph,
    batch: &BatchUpdate,
) -> AffStats {
    let mut stats = AffStats::default();
    for update in batch.iter() {
        let unit = match *update {
            Update::InsertEdge { from, to } => index.insert_edge(graph, from, to),
            Update::DeleteEdge { from, to } => index.delete_edge(graph, from, to),
        };
        stats.merge(unit.stats);
    }
    stats
}

/// Applies `batch` to a [`BoundedIndex`] one unit update at a time.
pub fn apply_batch_naive_bounded(
    index: &mut BoundedIndex,
    graph: &mut DataGraph,
    batch: &BatchUpdate,
) -> AffStats {
    let mut stats = AffStats::default();
    for update in batch.iter() {
        let unit = match *update {
            Update::InsertEdge { from, to } => index.insert_edge(graph, from, to),
            Update::DeleteEdge { from, to } => index.delete_edge(graph, from, to),
        };
        stats.merge(unit.stats);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_core::{match_bounded_with_matrix, match_simulation};
    use igpm_generator::{
        generate_pattern, mixed_batch, synthetic_graph, PatternGenConfig, PatternShape,
        SyntheticConfig,
    };

    #[test]
    fn naive_and_min_delta_reach_the_same_simulation() {
        let base = synthetic_graph(&SyntheticConfig::new(150, 500, 4, 501));
        let pattern = generate_pattern(
            &base,
            &PatternGenConfig::normal(4, 6, 1, 502).with_shape(PatternShape::General),
        );
        let batch = mixed_batch(&base, 40, 40, 503);

        let mut g_naive = base.clone();
        let mut idx_naive = SimulationIndex::build(&pattern, &g_naive);
        let naive_stats = apply_batch_naive(&mut idx_naive, &mut g_naive, &batch);

        let mut g_smart = base.clone();
        let mut idx_smart = SimulationIndex::build(&pattern, &g_smart);
        idx_smart.apply_batch(&mut g_smart, &batch);

        assert_eq!(g_naive, g_smart);
        assert_eq!(idx_naive.matches(), idx_smart.matches());
        assert_eq!(idx_naive.matches(), match_simulation(&pattern, &g_naive));
        assert_eq!(naive_stats.delta_g, batch.len());
    }

    #[test]
    fn naive_bounded_matches_batch_recomputation() {
        let base = synthetic_graph(&SyntheticConfig::new(90, 270, 4, 601));
        let pattern = generate_pattern(
            &base,
            &PatternGenConfig::new(4, 5, 1, 2, 602).with_shape(PatternShape::Dag),
        );
        let batch = mixed_batch(&base, 10, 10, 603);

        let mut graph = base.clone();
        let mut index = BoundedIndex::build(&pattern, &graph);
        apply_batch_naive_bounded(&mut index, &mut graph, &batch);
        assert_eq!(index.matches(), match_bounded_with_matrix(&pattern, &graph));
    }
}
