//! # igpm-baseline
//!
//! The comparison systems evaluated against the paper's algorithms in
//! Section 8:
//!
//! * [`vf2`] — subgraph isomorphism via VF2-style backtracking (the `VF2`
//!   baseline of Exp-1, Figures 16(b,c));
//! * [`hornsat`] — the HORNSAT-based incremental simulation of Shukla et al.
//!   1997 (the `HornSat` baseline of Figure 18);
//! * [`naive`] — `IncMatchn`, the naive incremental algorithm that processes a
//!   batch one unit update at a time without `minDelta` (Figure 18);
//! * [`matrix_inc`] — `IncBMatchm`, incremental bounded simulation backed by a
//!   (candidate-row) distance matrix in the style of Fan et al. 2010
//!   (Figure 19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hornsat;
pub mod matrix_inc;
pub mod naive;
pub mod vf2;

pub use hornsat::HornSatSimulation;
pub use matrix_inc::MatrixBoundedIndex;
pub use naive::{apply_batch_naive, apply_batch_naive_bounded};
pub use vf2::{count_isomorphic_matches, find_isomorphic_matches, isomorphic_result_nodes};
