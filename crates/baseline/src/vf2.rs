//! Subgraph isomorphism via VF2-style backtracking.
//!
//! The paper's Exp-1 compares bounded simulation against `VF2` (Cordella et
//! al. 2004): finding all subgraphs of `G` isomorphic to a normal pattern `P`.
//! A match here is an *injective* mapping `f` from pattern nodes to data nodes
//! such that `f(u)` satisfies the predicate of `u` and every pattern edge
//! `(u, u')` is realised by the data edge `(f(u), f(u'))` — the edge-to-edge,
//! one-to-one semantics that Example 1.1 shows to be too rigid for community
//! detection.
//!
//! The search uses the standard VF2 ingredients: extend a partial mapping one
//! pattern node at a time, choose the next pattern node as one adjacent to the
//! already-mapped core when possible, and prune candidates by predicate,
//! degree and consistency with already-mapped neighbours.

use igpm_graph::hash::FastHashSet;
use igpm_graph::{DataGraph, NodeId, Pattern, PatternNodeId};

/// An embedding: `embedding[u] = v` maps pattern node `u` to data node `v`.
pub type Embedding = Vec<NodeId>;

/// Finds up to `limit` isomorphic embeddings of `pattern` in `graph`
/// (`limit = usize::MAX` enumerates all of them).
///
/// # Panics
/// Panics if the pattern is not normal (subgraph isomorphism is defined for
/// normal patterns only, Section 2.3).
pub fn find_isomorphic_matches(
    pattern: &Pattern,
    graph: &DataGraph,
    limit: usize,
) -> Vec<Embedding> {
    assert!(pattern.is_normal(), "subgraph isomorphism needs a normal pattern");
    let np = pattern.node_count();
    if np == 0 {
        return Vec::new();
    }

    // Static candidate sets per pattern node (predicate + degree pruning).
    let candidates: Vec<Vec<NodeId>> = pattern
        .nodes()
        .map(|u| {
            let pred = pattern.predicate(u);
            graph
                .nodes()
                .filter(|&v| {
                    pred.satisfied_by(graph.attrs(v))
                        && graph.out_degree(v) >= pattern.out_degree(u)
                        && graph.in_degree(v) >= pattern.in_degree(u)
                })
                .collect()
        })
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return Vec::new();
    }

    // Matching order: start from the rarest candidate set and grow along
    // pattern adjacency so each new node is constrained by mapped neighbours.
    let order = matching_order(pattern, &candidates);

    let mut results = Vec::new();
    let mut mapping: Vec<Option<NodeId>> = vec![None; np];
    let mut used: FastHashSet<NodeId> = FastHashSet::default();
    backtrack(pattern, graph, &candidates, &order, 0, &mut mapping, &mut used, &mut results, limit);
    results
}

/// Counts the isomorphic embeddings of `pattern` in `graph`.
pub fn count_isomorphic_matches(pattern: &Pattern, graph: &DataGraph) -> usize {
    find_isomorphic_matches(pattern, graph, usize::MAX).len()
}

/// The set of data nodes participating in at least one isomorphic embedding —
/// the node set of the union result graph `M_iso(P, G)` (Section 4), used when
/// comparing how many community members each matching notion identifies.
pub fn isomorphic_result_nodes(pattern: &Pattern, graph: &DataGraph, limit: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> =
        find_isomorphic_matches(pattern, graph, limit).into_iter().flatten().collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

fn matching_order(pattern: &Pattern, candidates: &[Vec<NodeId>]) -> Vec<PatternNodeId> {
    let np = pattern.node_count();
    let mut order: Vec<PatternNodeId> = Vec::with_capacity(np);
    let mut placed = vec![false; np];
    while order.len() < np {
        // Prefer nodes adjacent to the already-ordered core; among those, the
        // one with the fewest candidates.
        let mut best: Option<PatternNodeId> = None;
        let mut best_key = (false, usize::MAX);
        for u in pattern.nodes() {
            if placed[u.index()] {
                continue;
            }
            let adjacent = order
                .iter()
                .any(|&o| pattern.edge_bound(o, u).is_some() || pattern.edge_bound(u, o).is_some());
            let key = (adjacent, candidates[u.index()].len());
            let better = match best {
                None => true,
                Some(_) => (key.0 && !best_key.0) || (key.0 == best_key.0 && key.1 < best_key.1),
            };
            if better {
                best = Some(u);
                best_key = key;
            }
        }
        let chosen = best.expect("some unplaced node exists");
        placed[chosen.index()] = true;
        order.push(chosen);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    pattern: &Pattern,
    graph: &DataGraph,
    candidates: &[Vec<NodeId>],
    order: &[PatternNodeId],
    depth: usize,
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut FastHashSet<NodeId>,
    results: &mut Vec<Embedding>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    if depth == order.len() {
        results.push(mapping.iter().map(|m| m.expect("complete mapping")).collect());
        return;
    }
    let u = order[depth];
    'cands: for &v in &candidates[u.index()] {
        if used.contains(&v) {
            continue;
        }
        // Consistency with already-mapped pattern neighbours.
        for &(u_child, _) in pattern.children(u) {
            if let Some(w) = mapping[u_child.index()] {
                if !graph.has_edge(v, w) {
                    continue 'cands;
                }
            }
        }
        for &(u_parent, _) in pattern.parents(u) {
            if let Some(w) = mapping[u_parent.index()] {
                if !graph.has_edge(w, v) {
                    continue 'cands;
                }
            }
        }
        mapping[u.index()] = Some(v);
        used.insert(v);
        backtrack(pattern, graph, candidates, order, depth + 1, mapping, used, results, limit);
        used.remove(&v);
        mapping[u.index()] = None;
        if results.len() >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_core::match_simulation;
    use igpm_graph::{Attributes, Predicate};

    /// Triangle pattern a -> b -> c -> a.
    fn triangle_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("a");
        let b = p.add_labeled_node("b");
        let c = p.add_labeled_node("c");
        p.add_normal_edge(a, b);
        p.add_normal_edge(b, c);
        p.add_normal_edge(c, a);
        p
    }

    #[test]
    fn finds_a_triangle() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let d = g.add_labeled_node("b");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        g.add_edge(a, d); // dangling distraction
        let p = triangle_pattern();
        let matches = find_isomorphic_matches(&p, &g, usize::MAX);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0], vec![a, b, c]);
        assert_eq!(count_isomorphic_matches(&p, &g), 1);
        assert_eq!(isomorphic_result_nodes(&p, &g, usize::MAX), vec![a, b, c]);
    }

    #[test]
    fn no_match_when_an_edge_is_missing() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        let p = triangle_pattern();
        assert_eq!(count_isomorphic_matches(&p, &g), 0);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Example 1.1(1): a pattern with two distinct nodes of the same label
        // cannot map both onto a single data node.
        let mut p = Pattern::new();
        let u1 = p.add_labeled_node("AM");
        let u2 = p.add_labeled_node("AM");
        p.add_normal_edge(u1, u2);

        let mut g = DataGraph::new();
        let only = g.add_labeled_node("AM");
        g.add_edge(only, only);
        assert_eq!(
            count_isomorphic_matches(&p, &g),
            0,
            "a bijection cannot collapse two pattern nodes"
        );

        let other = g.add_labeled_node("AM");
        g.add_edge(only, other);
        assert_eq!(count_isomorphic_matches(&p, &g), 1);
    }

    #[test]
    fn counts_all_embeddings_of_a_star() {
        // Pattern: hub -> leaf. Graph: hub with 4 leaves => 4 embeddings.
        let mut p = Pattern::new();
        let hub = p.add_labeled_node("hub");
        let leaf = p.add_labeled_node("leaf");
        p.add_normal_edge(hub, leaf);

        let mut g = DataGraph::new();
        let h = g.add_labeled_node("hub");
        for _ in 0..4 {
            let l = g.add_labeled_node("leaf");
            g.add_edge(h, l);
        }
        assert_eq!(count_isomorphic_matches(&p, &g), 4);
        let limited = find_isomorphic_matches(&p, &g, 2);
        assert_eq!(limited.len(), 2, "limit caps the enumeration");
    }

    #[test]
    fn predicates_constrain_candidates() {
        let mut p = Pattern::new();
        let young = p.add_node(Predicate::any().and("age", igpm_graph::CompareOp::Lt, 30));
        let old = p.add_node(Predicate::any().and("age", igpm_graph::CompareOp::Ge, 30));
        p.add_normal_edge(young, old);

        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::new().with("age", 20));
        let b = g.add_node(Attributes::new().with("age", 40));
        let c = g.add_node(Attributes::new().with("age", 25));
        g.add_edge(a, b);
        g.add_edge(b, c);
        let matches = find_isomorphic_matches(&p, &g, usize::MAX);
        assert_eq!(matches, vec![vec![a, b]]);
    }

    #[test]
    fn isomorphism_is_at_least_as_strict_as_simulation() {
        // Every node appearing in an isomorphic embedding also appears in the
        // maximum simulation (the converse fails): spot-check on a small graph.
        let mut g = DataGraph::new();
        let labels = ["x", "y", "x", "y", "z"];
        let nodes: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
        for (a, b) in [(0, 1), (2, 1), (2, 3), (1, 4), (3, 4)] {
            g.add_edge(nodes[a], nodes[b]);
        }
        let mut p = Pattern::new();
        let x = p.add_labeled_node("x");
        let y = p.add_labeled_node("y");
        let z = p.add_labeled_node("z");
        p.add_normal_edge(x, y);
        p.add_normal_edge(y, z);

        let sim = match_simulation(&p, &g);
        for embedding in find_isomorphic_matches(&p, &g, usize::MAX) {
            for (u_idx, &v) in embedding.iter().enumerate() {
                assert!(sim.contains(PatternNodeId::from_index(u_idx), v));
            }
        }
        assert!(count_isomorphic_matches(&p, &g) >= 1);
    }

    #[test]
    #[should_panic(expected = "normal pattern")]
    fn bounded_patterns_are_rejected() {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("a");
        let b = p.add_labeled_node("b");
        p.add_edge(a, b, igpm_graph::EdgeBound::Hops(2));
        let g = DataGraph::new();
        let _ = find_isomorphic_matches(&p, &g, 1);
    }

    #[test]
    fn empty_pattern_has_no_embeddings() {
        let g = DataGraph::new();
        assert!(find_isomorphic_matches(&Pattern::new(), &g, usize::MAX).is_empty());
    }
}
