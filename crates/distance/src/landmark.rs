//! Landmark vectors and distance vectors (Section 6.2).
//!
//! A *landmark vector* `lm` is a list of nodes such that every pair of nodes
//! has a shortest path through some landmark; any vertex cover qualifies
//! (Section 6.2, "Selection of landmarks"). Each node `v` carries two
//! *distance vectors*: `distvf(v) = <dis(v, lm_1), ..., dis(v, lm_|lm|)>` and
//! `distvt(v) = <dis(lm_1, v), ..., dis(lm_|lm|, v)>`; the distance between
//! any two nodes is `min_i distvf(v)[i] + distvt(v')[i]`.
//!
//! Internally the vectors are stored transposed (one dense row per landmark),
//! which is the layout the incremental maintenance procedures of Section 6.4
//! update in place ([`crate::landmark_inc`]).

use crate::oracle::DistanceOracle;
use crate::vertex_cover::greedy_vertex_cover;
use igpm_graph::hash::{FastHashMap, FastHashSet};
use igpm_graph::shard::{configured_shards, MAX_SHARDS, PARALLEL_WORK_THRESHOLD};
use igpm_graph::traversal::{bfs_distances_dense, Direction};
use igpm_graph::{DataGraph, NodeId};

/// Sentinel for "unreachable" entries of the distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;

/// How the initial landmark set is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// Use a greedy (approximately minimum) vertex cover — the choice of the
    /// paper's experiments. Queries are exact.
    VertexCover,
    /// Use the `count` highest-degree nodes. Queries are upper bounds unless
    /// the set happens to cover all shortest paths; this mirrors the
    /// "high-quality landmarks" discussion of Section 6.2 / Potamias et al.
    TopDegree(usize),
    /// Use an explicit, caller-provided landmark set.
    Explicit(Vec<NodeId>),
}

/// Landmark vector plus per-landmark distance rows.
#[derive(Debug, Clone)]
pub struct LandmarkIndex {
    landmarks: Vec<NodeId>,
    position: FastHashMap<NodeId, usize>,
    /// `from_lm[i][v]` = dis(lm_i, v) — the `distvt` entries.
    from_lm: Vec<Vec<u32>>,
    /// `to_lm[i][v]` = dis(v, lm_i) — the `distvf` entries.
    to_lm: Vec<Vec<u32>>,
    covering: bool,
    node_count: usize,
}

impl LandmarkIndex {
    /// Builds the index from scratch ("BatchLM" in the experiments), running
    /// the per-landmark BFS pairs on [`configured_shards`] scoped threads
    /// when the row volume warrants it (see
    /// [`LandmarkIndex::build_with_shards`]).
    pub fn build(graph: &DataGraph, selection: LandmarkSelection) -> Self {
        Self::build_with_shards(graph, selection, configured_shards())
    }

    /// [`LandmarkIndex::build`] with an explicit shard count (`IGPM_SHARDS`
    /// and machine parallelism are ignored).
    ///
    /// Every landmark's two distance rows come from independent BFS runs
    /// over the (read-only) graph, so the landmark list is chunked across
    /// scoped threads; rows are assembled back in landmark order, making the
    /// result bit-identical for every shard count. Threads are only spawned
    /// when the total row volume (`|lm| · |V|`) is large enough to amortise
    /// them; `shards = 1` is the sequential build.
    pub fn build_with_shards(
        graph: &DataGraph,
        selection: LandmarkSelection,
        shards: usize,
    ) -> Self {
        let (mut landmarks, covering) = match selection {
            LandmarkSelection::VertexCover => (greedy_vertex_cover(graph), true),
            LandmarkSelection::TopDegree(count) => {
                let mut nodes: Vec<NodeId> = graph.nodes().collect();
                nodes.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
                nodes.truncate(count);
                (nodes, false)
            }
            LandmarkSelection::Explicit(nodes) => (nodes, false),
        };
        // Duplicates (possible in an Explicit selection) are dropped up
        // front, keeping the first occurrence — exactly what repeated
        // `push_landmark` calls would do.
        let mut seen: FastHashSet<NodeId> = FastHashSet::default();
        landmarks.retain(|&lm| seen.insert(lm));

        let mut index = LandmarkIndex {
            landmarks: Vec::new(),
            position: FastHashMap::default(),
            from_lm: Vec::new(),
            to_lm: Vec::new(),
            covering,
            node_count: graph.node_count(),
        };
        let shards = shards.clamp(1, MAX_SHARDS).min(landmarks.len().max(1));
        if shards > 1
            && landmarks.len().saturating_mul(graph.node_count()) >= PARALLEL_WORK_THRESHOLD
        {
            let mut rows: Vec<(Vec<u32>, Vec<u32>)> = vec![Default::default(); landmarks.len()];
            let chunk = landmarks.len().div_ceil(shards);
            std::thread::scope(|scope| {
                for (lms, out) in landmarks.chunks(chunk).zip(rows.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (&lm, slot) in lms.iter().zip(out.iter_mut()) {
                            *slot = (
                                bfs_distances_dense(graph, lm, Direction::Forward),
                                bfs_distances_dense(graph, lm, Direction::Backward),
                            );
                        }
                    });
                }
            });
            for (lm, (from_row, to_row)) in landmarks.into_iter().zip(rows) {
                index.position.insert(lm, index.landmarks.len());
                index.landmarks.push(lm);
                index.from_lm.push(from_row);
                index.to_lm.push(to_row);
            }
        } else {
            for lm in landmarks {
                index.push_landmark(graph, lm);
            }
        }
        index
    }

    /// Adds `lm` as a landmark (no-op if it already is one) and computes its
    /// distance rows with two BFS runs. Returns `true` if it was added.
    pub fn push_landmark(&mut self, graph: &DataGraph, lm: NodeId) -> bool {
        if self.position.contains_key(&lm) {
            return false;
        }
        self.position.insert(lm, self.landmarks.len());
        self.landmarks.push(lm);
        self.from_lm.push(bfs_distances_dense(graph, lm, Direction::Forward));
        self.to_lm.push(bfs_distances_dense(graph, lm, Direction::Backward));
        true
    }

    /// The landmark vector `lm`.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmarks `|lm|`.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// True if there are no landmarks.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// True if the landmark set is known to cover all shortest paths, making
    /// distance queries exact.
    pub fn is_covering(&self) -> bool {
        self.covering
    }

    /// True if `node` is a landmark.
    pub fn is_landmark(&self, node: NodeId) -> bool {
        self.position.contains_key(&node)
    }

    /// The number of data-graph nodes the index was built over.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Extends every per-landmark distance row when the graph gained nodes
    /// since the index was built. New nodes are isolated until edge updates
    /// arrive, so their entries start [`UNREACHABLE`]; the covering invariant
    /// is untouched (a vertex cover stays a cover when isolated nodes are
    /// added). The incremental maintenance procedures call this before
    /// touching any row, so indices never go out of bounds after node churn.
    pub fn ensure_node_capacity(&mut self, node_count: usize) {
        if node_count <= self.node_count {
            return;
        }
        for row in self.from_lm.iter_mut().chain(self.to_lm.iter_mut()) {
            row.resize(node_count, UNREACHABLE);
        }
        self.node_count = node_count;
    }

    /// The distance vector `distvf(v)`: distances from `v` to each landmark.
    pub fn distvf(&self, v: NodeId) -> Vec<u32> {
        self.to_lm.iter().map(|row| row[v.index()]).collect()
    }

    /// The distance vector `distvt(v)`: distances from each landmark to `v`.
    pub fn distvt(&self, v: NodeId) -> Vec<u32> {
        self.from_lm.iter().map(|row| row[v.index()]).collect()
    }

    /// Mutable access to the per-landmark rows (for incremental maintenance).
    pub(crate) fn rows_mut(&mut self) -> (&mut Vec<Vec<u32>>, &mut Vec<Vec<u32>>) {
        (&mut self.from_lm, &mut self.to_lm)
    }

    /// The distance query `dist(v, v', lm)` of Section 6.2: the minimum over
    /// all landmarks of `distvf(v)[i] + distvt(v')[i]`.
    pub fn query(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let mut best = u64::MAX;
        for i in 0..self.landmarks.len() {
            let a = self.to_lm[i][from.index()];
            let b = self.from_lm[i][to.index()];
            if a != UNREACHABLE && b != UNREACHABLE {
                best = best.min(a as u64 + b as u64);
            }
        }
        if best == u64::MAX {
            None
        } else {
            Some(best as u32)
        }
    }

    /// Approximate heap footprint in bytes (used by Fig. 20(b)).
    pub fn memory_bytes(&self) -> usize {
        let rows: usize = self
            .from_lm
            .iter()
            .chain(self.to_lm.iter())
            .map(|r| r.capacity() * std::mem::size_of::<u32>())
            .sum();
        rows + self.landmarks.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl DistanceOracle for LandmarkIndex {
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.query(from, to)
    }

    fn name(&self) -> &'static str {
        "landmark"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use igpm_graph::Attributes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, edges: usize, seed: u64) -> DataGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        for _ in 0..edges {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            if a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn vertex_cover_landmarks_are_exact() {
        for seed in 0..4 {
            let g = random_graph(30, 90, seed);
            let index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
            assert!(index.is_covering());
            let matrix = DistanceMatrix::build(&g);
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(
                        index.query(a, b),
                        matrix.distance(a, b),
                        "seed {seed}: mismatch at ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn top_degree_landmarks_are_upper_bounds() {
        let g = random_graph(40, 120, 11);
        let index = LandmarkIndex::build(&g, LandmarkSelection::TopDegree(5));
        assert!(!index.is_covering());
        assert_eq!(index.len(), 5);
        let matrix = DistanceMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if let Some(est) = index.query(a, b) {
                    let exact = matrix.distance(a, b).expect("estimate implies reachability");
                    assert!(est >= exact, "estimate below exact at ({a}, {b})");
                }
            }
        }
    }

    #[test]
    fn explicit_landmarks_and_vectors() {
        // Path 0 -> 1 -> 2 with landmark 1 (a vertex cover of the path).
        let mut g = DataGraph::new();
        for i in 0..3 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let index = LandmarkIndex::build(&g, LandmarkSelection::Explicit(vec![NodeId(1)]));
        assert_eq!(index.landmarks(), &[NodeId(1)]);
        assert!(index.is_landmark(NodeId(1)));
        assert!(!index.is_landmark(NodeId(0)));
        assert_eq!(index.distvf(NodeId(0)), vec![1], "dis(0, lm)");
        assert_eq!(index.distvt(NodeId(2)), vec![1], "dis(lm, 2)");
        assert_eq!(index.query(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(index.query(NodeId(2), NodeId(0)), None);
        assert_eq!(index.query(NodeId(2), NodeId(2)), Some(0));
        assert_eq!(index.distance(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(index.name(), "landmark");
        assert_eq!(index.node_count(), 3);
        assert!(index.memory_bytes() > 0);
        assert!(!index.is_empty());
    }

    #[test]
    fn push_landmark_is_idempotent() {
        let g = random_graph(10, 20, 3);
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::Explicit(vec![NodeId(0)]));
        assert!(!index.push_landmark(&g, NodeId(0)));
        assert!(index.push_landmark(&g, NodeId(1)));
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn example_6_2_friendfeed_style_vectors() {
        // A small analogue of Example 6.2: Ann -> Pat -> Bill, Dan -> Pat,
        // with landmarks {Ann, Dan, Pat}.
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::labeled("Ann"));
        let dan = g.add_node(Attributes::labeled("Dan"));
        let pat = g.add_node(Attributes::labeled("Pat"));
        let bill = g.add_node(Attributes::labeled("Bill"));
        g.add_edge(ann, pat);
        g.add_edge(dan, pat);
        g.add_edge(pat, bill);
        let index = LandmarkIndex::build(&g, LandmarkSelection::Explicit(vec![ann, dan, pat]));
        // dis(Dan, Bill) = 2 found through the landmark Pat.
        assert_eq!(index.query(dan, bill), Some(2));
        assert_eq!(index.distvf(dan), vec![UNREACHABLE, 0, 1]);
        assert_eq!(index.distvt(bill), vec![2, 2, 1]);
    }
}
