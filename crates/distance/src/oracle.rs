//! The [`DistanceOracle`] abstraction shared by all matching algorithms.
//!
//! The `Match` algorithm (Fig. 3 of the paper) is written against a distance
//! matrix, but the experimental study (Exp-2) swaps in BFS and 2-hop labels.
//! Abstracting the distance source behind a trait lets `igpm-core` expose
//! exactly those three variants (`Matrix+Match`, `BFS+Match`, `2-hop+Match`)
//! plus the landmark-based oracle used by incremental bounded simulation.

use igpm_graph::{DataGraph, EdgeBound, NodeId};

/// A source of shortest-path distances over a fixed data graph.
///
/// `distance` follows the usual convention `dist(v, v) = 0`; bounded
/// simulation's *nonempty path* semantics are layered on top by
/// [`nonempty_distance`] and [`satisfies_bound`].
pub trait DistanceOracle {
    /// The length of the shortest (possibly empty) path from `from` to `to`,
    /// or `None` if `to` is unreachable from `from`.
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32>;

    /// True if there is a (possibly empty) path from `from` to `to` of length
    /// at most `max_hops`. Implementations may override this with an
    /// early-terminating search.
    fn within(&self, from: NodeId, to: NodeId, max_hops: u32) -> bool {
        match self.distance(from, to) {
            Some(d) => d <= max_hops,
            None => false,
        }
    }

    /// A human-readable name for reporting (e.g. `"matrix"`, `"bfs"`).
    fn name(&self) -> &'static str {
        "oracle"
    }
}

impl<T: DistanceOracle + ?Sized> DistanceOracle for &T {
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        (**self).distance(from, to)
    }

    fn within(&self, from: NodeId, to: NodeId, max_hops: u32) -> bool {
        (**self).within(from, to, max_hops)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The length of the shortest *nonempty* path from `from` to `to`.
///
/// For `from != to` this equals the ordinary distance; for `from == to` it is
/// the length of the shortest cycle through the node (computed via its
/// children), matching the requirement of bounded simulation that pattern
/// edges map to nonempty paths (Section 2.2).
pub fn nonempty_distance<O: DistanceOracle + ?Sized>(
    graph: &DataGraph,
    oracle: &O,
    from: NodeId,
    to: NodeId,
) -> Option<u32> {
    if from != to {
        return oracle.distance(from, to);
    }
    graph
        .children(from)
        .iter()
        .filter_map(
            |&child| {
                if child == to {
                    Some(1)
                } else {
                    oracle.distance(child, to).map(|d| d + 1)
                }
            },
        )
        .min()
}

/// True if the pattern-edge bound is satisfied by some nonempty path from
/// `from` to `to` in the data graph.
pub fn satisfies_bound<O: DistanceOracle + ?Sized>(
    graph: &DataGraph,
    oracle: &O,
    from: NodeId,
    to: NodeId,
    bound: EdgeBound,
) -> bool {
    if from != to {
        return match bound {
            EdgeBound::Hops(k) => oracle.within(from, to, k),
            EdgeBound::Unbounded => oracle.distance(from, to).is_some(),
        };
    }
    match nonempty_distance(graph, oracle, from, to) {
        Some(d) => bound.admits(d),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::Attributes;

    /// A toy oracle over a fixed 3-node path 0 -> 1 -> 2 plus the edge 2 -> 0.
    struct Toy;

    impl DistanceOracle for Toy {
        fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
            let table = [[0u32, 1, 2], [2, 0, 1], [1, 2, 0]];
            Some(table[from.index()][to.index()])
        }

        fn name(&self) -> &'static str {
            "toy"
        }
    }

    fn cycle_graph() -> DataGraph {
        let mut g = DataGraph::new();
        for i in 0..3 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        g
    }

    #[test]
    fn default_within_uses_distance() {
        let oracle = Toy;
        assert!(oracle.within(NodeId(0), NodeId(2), 2));
        assert!(!oracle.within(NodeId(0), NodeId(2), 1));
        assert_eq!(oracle.name(), "toy");
        // Reference implementations delegate.
        let by_ref: &dyn DistanceOracle = &oracle;
        assert_eq!((&by_ref).distance(NodeId(1), NodeId(2)), Some(1));
        assert_eq!((&by_ref).name(), "toy");
        assert!((&by_ref).within(NodeId(1), NodeId(2), 1));
    }

    #[test]
    fn nonempty_distance_on_cycle() {
        let g = cycle_graph();
        let oracle = Toy;
        assert_eq!(nonempty_distance(&g, &oracle, NodeId(0), NodeId(2)), Some(2));
        // Self-distance goes around the 3-cycle.
        assert_eq!(nonempty_distance(&g, &oracle, NodeId(0), NodeId(0)), Some(3));
    }

    #[test]
    fn nonempty_distance_without_cycle_is_none() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        g.add_edge(a, b);

        struct Path;
        impl DistanceOracle for Path {
            fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
                match (from.0, to.0) {
                    (0, 0) | (1, 1) => Some(0),
                    (0, 1) => Some(1),
                    _ => None,
                }
            }
        }
        assert_eq!(nonempty_distance(&g, &Path, a, a), None);
        assert_eq!(nonempty_distance(&g, &Path, b, b), None);
        assert_eq!(nonempty_distance(&g, &Path, a, b), Some(1));
        assert_eq!(Path.name(), "oracle");
    }

    #[test]
    fn satisfies_bound_handles_bounds_and_cycles() {
        let g = cycle_graph();
        let oracle = Toy;
        assert!(satisfies_bound(&g, &oracle, NodeId(0), NodeId(2), EdgeBound::Hops(2)));
        assert!(!satisfies_bound(&g, &oracle, NodeId(0), NodeId(2), EdgeBound::Hops(1)));
        assert!(satisfies_bound(&g, &oracle, NodeId(0), NodeId(2), EdgeBound::Unbounded));
        assert!(satisfies_bound(&g, &oracle, NodeId(0), NodeId(0), EdgeBound::Hops(3)));
        assert!(!satisfies_bound(&g, &oracle, NodeId(0), NodeId(0), EdgeBound::Hops(2)));
        assert!(satisfies_bound(&g, &oracle, NodeId(0), NodeId(0), EdgeBound::Unbounded));
    }

    #[test]
    fn self_loop_counts_as_length_one_cycle() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        g.add_edge(a, a);
        struct SelfLoop;
        impl DistanceOracle for SelfLoop {
            fn distance(&self, _: NodeId, _: NodeId) -> Option<u32> {
                Some(0)
            }
        }
        assert_eq!(nonempty_distance(&g, &SelfLoop, a, a), Some(1));
        assert!(satisfies_bound(&g, &SelfLoop, a, a, EdgeBound::Hops(1)));
    }
}
