//! Vertex-cover heuristics used to seed landmark vectors.
//!
//! Section 6.2 observes that any vertex cover of the data graph is a valid
//! landmark vector (every edge — hence every nonempty shortest path — touches
//! a cover node), and the experimental study computes "a minimum vertex cover
//! ... using heuristic algorithm" (Section 8.2, citing Vazirani 2003). Two
//! heuristics are provided: the classic maximal-matching 2-approximation and a
//! greedy max-degree heuristic that produces noticeably smaller covers on the
//! skewed-degree graphs used throughout the evaluation.

use igpm_graph::{DataGraph, NodeId};

/// Computes a vertex cover with the maximal-matching 2-approximation:
/// repeatedly pick an uncovered edge and add both endpoints.
pub fn matching_vertex_cover(graph: &DataGraph) -> Vec<NodeId> {
    let mut in_cover = vec![false; graph.node_count()];
    for (from, to) in graph.edges() {
        if !in_cover[from.index()] && !in_cover[to.index()] {
            in_cover[from.index()] = true;
            in_cover[to.index()] = true;
        }
    }
    collect(in_cover)
}

/// Computes a vertex cover greedily by repeatedly taking the node covering the
/// most still-uncovered edges. Produces smaller covers than the matching
/// heuristic on scale-free graphs, at `O(|E| log |V|)`-ish cost.
pub fn greedy_vertex_cover(graph: &DataGraph) -> Vec<NodeId> {
    let n = graph.node_count();
    // Remaining uncovered degree per node (undirected view of the edge set).
    let mut remaining: Vec<usize> = (0..n).map(|i| graph.degree(NodeId::from_index(i))).collect();
    let mut in_cover = vec![false; n];
    let mut edge_covered = igpm_graph::hash::set_with_capacity::<(u32, u32)>(graph.edge_count());

    // Simple bucket-by-degree selection: process nodes from highest remaining
    // degree to lowest, recomputing lazily.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(remaining[i]));

    let mut uncovered = graph.edge_count();
    let mut idx = 0;
    while uncovered > 0 && idx < order.len() {
        // Pick the node with the largest *current* remaining degree among the
        // next candidates; the precomputed order is a good-enough priority.
        let v = order[idx];
        idx += 1;
        if in_cover[v] || remaining[v] == 0 {
            continue;
        }
        in_cover[v] = true;
        let vid = NodeId::from_index(v);
        for &child in graph.children(vid) {
            if edge_covered.insert((vid.0, child.0)) {
                uncovered -= 1;
                remaining[v] = remaining[v].saturating_sub(1);
                remaining[child.index()] = remaining[child.index()].saturating_sub(1);
            }
        }
        for &parent in graph.parents(vid) {
            if edge_covered.insert((parent.0, vid.0)) {
                uncovered -= 1;
                remaining[v] = remaining[v].saturating_sub(1);
                remaining[parent.index()] = remaining[parent.index()].saturating_sub(1);
            }
        }
    }

    // Any still-uncovered edge (possible because the order is static) gets an
    // endpoint added, which also guarantees the cover property.
    if uncovered > 0 {
        for (from, to) in graph.edges() {
            if !in_cover[from.index()] && !in_cover[to.index()] {
                in_cover[from.index()] = true;
            }
        }
    }
    collect(in_cover)
}

/// Checks whether `cover` really covers every edge of the graph.
pub fn is_vertex_cover(graph: &DataGraph, cover: &[NodeId]) -> bool {
    let mut in_cover = vec![false; graph.node_count()];
    for &v in cover {
        in_cover[v.index()] = true;
    }
    graph.edges().all(|(from, to)| in_cover[from.index()] || in_cover[to.index()])
}

fn collect(in_cover: Vec<bool>) -> Vec<NodeId> {
    in_cover
        .into_iter()
        .enumerate()
        .filter(|&(_i, included)| included)
        .map(|(i, _included)| NodeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::Attributes;

    fn star(n: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let hub = g.add_node(Attributes::labeled("hub"));
        for i in 0..n {
            let leaf = g.add_node(Attributes::labeled(format!("leaf{i}")));
            g.add_edge(hub, leaf);
        }
        g
    }

    fn cycle(n: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> =
            (0..n).map(|i| g.add_node(Attributes::labeled(format!("v{i}")))).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n]);
        }
        g
    }

    #[test]
    fn both_heuristics_produce_valid_covers() {
        for graph in [star(10), cycle(9), cycle(10)] {
            let matching = matching_vertex_cover(&graph);
            let greedy = greedy_vertex_cover(&graph);
            assert!(is_vertex_cover(&graph, &matching), "matching cover invalid");
            assert!(is_vertex_cover(&graph, &greedy), "greedy cover invalid");
        }
    }

    #[test]
    fn greedy_is_small_on_a_star() {
        let graph = star(20);
        let greedy = greedy_vertex_cover(&graph);
        assert_eq!(greedy.len(), 1, "the hub alone covers a star");
        let matching = matching_vertex_cover(&graph);
        assert!(matching.len() >= greedy.len());
    }

    #[test]
    fn empty_cover_only_valid_for_edgeless_graph() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::labeled("a"));
        assert!(is_vertex_cover(&g, &[]));
        let g2 = star(1);
        assert!(!is_vertex_cover(&g2, &[]));
        assert!(is_vertex_cover(&g2, &[NodeId(0)]));
        assert!(is_vertex_cover(&g2, &[NodeId(1)]));
    }

    #[test]
    fn covers_handle_self_loops() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        g.add_edge(a, a);
        let cover = greedy_vertex_cover(&g);
        assert!(is_vertex_cover(&g, &cover));
        assert_eq!(cover, vec![a]);
        assert!(is_vertex_cover(&g, &matching_vertex_cover(&g)));
    }
}
