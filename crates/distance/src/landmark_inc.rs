//! Incremental maintenance of landmark and distance vectors (Section 6.4).
//!
//! * [`ins_lm`] — `InsLM`: maintains the index under a single edge insertion.
//!   At most one new landmark is added (keeping the vertex-cover/covering
//!   invariant, Proposition 6.2) and only the distance-vector entries that
//!   actually change are rewritten, by propagating decreases outwards from the
//!   inserted edge.
//! * [`del_lm`] — `DelLM`: maintains the index under a single edge deletion,
//!   using the two-phase affected-area computation of Fig. 14 (identify the
//!   nodes whose distance from/to a landmark lost its support, then settle
//!   their new distances from the unaffected boundary).
//! * [`inc_lm`] — `IncLM`: batch maintenance; redundant updates that cancel
//!   each other are removed before the unit procedures run.
//!
//! All three apply the graph update themselves so that the index and the graph
//! can never drift apart, and return [`LandmarkMaintenanceStats`] describing
//! `|AFF|` (changed entries), which the experiments of Fig. 20 report.

use crate::landmark::{LandmarkIndex, UNREACHABLE};
use igpm_graph::hash::FastHashSet;
use igpm_graph::{BatchUpdate, DataGraph, NodeId, Update};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Statistics reported by the incremental landmark maintenance procedures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LandmarkMaintenanceStats {
    /// Unit updates actually processed (after cancellation).
    pub updates_processed: usize,
    /// Unit updates removed because they cancelled out or were no-ops.
    pub cancelled_updates: usize,
    /// Landmarks added to keep the covering invariant.
    pub landmarks_added: usize,
    /// Distance-vector entries whose value changed (`|AFF|` proxy).
    pub affected_entries: usize,
}

impl LandmarkMaintenanceStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: LandmarkMaintenanceStats) {
        self.updates_processed += other.updates_processed;
        self.cancelled_updates += other.cancelled_updates;
        self.landmarks_added += other.landmarks_added;
        self.affected_entries += other.affected_entries;
    }
}

/// `InsLM`: inserts the edge `(from, to)` into `graph` and incrementally
/// maintains `index`.
pub fn ins_lm(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    from: NodeId,
    to: NodeId,
) -> LandmarkMaintenanceStats {
    let mut affected = FastHashSet::default();
    ins_lm_tracked(index, graph, from, to, &mut affected)
}

/// [`ins_lm`] variant that also records, in `affected`, every node whose
/// distance-vector entries changed (plus the edge endpoints). Incremental
/// bounded simulation uses this set to bound the pairs it re-examines.
pub fn ins_lm_tracked(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    from: NodeId,
    to: NodeId,
    affected: &mut FastHashSet<NodeId>,
) -> LandmarkMaintenanceStats {
    let mut stats = LandmarkMaintenanceStats::default();
    index.ensure_node_capacity(graph.node_count());
    if !graph.add_edge(from, to) {
        stats.cancelled_updates = 1;
        return stats;
    }
    stats.updates_processed = 1;
    affected.insert(from);
    affected.insert(to);

    // Maintain the covering invariant: any new shortest path using the new
    // edge passes through one of its endpoints, so adding one endpoint to the
    // landmark vector restores the cover (proof of Proposition 6.2).
    if index.is_covering() && !index.is_landmark(from) && !index.is_landmark(to) {
        index.push_landmark(graph, from);
        stats.landmarks_added = 1;
    }

    let last = index.len();
    let (from_lm, to_lm) = index.rows_mut();
    // Skip the freshly added landmark (its rows are already exact).
    let fresh_from = stats.landmarks_added;
    for i in 0..last {
        if fresh_from == 1 && i == last - 1 {
            continue;
        }
        // Distances from landmark i may shrink along `from -> to`.
        stats.affected_entries +=
            propagate_decrease_forward(graph, &mut from_lm[i], from, to, affected);
        // Distances to landmark i may shrink along `from -> to`.
        stats.affected_entries +=
            propagate_decrease_backward(graph, &mut to_lm[i], from, to, affected);
    }
    stats
}

/// `DelLM`: removes the edge `(from, to)` from `graph` and incrementally
/// maintains `index`.
pub fn del_lm(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    from: NodeId,
    to: NodeId,
) -> LandmarkMaintenanceStats {
    let mut affected = FastHashSet::default();
    del_lm_tracked(index, graph, from, to, &mut affected)
}

/// [`del_lm`] variant that also records the affected nodes in `affected`.
pub fn del_lm_tracked(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    from: NodeId,
    to: NodeId,
    affected: &mut FastHashSet<NodeId>,
) -> LandmarkMaintenanceStats {
    let mut stats = LandmarkMaintenanceStats::default();
    index.ensure_node_capacity(graph.node_count());
    if !graph.remove_edge(from, to) {
        stats.cancelled_updates = 1;
        return stats;
    }
    stats.updates_processed = 1;
    affected.insert(from);
    affected.insert(to);

    // A vertex cover stays a vertex cover when edges are removed, so the
    // landmark vector itself never changes on deletions (Proposition 6.2).
    let (from_lm, to_lm) = index.rows_mut();
    for row in from_lm.iter_mut() {
        // dist(landmark, ·): the deleted edge supported `to` via `from`.
        stats.affected_entries +=
            repair_after_deletion(graph, row, to, from, DirectionKind::FromLandmark, affected);
    }
    for row in to_lm.iter_mut() {
        // dist(·, landmark): the deleted edge supported `from` via `to`.
        stats.affected_entries +=
            repair_after_deletion(graph, row, from, to, DirectionKind::ToLandmark, affected);
    }
    stats
}

/// `IncLM`: applies a batch of updates, cancelling redundant ones first.
pub fn inc_lm(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    batch: &BatchUpdate,
) -> LandmarkMaintenanceStats {
    let mut affected = FastHashSet::default();
    inc_lm_tracked(index, graph, batch, &mut affected)
}

/// [`inc_lm`] variant that also records the affected nodes in `affected`.
pub fn inc_lm_tracked(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    batch: &BatchUpdate,
    affected: &mut FastHashSet<NodeId>,
) -> LandmarkMaintenanceStats {
    let (effective, cancelled) = reduce_batch(graph, batch);
    let mut stats = inc_lm_tracked_reduced(index, graph, &effective, affected);
    stats.cancelled_updates += cancelled;
    stats
}

/// [`inc_lm_tracked`] for a batch **already reduced** to its net-effective
/// updates (each edge at most once, every update effective — the output of
/// [`reduce_batch`] / its sharded variant): skips the internal reduction, so
/// callers that reduce on a shard plan (the bounded batch engine) do not pay
/// a second sequential presence pass over the same updates.
pub fn inc_lm_tracked_reduced(
    index: &mut LandmarkIndex,
    graph: &mut DataGraph,
    effective: &[Update],
    affected: &mut FastHashSet<NodeId>,
) -> LandmarkMaintenanceStats {
    let mut stats = LandmarkMaintenanceStats::default();
    index.ensure_node_capacity(graph.node_count());
    for update in effective {
        let unit = match *update {
            Update::InsertEdge { from, to } => ins_lm_tracked(index, graph, from, to, affected),
            Update::DeleteEdge { from, to } => del_lm_tracked(index, graph, from, to, affected),
        };
        stats.merge(unit);
    }
    stats
}

// The net-effect batch reduction (`minDelta` step 1) moved to
// `igpm_graph::update`, where the sharded variant also lives; re-exported
// here because `IncLM` and this module's historical callers import it from
// the distance crate.
pub use igpm_graph::update::reduce_batch;

/// Propagates a distance decrease caused by the new edge `(from, to)` through
/// `row`, where `row[v]` is the distance from a fixed landmark to `v`.
/// Returns the number of entries that changed.
fn propagate_decrease_forward(
    graph: &DataGraph,
    row: &mut [u32],
    from: NodeId,
    to: NodeId,
    affected: &mut FastHashSet<NodeId>,
) -> usize {
    let base = row[from.index()];
    if base == UNREACHABLE {
        return 0;
    }
    let candidate = base.saturating_add(1);
    if candidate >= row[to.index()] {
        return 0;
    }
    let mut changed = 0;
    let mut queue = VecDeque::new();
    row[to.index()] = candidate;
    changed += 1;
    affected.insert(to);
    queue.push_back(to);
    while let Some(x) = queue.pop_front() {
        let d = row[x.index()];
        for &child in graph.children(x) {
            if d.saturating_add(1) < row[child.index()] {
                row[child.index()] = d + 1;
                changed += 1;
                affected.insert(child);
                queue.push_back(child);
            }
        }
    }
    changed
}

/// Propagates a distance decrease caused by the new edge `(from, to)` through
/// `row`, where `row[v]` is the distance from `v` to a fixed landmark.
fn propagate_decrease_backward(
    graph: &DataGraph,
    row: &mut [u32],
    from: NodeId,
    to: NodeId,
    affected: &mut FastHashSet<NodeId>,
) -> usize {
    let base = row[to.index()];
    if base == UNREACHABLE {
        return 0;
    }
    let candidate = base.saturating_add(1);
    if candidate >= row[from.index()] {
        return 0;
    }
    let mut changed = 0;
    let mut queue = VecDeque::new();
    row[from.index()] = candidate;
    changed += 1;
    affected.insert(from);
    queue.push_back(from);
    while let Some(x) = queue.pop_front() {
        let d = row[x.index()];
        for &parent in graph.parents(x) {
            if d.saturating_add(1) < row[parent.index()] {
                row[parent.index()] = d + 1;
                changed += 1;
                affected.insert(parent);
                queue.push_back(parent);
            }
        }
    }
    changed
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum DirectionKind {
    /// `row[v]` holds dist(landmark, v): supports come from graph *parents*.
    FromLandmark,
    /// `row[v]` holds dist(v, landmark): supports come from graph *children*.
    ToLandmark,
}

impl DirectionKind {
    fn supports(self, graph: &DataGraph, v: NodeId) -> &[NodeId] {
        match self {
            DirectionKind::FromLandmark => graph.parents(v),
            DirectionKind::ToLandmark => graph.children(v),
        }
    }

    fn dependents(self, graph: &DataGraph, v: NodeId) -> &[NodeId] {
        match self {
            DirectionKind::FromLandmark => graph.children(v),
            DirectionKind::ToLandmark => graph.parents(v),
        }
    }
}

/// Two-phase repair of one distance row after deleting the edge whose
/// *dependent* endpoint is `start` and whose *support* endpoint is `support`
/// (i.e. for `FromLandmark` rows the deleted edge ran `support -> start`; for
/// `ToLandmark` rows it ran `start -> support`). Returns the number of entries
/// that changed. This is the aUP/aDW computation of procedure `DelLM`
/// (Fig. 14) followed by a bounded Dijkstra re-settlement.
fn repair_after_deletion(
    graph: &DataGraph,
    row: &mut [u32],
    start: NodeId,
    support: NodeId,
    kind: DirectionKind,
    affected_nodes: &mut FastHashSet<NodeId>,
) -> usize {
    let old_start = row[start.index()];
    let support_dist = row[support.index()];
    // The removed edge was on a shortest path only if it provided the distance.
    if old_start == UNREACHABLE
        || support_dist == UNREACHABLE
        || support_dist.saturating_add(1) != old_start
    {
        return 0;
    }

    // Phase 1: collect the affected set in nondecreasing old-distance order.
    let mut affected: Vec<NodeId> = Vec::new();
    let mut is_affected = igpm_graph::hash::set_with_capacity::<NodeId>(16);
    let mut enqueued = igpm_graph::hash::set_with_capacity::<NodeId>(16);
    let mut queue = VecDeque::new();
    queue.push_back(start);
    enqueued.insert(start);
    while let Some(x) = queue.pop_front() {
        let dx = row[x.index()];
        let supported = kind.supports(graph, x).iter().any(|&p| {
            let dp = row[p.index()];
            dp != UNREACHABLE && dp.saturating_add(1) == dx && !is_affected.contains(&p)
        });
        if supported {
            continue;
        }
        is_affected.insert(x);
        affected.push(x);
        for &c in kind.dependents(graph, x) {
            if row[c.index()] != UNREACHABLE
                && row[c.index()] == dx.saturating_add(1)
                && enqueued.insert(c)
            {
                queue.push_back(c);
            }
        }
    }
    if affected.is_empty() {
        return 0;
    }

    // Phase 2: recompute the affected entries from the unaffected boundary.
    let old_values: Vec<(NodeId, u32)> = affected.iter().map(|&x| (x, row[x.index()])).collect();
    for &x in &affected {
        row[x.index()] = UNREACHABLE;
    }
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    for &x in &affected {
        let best = kind
            .supports(graph, x)
            .iter()
            .filter_map(|&p| match row[p.index()] {
                UNREACHABLE => None,
                d => Some(d.saturating_add(1)),
            })
            .min();
        if let Some(d) = best {
            heap.push(Reverse((d, x.0)));
        }
    }
    while let Some(Reverse((d, raw))) = heap.pop() {
        let x = NodeId(raw);
        if d >= row[x.index()] {
            continue;
        }
        row[x.index()] = d;
        for &c in kind.dependents(graph, x) {
            if is_affected.contains(&c) && d.saturating_add(1) < row[c.index()] {
                heap.push(Reverse((d + 1, c.0)));
            }
        }
    }

    let mut changed = 0;
    for &(x, old) in &old_values {
        if row[x.index()] != old {
            changed += 1;
            affected_nodes.insert(x);
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmark::LandmarkSelection;
    use crate::matrix::DistanceMatrix;
    use crate::oracle::DistanceOracle;
    use igpm_graph::Attributes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, edges: usize, seed: u64) -> DataGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        for _ in 0..edges {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            if a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    fn assert_exact(index: &LandmarkIndex, graph: &DataGraph, context: &str) {
        let matrix = DistanceMatrix::build(graph);
        for a in graph.nodes() {
            for b in graph.nodes() {
                assert_eq!(
                    index.query(a, b),
                    matrix.distance(a, b),
                    "{context}: mismatch at ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn ins_lm_keeps_index_exact() {
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..4 {
            let mut graph = random_graph(25, 50, seed);
            let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
            let mut stats = LandmarkMaintenanceStats::default();
            for _ in 0..30 {
                let a = NodeId(rng.gen_range(0..25) as u32);
                let b = NodeId(rng.gen_range(0..25) as u32);
                if a == b {
                    continue;
                }
                stats.merge(ins_lm(&mut index, &mut graph, a, b));
            }
            assert_exact(&index, &graph, &format!("insertions, seed {seed}"));
            assert!(stats.updates_processed > 0);
        }
    }

    #[test]
    fn del_lm_keeps_index_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..4 {
            let mut graph = random_graph(25, 80, seed + 100);
            let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
            let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
            for _ in 0..25 {
                let (a, b) = edges[rng.gen_range(0..edges.len())];
                del_lm(&mut index, &mut graph, a, b);
            }
            assert_exact(&index, &graph, &format!("deletions, seed {seed}"));
        }
    }

    #[test]
    fn mixed_unit_updates_stay_exact() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut graph = random_graph(20, 45, 5);
        let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        for step in 0..60 {
            let a = NodeId(rng.gen_range(0..20) as u32);
            let b = NodeId(rng.gen_range(0..20) as u32);
            if a == b {
                continue;
            }
            if rng.gen_bool(0.5) {
                ins_lm(&mut index, &mut graph, a, b);
            } else {
                del_lm(&mut index, &mut graph, a, b);
            }
            if step % 15 == 0 {
                assert_exact(&index, &graph, &format!("mixed step {step}"));
            }
        }
        assert_exact(&index, &graph, "mixed final");
    }

    #[test]
    fn inc_lm_batch_matches_rebuild() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut graph = random_graph(30, 70, 11);
        let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let mut batch = BatchUpdate::new();
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        for i in 0..10 {
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            batch.delete(a, b);
            let c = NodeId(rng.gen_range(0..30) as u32);
            let d = NodeId(rng.gen_range(0..30) as u32);
            if c != d {
                batch.insert(c, d);
            }
            if i == 0 {
                // Insert and immediately delete an extra edge: must cancel out.
                batch.insert(NodeId(0), NodeId(15));
                batch.delete(NodeId(0), NodeId(15));
            }
        }
        let stats = inc_lm(&mut index, &mut graph, &batch);
        assert!(stats.cancelled_updates >= 2, "the insert/delete pair must cancel");
        assert_exact(&index, &graph, "after batch");
    }

    #[test]
    fn reduce_batch_cancels_net_noops() {
        let graph = {
            let mut g = DataGraph::new();
            for i in 0..3 {
                g.add_node(Attributes::labeled(format!("v{i}")));
            }
            g.add_edge(NodeId(0), NodeId(1));
            g
        };
        let mut batch = BatchUpdate::new();
        batch.delete(NodeId(0), NodeId(1));
        batch.insert(NodeId(0), NodeId(1)); // cancels the deletion
        batch.insert(NodeId(1), NodeId(2));
        batch.delete(NodeId(1), NodeId(2)); // cancels the insertion
        batch.insert(NodeId(2), NodeId(0)); // effective
        let (effective, cancelled) = reduce_batch(&graph, &batch);
        assert_eq!(effective, vec![Update::insert(NodeId(2), NodeId(0))]);
        assert_eq!(cancelled, 4);
    }

    #[test]
    fn redundant_unit_updates_are_reported_as_cancelled() {
        let mut graph = random_graph(10, 15, 2);
        let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let (a, b) = graph.edges().next().unwrap();
        let stats = ins_lm(&mut index, &mut graph, a, b);
        assert_eq!(stats.cancelled_updates, 1, "inserting an existing edge is a no-op");
        assert_eq!(stats.updates_processed, 0);
        // Deleting a non-existent edge is likewise a no-op.
        let mut missing = (NodeId(0), NodeId(1));
        for x in graph.nodes() {
            for y in graph.nodes() {
                if x != y && !graph.has_edge(x, y) {
                    missing = (x, y);
                }
            }
        }
        let stats = del_lm(&mut index, &mut graph, missing.0, missing.1);
        assert_eq!(stats.cancelled_updates, 1);
    }

    #[test]
    fn covering_invariant_is_maintained_on_insertions() {
        let mut graph = random_graph(15, 20, 8);
        let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        assert!(index.is_covering());
        // Find two non-landmark nodes and connect them.
        let non_landmarks: Vec<NodeId> = graph.nodes().filter(|&v| !index.is_landmark(v)).collect();
        if non_landmarks.len() >= 2 {
            let (a, b) = (non_landmarks[0], non_landmarks[1]);
            let stats = ins_lm(&mut index, &mut graph, a, b);
            assert_eq!(stats.landmarks_added, 1);
            assert!(index.is_landmark(a));
        }
        assert_exact(&index, &graph, "after covering insertion");
    }

    #[test]
    fn incremental_is_equivalent_to_rebuild_distance_wise() {
        // The same final graph must yield the same distances whether the index
        // was maintained incrementally or rebuilt (BatchLM).
        let mut graph = random_graph(25, 60, 21);
        let mut index = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let a = NodeId(rng.gen_range(0..25) as u32);
            let b = NodeId(rng.gen_range(0..25) as u32);
            if a == b {
                continue;
            }
            if rng.gen_bool(0.6) {
                ins_lm(&mut index, &mut graph, a, b);
            } else {
                del_lm(&mut index, &mut graph, a, b);
            }
        }
        let rebuilt = LandmarkIndex::build(&graph, LandmarkSelection::VertexCover);
        for a in graph.nodes() {
            for b in graph.nodes() {
                assert_eq!(index.distance(a, b), rebuilt.distance(a, b));
            }
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = LandmarkMaintenanceStats {
            updates_processed: 1,
            cancelled_updates: 2,
            landmarks_added: 3,
            affected_entries: 4,
        };
        let b = LandmarkMaintenanceStats {
            updates_processed: 10,
            cancelled_updates: 20,
            landmarks_added: 30,
            affected_entries: 40,
        };
        a.merge(b);
        assert_eq!(a.updates_processed, 11);
        assert_eq!(a.cancelled_updates, 22);
        assert_eq!(a.landmarks_added, 33);
        assert_eq!(a.affected_entries, 44);
    }
}
