//! 2-hop distance labels (`2-hop+Match` in Figure 17).
//!
//! Cohen et al.'s 2-hop covers assign each node an *out-label* (hubs it can
//! reach, with distances) and an *in-label* (hubs that reach it); the distance
//! between `u` and `w` is the minimum of `d_out(u, h) + d_in(h, w)` over hubs
//! `h` common to both labels. We build the labels with pruned landmark
//! labelling: nodes are processed in decreasing-degree order and a BFS from a
//! hub is pruned at any node whose distance is already explained by earlier
//! hubs. The resulting labels are exact and usually far smaller than a
//! distance matrix on the skewed graphs used in the evaluation.

use crate::oracle::DistanceOracle;
use igpm_graph::{DataGraph, NodeId};
use std::collections::VecDeque;

/// Exact 2-hop distance labels.
#[derive(Debug, Clone)]
pub struct TwoHopLabels {
    /// Per node: sorted `(hub rank, distance node -> hub)`.
    out_labels: Vec<Vec<(u32, u32)>>,
    /// Per node: sorted `(hub rank, distance hub -> node)`.
    in_labels: Vec<Vec<(u32, u32)>>,
}

impl TwoHopLabels {
    /// Builds the labels with pruned landmark labelling.
    pub fn build(graph: &DataGraph) -> Self {
        let n = graph.node_count();
        let mut out_labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut in_labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        // Process nodes in decreasing total degree: high-degree hubs prune the
        // most subsequent searches.
        let mut order: Vec<NodeId> = graph.nodes().collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

        let mut visited_mark = vec![u32::MAX; n];
        let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;

            // Forward BFS from the hub: discovers dist(hub, v) -> in_labels[v].
            queue.clear();
            queue.push_back((hub, 0));
            visited_mark[hub.index()] = rank;
            while let Some((v, d)) = queue.pop_front() {
                // Prune if the current labels already explain this distance.
                if v != hub
                    && Self::query_labels(&out_labels[hub.index()], &in_labels[v.index()])
                        <= d as u64
                {
                    continue;
                }
                in_labels[v.index()].push((rank, d));
                for &child in graph.children(v) {
                    if visited_mark[child.index()] != rank {
                        visited_mark[child.index()] = rank;
                        queue.push_back((child, d + 1));
                    }
                }
            }

            // Backward BFS from the hub: discovers dist(v, hub) -> out_labels[v].
            let back_mark = rank | 0x8000_0000;
            queue.clear();
            queue.push_back((hub, 0));
            visited_mark[hub.index()] = back_mark;
            while let Some((v, d)) = queue.pop_front() {
                if v != hub
                    && Self::query_labels(&out_labels[v.index()], &in_labels[hub.index()])
                        <= d as u64
                {
                    continue;
                }
                out_labels[v.index()].push((rank, d));
                for &parent in graph.parents(v) {
                    if visited_mark[parent.index()] != back_mark {
                        visited_mark[parent.index()] = back_mark;
                        queue.push_back((parent, d + 1));
                    }
                }
            }
        }

        TwoHopLabels { out_labels, in_labels }
    }

    /// Merge-join two sorted label lists; returns the best combined distance
    /// (u64::MAX if the hub sets are disjoint).
    fn query_labels(out: &[(u32, u32)], inc: &[(u32, u32)]) -> u64 {
        let mut best = u64::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < out.len() && j < inc.len() {
            match out[i].0.cmp(&inc[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(out[i].1 as u64 + inc[j].1 as u64);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Total number of label entries (a proxy for index size).
    pub fn label_entries(&self) -> usize {
        self.out_labels.iter().map(Vec::len).sum::<usize>()
            + self.in_labels.iter().map(Vec::len).sum::<usize>()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.label_entries() * std::mem::size_of::<(u32, u32)>()
    }
}

impl DistanceOracle for TwoHopLabels {
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        match Self::query_labels(&self.out_labels[from.index()], &self.in_labels[to.index()]) {
            u64::MAX => None,
            d => Some(d as u32),
        }
    }

    fn name(&self) -> &'static str {
        "2-hop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use igpm_graph::Attributes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn diamond_with_cycle() -> DataGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0 (cycle), 3 -> 4
        let mut g = DataGraph::new();
        for i in 0..5 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0), (3, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn exact_on_small_graph() {
        let g = diamond_with_cycle();
        let labels = TwoHopLabels::build(&g);
        let matrix = DistanceMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(labels.distance(a, b), matrix.distance(a, b), "mismatch at ({a}, {b})");
            }
        }
        assert!(labels.label_entries() > 0);
        assert!(labels.memory_bytes() > 0);
        assert_eq!(labels.name(), "2-hop");
    }

    #[test]
    fn exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..6 {
            let n = 20 + case * 10;
            let mut g = DataGraph::new();
            for i in 0..n {
                g.add_node(Attributes::labeled(format!("v{i}")));
            }
            let edges = n * 3;
            for _ in 0..edges {
                let a = NodeId(rng.gen_range(0..n) as u32);
                let b = NodeId(rng.gen_range(0..n) as u32);
                if a != b {
                    g.add_edge(a, b);
                }
            }
            let labels = TwoHopLabels::build(&g);
            let matrix = DistanceMatrix::build(&g);
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(
                        labels.distance(a, b),
                        matrix.distance(a, b),
                        "case {case}: mismatch at ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        let c = g.add_node(Attributes::labeled("c"));
        g.add_edge(a, b);
        let labels = TwoHopLabels::build(&g);
        assert_eq!(labels.distance(a, b), Some(1));
        assert_eq!(labels.distance(a, c), None);
        assert_eq!(labels.distance(c, a), None);
        assert_eq!(labels.distance(c, c), Some(0));
    }

    #[test]
    fn labels_are_smaller_than_matrix_on_star() {
        let mut g = DataGraph::new();
        let hub = g.add_node(Attributes::labeled("hub"));
        for i in 0..50 {
            let leaf = g.add_node(Attributes::labeled(format!("l{i}")));
            g.add_edge(hub, leaf);
            g.add_edge(leaf, hub);
        }
        let labels = TwoHopLabels::build(&g);
        let matrix = DistanceMatrix::build(&g);
        assert!(labels.memory_bytes() < matrix.memory_bytes());
        // Spot-check correctness.
        assert_eq!(labels.distance(NodeId(1), NodeId(2)), Some(2));
        assert_eq!(labels.distance(NodeId(1), NodeId(0)), Some(1));
    }
}
