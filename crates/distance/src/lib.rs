//! # igpm-distance
//!
//! Distance substrate for the reproduction of *Incremental Graph Pattern
//! Matching* (Fan, Wang, Wu; SIGMOD 2011 / TODS 2013).
//!
//! Bounded simulation maps pattern edges onto data-graph paths whose length is
//! constrained by a hop bound, so every matching algorithm in `igpm-core`
//! needs a way to answer *"is there a nonempty path from `v` to `v'` of length
//! at most `k`?"*. The paper evaluates three ways of answering that query
//! (Exp-2, Figure 17) and introduces a fourth for incremental matching
//! (Section 6):
//!
//! * an all-pairs **distance matrix** ([`DistanceMatrix`]),
//! * on-demand bounded **BFS** ([`BfsOracle`]),
//! * **2-hop labels** ([`TwoHopLabels`], pruned landmark labelling),
//! * **landmark + distance vectors** ([`LandmarkIndex`]) with incremental
//!   maintenance (`InsLM`, `DelLM`, `IncLM`; [`landmark_inc`]).
//!
//! All of them implement the [`DistanceOracle`] trait consumed by the `Match`
//! algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod landmark;
pub mod landmark_inc;
pub mod matrix;
pub mod oracle;
pub mod two_hop;
pub mod vertex_cover;

pub use bfs::BfsOracle;
pub use landmark::{LandmarkIndex, LandmarkSelection};
pub use landmark_inc::LandmarkMaintenanceStats;
pub use matrix::DistanceMatrix;
pub use oracle::{nonempty_distance, satisfies_bound, DistanceOracle};
pub use two_hop::TwoHopLabels;
pub use vertex_cover::{greedy_vertex_cover, is_vertex_cover};
