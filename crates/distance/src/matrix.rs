//! All-pairs distance matrices.
//!
//! The batch `Match` algorithm (Fig. 3, line 1) starts by computing the
//! distance matrix of the data graph via one BFS per node, in
//! `O(|V|(|V| + |E|))` time. This module stores the matrix densely (one row of
//! `u32` per source node) which makes the oracle query O(1) — the fastest of
//! the three `Match` variants measured in Figure 17, at the price of `|V|²`
//! space.

use crate::oracle::DistanceOracle;
use igpm_graph::traversal::{bfs_distances_dense, Direction};
use igpm_graph::{DataGraph, NodeId};

/// Sentinel used for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// A dense all-pairs shortest-path matrix (hop counts).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    node_count: usize,
    rows: Vec<Vec<u32>>,
}

impl DistanceMatrix {
    /// Builds the matrix with one BFS per node.
    pub fn build(graph: &DataGraph) -> Self {
        let node_count = graph.node_count();
        let rows =
            graph.nodes().map(|v| bfs_distances_dense(graph, v, Direction::Forward)).collect();
        DistanceMatrix { node_count, rows }
    }

    /// Builds the matrix only for the given source nodes; queries from other
    /// sources return `None`. Useful when only candidate nodes of a pattern
    /// ever appear as query sources.
    pub fn build_for_sources(graph: &DataGraph, sources: &[NodeId]) -> Self {
        let node_count = graph.node_count();
        let mut rows = vec![Vec::new(); node_count];
        for &source in sources {
            if rows[source.index()].is_empty() {
                rows[source.index()] = bfs_distances_dense(graph, source, Direction::Forward);
            }
        }
        DistanceMatrix { node_count, rows }
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The raw distance entry (standard semantics, `dist(v, v) = 0`).
    pub fn get(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let row = &self.rows[from.index()];
        if row.is_empty() {
            return None;
        }
        match row[to.index()] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Approximate heap footprint in bytes (used by the space experiments).
    pub fn memory_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.capacity() * std::mem::size_of::<u32>()).sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<Vec<u32>>()
    }
}

impl DistanceOracle for DistanceMatrix {
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.get(from, to)
    }

    fn name(&self) -> &'static str {
        "matrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::Attributes;

    fn diamond() -> DataGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4
        let mut g = DataGraph::new();
        for i in 0..5 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn distances_match_bfs() {
        let g = diamond();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.node_count(), 5);
        assert_eq!(m.get(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(m.get(NodeId(0), NodeId(3)), Some(2));
        assert_eq!(m.get(NodeId(0), NodeId(4)), Some(3));
        assert_eq!(m.get(NodeId(4), NodeId(0)), None);
        assert_eq!(m.distance(NodeId(1), NodeId(4)), Some(2));
        assert!(m.within(NodeId(0), NodeId(4), 3));
        assert!(!m.within(NodeId(0), NodeId(4), 2));
        assert_eq!(m.name(), "matrix");
    }

    #[test]
    fn partial_matrix_only_answers_built_sources() {
        let g = diamond();
        let m = DistanceMatrix::build_for_sources(&g, &[NodeId(0), NodeId(0)]);
        assert_eq!(m.get(NodeId(0), NodeId(4)), Some(3));
        assert_eq!(m.get(NodeId(1), NodeId(3)), None, "row 1 was not built");
        assert!(m.memory_bytes() < DistanceMatrix::build(&g).memory_bytes());
    }

    #[test]
    fn memory_estimate_scales_with_nodes() {
        let g = diamond();
        let m = DistanceMatrix::build(&g);
        assert!(m.memory_bytes() >= 5 * 5 * 4);
    }
}
