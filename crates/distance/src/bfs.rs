//! On-demand BFS distance oracle (`BFS+Match` in Figure 17).
//!
//! For graphs too large to hold a `|V|²` matrix or a landmark index, the
//! `Match` algorithm falls back to answering each distance query with a
//! breadth-first search. `within` terminates as soon as the hop budget is
//! exhausted, which is what makes the `BFS+Match` variant scale to the
//! million-node graphs of Fig. 17(c,d). A small LRU-ish row cache avoids
//! repeating identical searches when the same source node is queried many
//! times in a row (as `Match` does while refining one candidate set).

use crate::oracle::DistanceOracle;
use igpm_graph::hash::FastHashMap;
use igpm_graph::traversal::{bfs_distances, bfs_distances_dense, Direction};
use igpm_graph::{DataGraph, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

/// A distance oracle that answers queries with (optionally cached) BFS runs.
pub struct BfsOracle<'g> {
    graph: &'g DataGraph,
    cache_capacity: usize,
    cache: RefCell<RowCache>,
}

#[derive(Default)]
struct RowCache {
    rows: FastHashMap<NodeId, Rc<Vec<u32>>>,
    order: Vec<NodeId>,
    hits: u64,
    misses: u64,
}

impl<'g> BfsOracle<'g> {
    /// Creates an oracle without caching.
    pub fn new(graph: &'g DataGraph) -> Self {
        BfsOracle { graph, cache_capacity: 0, cache: RefCell::new(RowCache::default()) }
    }

    /// Creates an oracle that caches the dense distance rows of up to
    /// `capacity` distinct source nodes.
    pub fn with_cache(graph: &'g DataGraph, capacity: usize) -> Self {
        BfsOracle { graph, cache_capacity: capacity, cache: RefCell::new(RowCache::default()) }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DataGraph {
        self.graph
    }

    /// `(hits, misses)` of the row cache, for diagnostics.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.borrow();
        (cache.hits, cache.misses)
    }

    fn row(&self, source: NodeId) -> Rc<Vec<u32>> {
        let mut cache = self.cache.borrow_mut();
        if let Some(row) = cache.rows.get(&source).map(Rc::clone) {
            cache.hits += 1;
            return row;
        }
        cache.misses += 1;
        let row = Rc::new(bfs_distances_dense(self.graph, source, Direction::Forward));
        if self.cache_capacity > 0 {
            if cache.rows.len() >= self.cache_capacity {
                // Evict the oldest cached row (FIFO keeps bookkeeping trivial).
                if let Some(old) = cache.order.first().copied() {
                    cache.order.remove(0);
                    cache.rows.remove(&old);
                }
            }
            cache.rows.insert(source, Rc::clone(&row));
            cache.order.push(source);
        }
        row
    }
}

impl DistanceOracle for BfsOracle<'_> {
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if self.cache_capacity > 0 {
            let row = self.row(from);
            return match row[to.index()] {
                u32::MAX => None,
                d => Some(d),
            };
        }
        // Uncached: run a targeted BFS that can stop as soon as `to` is found.
        let dist = bfs_distances(self.graph, from, Direction::Forward, u32::MAX);
        dist.get(&to).copied()
    }

    fn within(&self, from: NodeId, to: NodeId, max_hops: u32) -> bool {
        if self.cache_capacity > 0 {
            return self.distance(from, to).map(|d| d <= max_hops).unwrap_or(false);
        }
        // Bounded BFS terminates early once the hop budget is exhausted.
        let dist = bfs_distances(self.graph, from, Direction::Forward, max_hops);
        dist.get(&to).map(|&d| d <= max_hops).unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::Attributes;

    fn chain_with_branch() -> DataGraph {
        // 0 -> 1 -> 2 -> 3 and 1 -> 4
        let mut g = DataGraph::new();
        for i in 0..5 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        for (a, b) in [(0, 1), (1, 2), (2, 3), (1, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn uncached_distances() {
        let g = chain_with_branch();
        let oracle = BfsOracle::new(&g);
        assert_eq!(oracle.distance(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(oracle.distance(NodeId(0), NodeId(4)), Some(2));
        assert_eq!(oracle.distance(NodeId(3), NodeId(0)), None);
        assert!(oracle.within(NodeId(0), NodeId(3), 3));
        assert!(!oracle.within(NodeId(0), NodeId(3), 2));
        assert_eq!(oracle.name(), "bfs");
        assert_eq!(oracle.cache_stats(), (0, 0), "no caching requested");
    }

    #[test]
    fn cached_distances_agree_and_hit_cache() {
        let g = chain_with_branch();
        let oracle = BfsOracle::with_cache(&g, 2);
        assert_eq!(oracle.distance(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(oracle.distance(NodeId(0), NodeId(4)), Some(2));
        assert!(oracle.within(NodeId(0), NodeId(2), 2));
        let (hits, misses) = oracle.cache_stats();
        assert_eq!(misses, 1, "only one BFS from node 0");
        assert_eq!(hits, 2);
    }

    #[test]
    fn cache_eviction_keeps_capacity() {
        let g = chain_with_branch();
        let oracle = BfsOracle::with_cache(&g, 1);
        let _ = oracle.distance(NodeId(0), NodeId(1));
        let _ = oracle.distance(NodeId(1), NodeId(2));
        let _ = oracle.distance(NodeId(0), NodeId(1)); // re-miss after eviction
        let (_, misses) = oracle.cache_stats();
        assert_eq!(misses, 3);
        assert_eq!(oracle.graph().node_count(), 5);
    }

    #[test]
    fn agrees_with_matrix() {
        let g = chain_with_branch();
        let bfs = BfsOracle::with_cache(&g, 16);
        let matrix = crate::DistanceMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(bfs.distance(a, b), matrix.distance(a, b), "disagreement at ({a}, {b})");
            }
        }
    }
}
