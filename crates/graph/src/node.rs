//! Node identifiers for data graphs.

use std::fmt;

/// Identifier of a node in a [`DataGraph`](crate::DataGraph).
///
/// Node identifiers are dense `u32` indices assigned in insertion order, which
/// lets adjacency and per-node auxiliary structures be stored in flat vectors
/// (the paper's complexity analysis assumes O(1) node lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX`, i.e. graphs are limited to
    /// roughly 4.2 billion nodes (far beyond anything exercised here).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index out of range");
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id, NodeId(17));
        assert_eq!(u32::from(id), 17);
        assert_eq!(NodeId::from(17u32), id);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(10) > NodeId(2));
    }
}
